//! Silhouette coefficients — Blaeu's cluster-quality measure.
//!
//! The silhouette of point *i* is `s(i) = (b − a) / max(a, b)` where `a` is
//! the mean distance to the other members of its own cluster and `b` the
//! lowest mean distance to any other cluster. The paper uses the average
//! silhouette both to report cluster quality to the user and to pick the
//! number of clusters, and it estimates it "in a Monte-Carlo fashion": the
//! score of several sub-samples is averaged instead of computing the exact
//! O(n²) value.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::distance::Points;
use crate::matrix::DistanceMatrix;

/// Per-point silhouette values from a distance matrix and labels.
///
/// Conventions: points in singleton clusters get silhouette 0 (Kaufman &
/// Rousseeuw); a single cluster overall yields all-zero silhouettes.
///
/// # Panics
/// Panics if `labels.len() != matrix.len()`.
pub fn silhouette_samples(matrix: &DistanceMatrix, labels: &[usize]) -> Vec<f64> {
    let n = matrix.len();
    assert_eq!(labels.len(), n, "one label per point");
    if n == 0 {
        return Vec::new();
    }
    let k = labels.iter().copied().max().unwrap_or(0) + 1;
    let mut cluster_sizes = vec![0usize; k];
    for &l in labels {
        cluster_sizes[l] += 1;
    }

    let mut out = vec![0.0f64; n];
    // Mean distance from i to every cluster, computed per point.
    let mut sums = vec![0.0f64; k];
    for i in 0..n {
        sums.iter_mut().for_each(|s| *s = 0.0);
        for j in 0..n {
            if i != j {
                sums[labels[j]] += matrix.get(i, j);
            }
        }
        let own = labels[i];
        if cluster_sizes[own] <= 1 {
            out[i] = 0.0;
            continue;
        }
        let a = sums[own] / (cluster_sizes[own] - 1) as f64;
        let mut b = f64::INFINITY;
        for c in 0..k {
            if c != own && cluster_sizes[c] > 0 {
                b = b.min(sums[c] / cluster_sizes[c] as f64);
            }
        }
        if !b.is_finite() {
            out[i] = 0.0; // single non-empty cluster
        } else {
            let denom = a.max(b);
            out[i] = if denom > 0.0 { (b - a) / denom } else { 0.0 };
        }
    }
    out
}

/// Average silhouette width over all points.
pub fn silhouette_score(matrix: &DistanceMatrix, labels: &[usize]) -> f64 {
    let s = silhouette_samples(matrix, labels);
    if s.is_empty() {
        0.0
    } else {
        s.iter().sum::<f64>() / s.len() as f64
    }
}

/// Configuration for the Monte-Carlo silhouette estimator.
#[derive(Debug, Clone)]
pub struct McSilhouetteConfig {
    /// Number of sub-samples to average.
    pub subsamples: usize,
    /// Rows per sub-sample.
    pub subsample_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for McSilhouetteConfig {
    fn default() -> Self {
        McSilhouetteConfig {
            subsamples: 4,
            subsample_size: 256,
            seed: 17,
        }
    }
}

/// Monte-Carlo estimate of the average silhouette: draw sub-samples of the
/// points, compute each sub-sample's exact silhouette (restricted to the
/// labels it carries), and average. Cost is
/// `O(subsamples · subsample_size²)` instead of `O(n²)`.
///
/// # Panics
/// Panics if `labels.len() != points.len()`.
pub fn mc_silhouette(points: &Points, labels: &[usize], config: &McSilhouetteConfig) -> f64 {
    let n = points.len();
    assert_eq!(labels.len(), n, "one label per point");
    if n == 0 {
        return 0.0;
    }
    let size = config.subsample_size.min(n);
    if size >= n {
        // Degenerates to the exact computation on the full set.
        let matrix = DistanceMatrix::from_points(points);
        return silhouette_score(&matrix, labels);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut scores = Vec::with_capacity(config.subsamples.max(1));
    for _ in 0..config.subsamples.max(1) {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut rng);
        idx.truncate(size);
        let sub_points = points.subset(&idx);
        let sub_labels: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
        let matrix = DistanceMatrix::from_points(&sub_points);
        scores.push(silhouette_score(&matrix, &sub_labels));
    }
    scores.iter().sum::<f64>() / scores.len() as f64
}

/// Cheap medoid-based silhouette: `a` is the distance to the point's own
/// medoid, `b` the distance to the nearest other medoid. An O(nk)
/// approximation used for quick per-region quality hints.
pub fn medoid_silhouette(points: &Points, medoids: &[usize], labels: &[usize]) -> f64 {
    let n = points.len();
    assert_eq!(labels.len(), n, "one label per point");
    if n == 0 || medoids.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..n {
        let a = points.dist(i, medoids[labels[i]]);
        let mut b = f64::INFINITY;
        for (slot, &m) in medoids.iter().enumerate() {
            if slot != labels[i] {
                b = b.min(points.dist(i, m));
            }
        }
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Metric;

    fn blob_points(per: usize, centers: &[f64]) -> (Points, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (c, &center) in centers.iter().enumerate() {
            for i in 0..per {
                let jitter = ((i * 2654435761usize) % 100) as f64 / 100.0;
                rows.push(vec![center + jitter]);
                labels.push(c);
            }
        }
        (Points::new(rows, Metric::Euclidean), labels)
    }

    #[test]
    fn well_separated_clusters_score_high() {
        let (p, labels) = blob_points(20, &[0.0, 100.0, 200.0]);
        let m = DistanceMatrix::from_points(&p);
        let s = silhouette_score(&m, &labels);
        assert!(s > 0.95, "separated blobs should score near 1, got {s}");
    }

    #[test]
    fn random_labels_score_low() {
        let (p, _) = blob_points(20, &[0.0, 100.0, 200.0]);
        let m = DistanceMatrix::from_points(&p);
        let bad: Vec<usize> = (0..60).map(|i| i % 3).collect();
        let s = silhouette_score(&m, &bad);
        assert!(s < 0.1, "shuffled labels should score poorly, got {s}");
    }

    #[test]
    fn values_in_unit_interval() {
        let (p, labels) = blob_points(15, &[0.0, 5.0]);
        let m = DistanceMatrix::from_points(&p);
        for s in silhouette_samples(&m, &labels) {
            assert!((-1.0..=1.0).contains(&s), "silhouette {s} out of range");
        }
    }

    #[test]
    fn singleton_and_single_cluster_conventions() {
        let (p, _) = blob_points(5, &[0.0]);
        let m = DistanceMatrix::from_points(&p);
        // Single cluster: all zeros.
        assert_eq!(silhouette_score(&m, &[0, 0, 0, 0, 0]), 0.0);
        // Singleton cluster: its point scores 0.
        let labels = vec![0, 0, 0, 0, 1];
        let s = silhouette_samples(&m, &labels);
        assert_eq!(s[4], 0.0);
    }

    #[test]
    fn empty_inputs() {
        let p = Points::new(vec![], Metric::Euclidean);
        let m = DistanceMatrix::from_points(&p);
        assert_eq!(silhouette_score(&m, &[]), 0.0);
        assert_eq!(mc_silhouette(&p, &[], &McSilhouetteConfig::default()), 0.0);
    }

    #[test]
    fn mc_estimate_converges_to_exact() {
        let (p, labels) = blob_points(150, &[0.0, 30.0, 60.0]);
        let m = DistanceMatrix::from_points(&p);
        let exact = silhouette_score(&m, &labels);
        let mc = mc_silhouette(
            &p,
            &labels,
            &McSilhouetteConfig {
                subsamples: 8,
                subsample_size: 120,
                seed: 3,
            },
        );
        assert!(
            (mc - exact).abs() < 0.05,
            "MC {mc} should be close to exact {exact}"
        );
    }

    #[test]
    fn mc_with_oversized_subsample_is_exact() {
        let (p, labels) = blob_points(20, &[0.0, 50.0]);
        let m = DistanceMatrix::from_points(&p);
        let exact = silhouette_score(&m, &labels);
        let mc = mc_silhouette(
            &p,
            &labels,
            &McSilhouetteConfig {
                subsamples: 3,
                subsample_size: 10_000,
                seed: 5,
            },
        );
        assert!((mc - exact).abs() < 1e-12);
    }

    #[test]
    fn mc_error_shrinks_with_more_subsamples() {
        let (p, labels) = blob_points(300, &[0.0, 10.0, 20.0]);
        let m = DistanceMatrix::from_points(&p);
        let exact = silhouette_score(&m, &labels);
        let err = |subsamples: usize, size: usize| {
            let mc = mc_silhouette(
                &p,
                &labels,
                &McSilhouetteConfig {
                    subsamples,
                    subsample_size: size,
                    seed: 11,
                },
            );
            (mc - exact).abs()
        };
        // Not strictly monotone per-seed, but 16×200 must beat 1×30 clearly.
        assert!(err(16, 200) <= err(1, 30) + 0.02);
    }

    #[test]
    fn medoid_silhouette_tracks_exact_ordering() {
        let (p, good) = blob_points(25, &[0.0, 100.0]);
        let bad: Vec<usize> = (0..50).map(|i| i % 2).collect();
        // Medoids: centers of each blob (index 0 block and 25 block).
        let med = vec![12, 37];
        let s_good = medoid_silhouette(&p, &med, &good);
        let s_bad = medoid_silhouette(&p, &med, &bad);
        assert!(s_good > s_bad, "good {s_good} vs bad {s_bad}");
        assert!(s_good > 0.9);
    }

    #[test]
    fn medoid_silhouette_single_medoid_zero() {
        let (p, labels) = blob_points(5, &[0.0]);
        assert_eq!(medoid_silhouette(&p, &[0], &labels), 0.0);
    }
}
