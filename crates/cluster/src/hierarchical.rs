//! Agglomerative hierarchical clustering (baseline).
//!
//! The paper notes it "had to choose between a dozen clustering algorithms
//! from the literature" before settling on PAM. Agglomerative clustering
//! is the classic alternative for theme detection (it consumes a distance
//! matrix directly); this implementation supports the three standard
//! linkages via Lance–Williams updates and cuts the dendrogram at any k.

use crate::matrix::DistanceMatrix;

/// Linkage criterion for merging clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum pairwise distance (chains easily).
    Single,
    /// Maximum pairwise distance (compact clusters).
    Complete,
    /// Unweighted average pairwise distance (UPGMA).
    Average,
}

/// One merge step of the dendrogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Merge {
    /// First merged cluster id (original points are `0..n`; merges create
    /// ids `n, n+1, …`).
    pub a: usize,
    /// Second merged cluster id.
    pub b: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
    /// Points in the merged cluster.
    pub size: usize,
}

/// A fitted agglomerative clustering (full dendrogram).
#[derive(Debug, Clone)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Number of points clustered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when fitted on zero points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The merge history, in order (length `n − 1`).
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cuts the dendrogram into `k` clusters, returning dense labels
    /// `0..k` in first-appearance order.
    ///
    /// `k` is clamped to `[1, n]`.
    pub fn cut(&self, k: usize) -> Vec<usize> {
        let n = self.n;
        if n == 0 {
            return Vec::new();
        }
        let k = k.clamp(1, n);
        // Union-find over the first n - k merges.
        let mut parent: Vec<usize> = (0..2 * n - 1).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (i, m) in self.merges.iter().take(n - k).enumerate() {
            let node = n + i;
            let ra = find(&mut parent, m.a);
            let rb = find(&mut parent, m.b);
            parent[ra] = node;
            parent[rb] = node;
        }
        let mut labels = vec![usize::MAX; n];
        let mut next = 0usize;
        let mut label_of_root: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        for (i, slot) in labels.iter_mut().enumerate() {
            let root = find(&mut parent, i);
            let l = *label_of_root.entry(root).or_insert_with(|| {
                let l = next;
                next += 1;
                l
            });
            *slot = l;
        }
        labels
    }
}

/// Fits agglomerative clustering on a distance matrix.
///
/// O(n³) naive implementation — fine for the theme-detection scale
/// (hundreds of columns) and for baseline comparisons.
///
/// # Panics
/// Panics on an empty matrix.
pub fn agglomerative(matrix: &DistanceMatrix, linkage: Linkage) -> Dendrogram {
    let n = matrix.len();
    assert!(n > 0, "cannot cluster an empty matrix");

    // Active cluster list: (id, members).
    let mut active: Vec<(usize, Vec<usize>)> = (0..n).map(|i| (i, vec![i])).collect();
    // Working inter-cluster distances, keyed by position in `active`.
    let mut dist: Vec<Vec<f64>> = vec![vec![0.0; n]; n];
    for (i, row) in dist.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = matrix.get(i, j);
        }
    }

    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    let mut next_id = n;
    while active.len() > 1 {
        // Find the closest active pair.
        let (mut bi, mut bj, mut bd) = (0usize, 1usize, f64::INFINITY);
        for (i, row) in dist.iter().enumerate().take(active.len()) {
            for (j, &d) in row.iter().enumerate().take(active.len()).skip(i + 1) {
                if d < bd {
                    bd = d;
                    bi = i;
                    bj = j;
                }
            }
        }
        let (id_a, members_a) = active[bi].clone();
        let (id_b, members_b) = active[bj].clone();
        let (na, nb) = (members_a.len() as f64, members_b.len() as f64);

        // Lance–Williams update of distances to the merged cluster.
        let mut new_row = Vec::with_capacity(active.len());
        for x in 0..active.len() {
            if x == bi || x == bj {
                new_row.push(0.0);
                continue;
            }
            let dax = dist[bi.min(x)][bi.max(x)];
            let dbx = dist[bj.min(x)][bj.max(x)];
            let d = match linkage {
                Linkage::Single => dax.min(dbx),
                Linkage::Complete => dax.max(dbx),
                Linkage::Average => (na * dax + nb * dbx) / (na + nb),
            };
            new_row.push(d);
        }

        // Remove bj then bi (higher index first), then append the merge.
        let keep: Vec<usize> = (0..active.len()).filter(|&x| x != bi && x != bj).collect();
        let mut new_active = Vec::with_capacity(keep.len() + 1);
        let mut new_dist = vec![vec![0.0f64; keep.len() + 1]; keep.len() + 1];
        for (xi, &x) in keep.iter().enumerate() {
            new_active.push(active[x].clone());
            for (yi, &y) in keep.iter().enumerate().skip(xi + 1) {
                let d = dist[x.min(y)][x.max(y)];
                new_dist[xi][yi] = d;
                new_dist[yi][xi] = d;
            }
        }
        let merged_members: Vec<usize> =
            members_a.iter().chain(members_b.iter()).copied().collect();
        let merged_pos = new_active.len();
        new_active.push((next_id, merged_members.clone()));
        for (xi, &x) in keep.iter().enumerate() {
            new_dist[xi][merged_pos] = new_row[x];
            new_dist[merged_pos][xi] = new_row[x];
        }

        merges.push(Merge {
            a: id_a,
            b: id_b,
            distance: bd,
            size: merged_members.len(),
        });
        next_id += 1;
        active = new_active;
        dist = new_dist;
    }

    Dendrogram { n, merges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{Metric, Points};

    fn blob_matrix() -> DistanceMatrix {
        let mut rows = Vec::new();
        for c in 0..3 {
            for i in 0..8 {
                rows.push(vec![c as f64 * 40.0 + (i as f64) * 0.3]);
            }
        }
        DistanceMatrix::from_points(&Points::new(rows, Metric::Euclidean))
    }

    #[test]
    fn recovers_blobs_at_k3() {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let dend = agglomerative(&blob_matrix(), linkage);
            let labels = dend.cut(3);
            assert_eq!(labels.len(), 24);
            for c in 0..3 {
                let first = labels[c * 8];
                for i in 0..8 {
                    assert_eq!(labels[c * 8 + i], first, "{linkage:?} split blob {c}");
                }
            }
            let distinct: std::collections::HashSet<usize> = labels.iter().copied().collect();
            assert_eq!(distinct.len(), 3, "{linkage:?}");
        }
    }

    #[test]
    fn merge_history_complete() {
        let dend = agglomerative(&blob_matrix(), Linkage::Average);
        assert_eq!(dend.merges().len(), 23);
        assert_eq!(dend.len(), 24);
        // Final merge holds all points.
        assert_eq!(dend.merges().last().unwrap().size, 24);
        // Within-blob merges happen before cross-blob merges.
        let first_cross = dend
            .merges()
            .iter()
            .position(|m| m.distance > 10.0)
            .expect("cross-blob merges exist");
        assert!(first_cross >= 21, "21 within-blob merges come first");
    }

    #[test]
    fn cut_extremes() {
        let dend = agglomerative(&blob_matrix(), Linkage::Complete);
        let all_one = dend.cut(1);
        assert!(all_one.iter().all(|&l| l == 0));
        let singletons = dend.cut(24);
        let distinct: std::collections::HashSet<usize> = singletons.iter().copied().collect();
        assert_eq!(distinct.len(), 24);
        // Clamped.
        assert_eq!(dend.cut(100), singletons);
        let k0 = dend.cut(0);
        assert!(k0.iter().all(|&l| l == 0), "k=0 clamps to 1");
    }

    #[test]
    fn monotone_merge_distances_for_complete_linkage() {
        // Complete/average linkage on metric data produce non-decreasing
        // merge heights (no inversions).
        let dend = agglomerative(&blob_matrix(), Linkage::Complete);
        let heights: Vec<f64> = dend.merges().iter().map(|m| m.distance).collect();
        assert!(
            heights.windows(2).all(|w| w[0] <= w[1] + 1e-9),
            "{heights:?}"
        );
    }

    #[test]
    fn single_point() {
        let m = DistanceMatrix::from_fn(1, |_, _| 0.0);
        let dend = agglomerative(&m, Linkage::Single);
        assert_eq!(dend.merges().len(), 0);
        assert_eq!(dend.cut(1), vec![0]);
    }

    #[test]
    fn chaining_differs_between_single_and_complete() {
        // A chain of equidistant points plus one distant pair: single
        // linkage chains the whole line together, complete linkage splits.
        let mut rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        rows.push(vec![30.0]);
        rows.push(vec![31.0]);
        let m = DistanceMatrix::from_points(&Points::new(rows, Metric::Euclidean));
        let single = agglomerative(&m, Linkage::Single).cut(2);
        // Single: chain = one cluster, far pair = the other.
        assert_eq!(
            single[..10]
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            1
        );
        assert_ne!(single[0], single[10]);
    }
}
