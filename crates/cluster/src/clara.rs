//! CLARA — Clustering LARge Applications (Kaufman & Rousseeuw 1990).
//!
//! "When the data is too large, Blaeu creates the maps with CLARA, a
//! sampling-based variant of the PAM algorithm." CLARA draws several row
//! samples, runs PAM on each, assigns the *whole* dataset to the sample's
//! medoids, and keeps the medoid set with the lowest total deviation.
//! Replicates run in parallel.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::distance::{BlockKernel, Points};
use crate::matrix::DistanceMatrix;
use crate::pam::{pam, PamConfig, PamResult};

/// A mergeable partial of the CLARA assignment sketch over contiguous
/// row shards.
///
/// Labels concatenate in shard order; per-shard deviation sums stay
/// *unsummed* so the final left-fold replays the exact shard-order
/// float additions of the in-process combine loop — bit-identical
/// whatever the shard grouping, since f64 addition is not associative
/// but the fold order is fixed by the canonical shard layout.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignPartial {
    /// Medoid slot per row, concatenated in shard order.
    pub labels: Vec<usize>,
    /// One deviation sum per shard, in shard order.
    pub totals: Vec<f64>,
}

impl AssignPartial {
    /// The identity partial — what a worker returns for an empty range.
    pub fn empty() -> AssignPartial {
        AssignPartial {
            labels: Vec::new(),
            totals: Vec::new(),
        }
    }

    /// Merges the next shard range's partial into this one: labels and
    /// shard totals both concatenate, so merging is shard-order
    /// associative by construction.
    pub fn merge(&mut self, mut other: AssignPartial) {
        self.labels.append(&mut other.labels);
        self.totals.append(&mut other.totals);
    }
}

/// Finalizes a fully merged assignment partial: the labels are complete
/// and the deviation total left-folds over the shard sums in shard
/// order — the same `total += shard_total` loop the in-process combine
/// runs. Needs no point data.
pub fn finalize_assign(partial: AssignPartial) -> (Vec<usize>, f64) {
    let mut total = 0.0f64;
    for t in partial.totals {
        total += t;
    }
    (partial.labels, total)
}

/// Sweeps one contiguous row range through the blocked kernel, labeling
/// each row with its nearest medoid slot — the unit of work a worker
/// executes per canonical shard. Bitwise identical to the scalar
/// per-row sweep (see [`assign_points`]).
pub fn assign_shard(
    kernel: &BlockKernel<'_>,
    medoids: &[usize],
    rows: std::ops::Range<usize>,
) -> (Vec<usize>, f64) {
    let mut labels = Vec::with_capacity(rows.len());
    let mut total = 0.0f64;
    let mut dists = vec![0.0f64; medoids.len()];
    // Four rows at a time against each medoid: the medoid-anchored
    // four-lane kernel is bitwise equal to the scalar per-row sweep,
    // and the per-lane argmin replays the same ascending-slot strict
    // comparisons, so labels and the deviation total are unchanged.
    let mut j = rows.start;
    while j + 4 <= rows.end {
        let quad = [j, j + 1, j + 2, j + 3];
        let mut best_slot = [0usize; 4];
        let mut best_d = [f64::INFINITY; 4];
        let mut d4 = [0.0f64; 4];
        for (slot, &m) in medoids.iter().enumerate() {
            kernel.dists_tile4(quad, m, &mut d4);
            for l in 0..4 {
                if d4[l] < best_d[l] {
                    best_d[l] = d4[l];
                    best_slot[l] = slot;
                }
            }
        }
        for l in 0..4 {
            labels.push(best_slot[l]);
            total += best_d[l];
        }
        j += 4;
    }
    for j in j..rows.end {
        kernel.dists_to(j, medoids, &mut dists);
        let mut best_slot = 0usize;
        let mut best_d = f64::INFINITY;
        for (slot, &d) in dists.iter().enumerate() {
            if d < best_d {
                best_d = d;
                best_slot = slot;
            }
        }
        labels.push(best_slot);
        total += best_d;
    }
    (labels, total)
}

/// Configuration for [`clara`].
#[derive(Debug, Clone)]
pub struct ClaraConfig {
    /// Number of sampling replicates (Kaufman & Rousseeuw suggest 5).
    pub replicates: usize,
    /// Sample size; 0 means the classic `40 + 2k`.
    pub sample_size: usize,
    /// PAM settings for each replicate.
    pub pam: PamConfig,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
}

impl Default for ClaraConfig {
    fn default() -> Self {
        ClaraConfig {
            replicates: 5,
            sample_size: 0,
            pam: PamConfig::default(),
            seed: 99,
            threads: 0,
        }
    }
}

/// Assigns all points to the nearest of the given medoid rows (indices into
/// `points`), computing distances on the fly.
///
/// The dataset is partitioned into row shards (sized to the executor's
/// reduce grain) that workers claim adaptively; each worker sweeps its rows
/// through the point set's [`blocked kernel`](Points::block_kernel) (the
/// medoid rows stay cache-hot across consecutive points) and per-shard
/// labels and deviation sums are combined in shard order. The kernel is
/// bitwise identical to [`Points::dist`] and the shard layout depends only
/// on `points.len()`, so the deviation total is bit-identical across
/// thread counts.
pub fn assign_points(points: &Points, medoids: &[usize]) -> (Vec<usize>, f64) {
    let n = points.len();
    let kernel = points.block_kernel();
    let shards = blaeu_exec::ShardSpec::with_shard_size(n, blaeu_exec::REDUCE_GRAIN);
    let parts = blaeu_exec::par_shards(&shards, 0, |_, rows| {
        let (labels, total) = assign_shard(&kernel, medoids, rows);
        AssignPartial {
            labels,
            totals: vec![total],
        }
    });
    let mut merged = AssignPartial::empty();
    for part in parts {
        merged.merge(part);
    }
    let (labels, total) = finalize_assign(merged);
    debug_assert_eq!(labels.len(), n);
    (labels, total)
}

fn run_replicate(
    points: &Points,
    k: usize,
    sample_size: usize,
    pam_config: &PamConfig,
    seed: u64,
) -> PamResult {
    let n = points.len();
    let mut indices: Vec<usize> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    indices.truncate(sample_size.min(n));
    indices.sort_unstable();

    let sub = points.subset(&indices);
    let matrix = DistanceMatrix::from_points(&sub);
    let local = pam(&matrix, k, pam_config);

    // Map sample-local medoids back to global row indices, then score the
    // medoid set on the FULL dataset.
    let medoids: Vec<usize> = local.medoids.iter().map(|&m| indices[m]).collect();
    let (labels, total_deviation) = assign_points(points, &medoids);
    PamResult {
        medoids,
        labels,
        total_deviation,
        swaps: local.swaps,
        converged: local.converged,
    }
}

/// Runs CLARA over a point set.
///
/// Deterministic for a fixed seed; replicates are seeded `seed + r` and the
/// best one (lowest full-data total deviation, ties toward the earlier
/// replicate) wins.
///
/// # Panics
/// Panics if `points` is empty or `k == 0`.
pub fn clara(points: &Points, k: usize, config: &ClaraConfig) -> PamResult {
    assert!(!points.is_empty(), "cannot cluster an empty point set");
    assert!(k > 0, "k must be positive");
    let sample_size = if config.sample_size == 0 {
        40 + 2 * k
    } else {
        config.sample_size
    }
    .min(points.len());

    let replicates = config.replicates.max(1);
    // Replicates fan out on the shared executor with a steal grain of 1 —
    // a replicate is far too coarse to batch, and PAM convergence time
    // varies per sample, so idle workers steal the stragglers. Each
    // replicate is fully seeded by its index, and inner parallel work
    // (distance matrices, assignment sweeps) degrades to sequential via
    // the nesting guard, so results are independent of the thread count.
    let results = blaeu_exec::par_map_range_grained(replicates, config.threads, 1, |r| {
        run_replicate(points, k, sample_size, &config.pam, config.seed + r as u64)
    });

    results
        .into_iter()
        .enumerate()
        .min_by(|(ra, a), (rb, b)| {
            a.total_deviation
                .total_cmp(&b.total_deviation)
                .then(ra.cmp(rb))
        })
        .map(|(_, r)| r)
        .expect("at least one replicate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Metric;
    use crate::pam::assign_to_medoids;

    fn blobs(per_blob: usize) -> (Points, Vec<usize>) {
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for c in 0..3 {
            for i in 0..per_blob {
                // Deterministic jitter.
                let jitter = ((i * 2654435761usize) % 1000) as f64 / 1000.0;
                rows.push(vec![c as f64 * 50.0 + jitter, (c as f64) * -30.0 + jitter]);
                truth.push(c);
            }
        }
        (Points::new(rows, Metric::Euclidean), truth)
    }

    #[test]
    fn recovers_blobs_like_pam() {
        let (p, truth) = blobs(200);
        let r = clara(&p, 3, &ClaraConfig::default());
        assert_eq!(r.labels.len(), 600);
        // Perfect recovery up to label permutation: check pairwise purity.
        for c in 0..3 {
            let base = r.labels[c * 200];
            for i in 0..200 {
                assert_eq!(r.labels[c * 200 + i], base, "blob {c} split");
            }
        }
        let distinct: std::collections::HashSet<usize> = r.labels.iter().copied().collect();
        assert_eq!(distinct.len(), 3);
        assert_eq!(truth.len(), 600);
    }

    #[test]
    fn deterministic() {
        let (p, _) = blobs(100);
        let a = clara(&p, 3, &ClaraConfig::default());
        let b = clara(&p, 3, &ClaraConfig::default());
        assert_eq!(a.medoids, b.medoids);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn default_sample_size_is_40_plus_2k() {
        // Indirectly: tiny data is fully sampled, so CLARA == PAM quality.
        let (p, _) = blobs(10);
        let r = clara(&p, 3, &ClaraConfig::default());
        let m = DistanceMatrix::from_points(&p);
        let exact = pam(&m, 3, &PamConfig::default());
        assert!((r.total_deviation - exact.total_deviation).abs() < 1e-9);
    }

    #[test]
    fn clara_close_to_pam_on_larger_data() {
        let (p, _) = blobs(150);
        let m = DistanceMatrix::from_points(&p);
        let exact = pam(&m, 3, &PamConfig::default());
        let approx = clara(&p, 3, &ClaraConfig::default());
        // CLARA should be within a few percent of PAM's deviation here.
        assert!(
            approx.total_deviation <= exact.total_deviation * 1.10,
            "clara {} vs pam {}",
            approx.total_deviation,
            exact.total_deviation
        );
    }

    #[test]
    fn assign_points_matches_matrix_assignment() {
        let (p, _) = blobs(30);
        let medoids = vec![5, 40, 75];
        let (labels_direct, total_direct) = assign_points(&p, &medoids);
        let m = DistanceMatrix::from_points(&p);
        let (labels_matrix, total_matrix) = assign_to_medoids(&m, &medoids);
        assert_eq!(labels_direct, labels_matrix);
        assert!((total_direct - total_matrix).abs() < 1e-9);
    }

    #[test]
    fn more_replicates_never_hurt() {
        let (p, _) = blobs(120);
        let one = clara(
            &p,
            3,
            &ClaraConfig {
                replicates: 1,
                ..ClaraConfig::default()
            },
        );
        let five = clara(&p, 3, &ClaraConfig::default());
        assert!(five.total_deviation <= one.total_deviation + 1e-9);
    }

    #[test]
    fn single_threaded_matches_parallel() {
        let (p, _) = blobs(80);
        let serial = clara(
            &p,
            3,
            &ClaraConfig {
                threads: 1,
                ..ClaraConfig::default()
            },
        );
        let parallel = clara(
            &p,
            3,
            &ClaraConfig {
                threads: 4,
                ..ClaraConfig::default()
            },
        );
        assert_eq!(serial.medoids, parallel.medoids);
        assert_eq!(serial.total_deviation, parallel.total_deviation);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_points_panic() {
        let p = Points::new(vec![], Metric::Euclidean);
        let _ = clara(&p, 2, &ClaraConfig::default());
    }
}
