//! Distance metrics and point sets.
//!
//! Blaeu's preprocessing turns tuples into numeric vectors (normalized
//! continuous variables + dummy-coded categories), then clusters them. The
//! metrics here operate on such vectors, with `NaN` marking missing
//! coordinates: distances are averaged over the observed dimensions
//! (Gower-style), so rows with a few missing cells remain comparable.

/// A distance metric over `f64` vectors with optional missing (`NaN`) cells.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Euclidean (L2). Missing dims are skipped and the sum re-scaled by
    /// `dims / observed` before the square root.
    Euclidean,
    /// Manhattan (L1), same missing-dim policy (no square root).
    Manhattan,
    /// Gower dissimilarity for mixed data: per-dimension distances in
    /// `[0, 1]` — numeric dims are |Δ| / range, categorical dims are 0/1 —
    /// averaged over observed dimensions.
    Gower {
        /// Per-dimension value ranges for numeric dims (ignored for
        /// categorical dims); zero ranges contribute 0 distance.
        ranges: Vec<f64>,
        /// True for dims holding category codes compared by equality.
        categorical: Vec<bool>,
    },
}

impl Metric {
    /// Fits a Gower metric to data: per-dimension ranges from observed
    /// values; `categorical` flags supplied by the caller.
    pub fn fit_gower(rows: &[Vec<f64>], categorical: Vec<bool>) -> Metric {
        let dims = rows.first().map_or(0, Vec::len);
        let n = rows.len();
        let mut flat = Vec::with_capacity(n * dims);
        for row in rows {
            assert_eq!(row.len(), dims, "ragged point set");
            flat.extend_from_slice(row);
        }
        Metric::fit_gower_flat(&flat, n, dims, categorical)
    }

    /// Fits a Gower metric from a flat row-major buffer (`n × dims`) —
    /// the accessor the zero-copy preprocessing path uses, so fitting
    /// ranges never materializes per-row vectors.
    ///
    /// # Panics
    /// Panics if `data.len() != n * dims` or a flag count mismatches.
    pub fn fit_gower_flat(data: &[f64], n: usize, dims: usize, categorical: Vec<bool>) -> Metric {
        assert_eq!(data.len(), n * dims, "flat buffer size mismatch");
        assert_eq!(categorical.len(), dims, "flag per dimension");
        let mut lo = vec![f64::INFINITY; dims];
        let mut hi = vec![f64::NEG_INFINITY; dims];
        for r in 0..n {
            for d in 0..dims {
                let v = data[r * dims + d];
                if v.is_finite() {
                    lo[d] = lo[d].min(v);
                    hi[d] = hi[d].max(v);
                }
            }
        }
        let ranges = lo
            .iter()
            .zip(&hi)
            .map(|(&l, &h)| if h > l { h - l } else { 0.0 })
            .collect();
        Metric::Gower {
            ranges,
            categorical,
        }
    }

    /// Distance between two vectors of equal length.
    ///
    /// Pairs with **no** commonly observed dimension are maximally
    /// uncertain, not identical: treating them as distance 0 would make
    /// near-empty rows magnetic medoids (they would sit "at distance 0"
    /// from everything). Such pairs get a pessimistic default instead —
    /// the distance of a typical random pair: `1.0` for Gower,
    /// `sqrt(2·dims)` for Euclidean and `dims` for Manhattan on
    /// standardized features.
    pub fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Metric::Euclidean => {
                let mut sum = 0.0;
                let mut observed = 0usize;
                for (x, y) in a.iter().zip(b) {
                    if x.is_finite() && y.is_finite() {
                        sum += (x - y) * (x - y);
                        observed += 1;
                    }
                }
                if observed == 0 {
                    (2.0 * a.len() as f64).sqrt()
                } else {
                    (sum * a.len() as f64 / observed as f64).sqrt()
                }
            }
            Metric::Manhattan => {
                let mut sum = 0.0;
                let mut observed = 0usize;
                for (x, y) in a.iter().zip(b) {
                    if x.is_finite() && y.is_finite() {
                        sum += (x - y).abs();
                        observed += 1;
                    }
                }
                if observed == 0 {
                    a.len() as f64
                } else {
                    sum * a.len() as f64 / observed as f64
                }
            }
            Metric::Gower {
                ranges,
                categorical,
            } => {
                let mut sum = 0.0;
                let mut observed = 0usize;
                for (d, (x, y)) in a.iter().zip(b).enumerate() {
                    if x.is_finite() && y.is_finite() {
                        observed += 1;
                        if categorical[d] {
                            if x != y {
                                sum += 1.0;
                            }
                        } else if ranges[d] > 0.0 {
                            sum += (x - y).abs() / ranges[d];
                        }
                    }
                }
                if observed == 0 {
                    1.0
                } else {
                    sum / observed as f64
                }
            }
        }
    }
}

/// A dense row-major point set paired with a metric.
///
/// This is the clustering engine's working representation: preprocessing
/// produces it from a table sample, PAM/CLARA/k-means consume it.
#[derive(Debug, Clone)]
pub struct Points {
    data: Vec<f64>,
    n: usize,
    dims: usize,
    metric: Metric,
}

impl Points {
    /// Builds a point set from rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn new(rows: Vec<Vec<f64>>, metric: Metric) -> Self {
        let n = rows.len();
        let dims = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n * dims);
        for row in &rows {
            assert_eq!(row.len(), dims, "ragged point set");
            data.extend_from_slice(row);
        }
        Points {
            data,
            n,
            dims,
            metric,
        }
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != n * dims`.
    pub fn from_flat(data: Vec<f64>, n: usize, dims: usize, metric: Metric) -> Self {
        assert_eq!(data.len(), n * dims, "flat buffer size mismatch");
        Points {
            data,
            n,
            dims,
            metric,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the set holds no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The metric in use.
    pub fn metric(&self) -> &Metric {
        &self.metric
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dims..(i + 1) * self.dims]
    }

    /// Distance between points `i` and `j`.
    #[inline]
    pub fn dist(&self, i: usize, j: usize) -> f64 {
        self.metric.dist(self.row(i), self.row(j))
    }

    /// Gathers a subset of points (by index) into a new set.
    pub fn subset(&self, indices: &[usize]) -> Points {
        let mut data = Vec::with_capacity(indices.len() * self.dims);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Points {
            data,
            n: indices.len(),
            dims: self.dims,
            metric: self.metric.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basics() {
        let m = Metric::Euclidean;
        assert_eq!(m.dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(m.dist(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn manhattan_basics() {
        let m = Metric::Manhattan;
        assert_eq!(m.dist(&[0.0, 0.0], &[3.0, 4.0]), 7.0);
    }

    #[test]
    fn missing_dims_rescaled() {
        let m = Metric::Euclidean;
        // One of two dims observed: distance scales up by sqrt(2/1).
        let d = m.dist(&[3.0, f64::NAN], &[0.0, 5.0]);
        assert!((d - (9.0f64 * 2.0).sqrt()).abs() < 1e-12);
        let m = Metric::Manhattan;
        let d = m.dist(&[3.0, f64::NAN], &[0.0, 5.0]);
        assert!((d - 6.0).abs() < 1e-12);
    }

    #[test]
    fn unobservable_pairs_are_pessimistic_not_identical() {
        // No common observed dimension: the pair must NOT look identical,
        // or near-empty rows would become magnetic medoids.
        assert!((Metric::Euclidean.dist(&[f64::NAN], &[1.0]) - 2.0f64.sqrt()).abs() < 1e-12);
        assert!((Metric::Euclidean.dist(&[f64::NAN, 2.0], &[1.0, f64::NAN]) - 2.0).abs() < 1e-12);
        assert_eq!(
            Metric::Manhattan.dist(&[f64::NAN, f64::NAN], &[1.0, 2.0]),
            2.0
        );
        let g = Metric::Gower {
            ranges: vec![1.0, 1.0],
            categorical: vec![false, false],
        };
        assert_eq!(g.dist(&[f64::NAN, f64::NAN], &[1.0, 2.0]), 1.0);
    }

    #[test]
    fn gower_mixed() {
        let rows = vec![vec![0.0, 0.0], vec![10.0, 1.0], vec![5.0, 0.0]];
        let m = Metric::fit_gower(&rows, vec![false, true]);
        // dims: numeric range 10, categorical.
        // d(0,1) = (10/10 + 1)/2 = 1.0
        assert!((m.dist(&rows[0], &rows[1]) - 1.0).abs() < 1e-12);
        // d(0,2) = (5/10 + 0)/2 = 0.25
        assert!((m.dist(&rows[0], &rows[2]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn gower_zero_range_ignored() {
        let rows = vec![vec![7.0, 0.0], vec![7.0, 3.0]];
        let m = Metric::fit_gower(&rows, vec![false, false]);
        // First dim constant → contributes 0; second: 3/3 = 1; avg over 2.
        assert!((m.dist(&rows[0], &rows[1]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gower_in_unit_interval() {
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i % 3) as f64, (i * 7 % 5) as f64])
            .collect();
        let m = Metric::fit_gower(&rows, vec![false, true, false]);
        for i in 0..rows.len() {
            for j in 0..rows.len() {
                let d = m.dist(&rows[i], &rows[j]);
                assert!((0.0..=1.0).contains(&d), "gower({i},{j}) = {d}");
            }
        }
    }

    #[test]
    fn fit_gower_flat_matches_row_fit() {
        let rows: Vec<Vec<f64>> = (0..15)
            .map(|i| vec![i as f64, (i % 4) as f64, f64::NAN])
            .collect();
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let by_rows = Metric::fit_gower(&rows, vec![false, true, false]);
        let by_flat = Metric::fit_gower_flat(&flat, 15, 3, vec![false, true, false]);
        assert_eq!(by_rows, by_flat);
    }

    #[test]
    fn points_layout() {
        let p = Points::new(
            vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
            Metric::Euclidean,
        );
        assert_eq!(p.len(), 3);
        assert_eq!(p.dims(), 2);
        assert_eq!(p.row(1), &[3.0, 4.0]);
        assert!((p.dist(0, 1) - 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn subset_gathers() {
        let p = Points::new(vec![vec![1.0], vec![2.0], vec![3.0]], Metric::Manhattan);
        let s = p.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0), &[3.0]);
        assert_eq!(s.row(1), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Points::new(vec![vec![1.0], vec![1.0, 2.0]], Metric::Euclidean);
    }

    #[test]
    fn from_flat_roundtrip() {
        let p = Points::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2, 2, Metric::Euclidean);
        assert_eq!(p.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn metric_symmetry_and_identity() {
        let rows: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![(i as f64).sin(), (i as f64).cos(), i as f64])
            .collect();
        for metric in [
            Metric::Euclidean,
            Metric::Manhattan,
            Metric::fit_gower(&rows, vec![false, false, false]),
        ] {
            for i in 0..rows.len() {
                assert_eq!(metric.dist(&rows[i], &rows[i]), 0.0);
                for j in 0..rows.len() {
                    let dij = metric.dist(&rows[i], &rows[j]);
                    let dji = metric.dist(&rows[j], &rows[i]);
                    assert!((dij - dji).abs() < 1e-12);
                    assert!(dij >= 0.0);
                }
            }
        }
    }
}
