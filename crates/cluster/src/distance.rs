//! Distance metrics and point sets.
//!
//! Blaeu's preprocessing turns tuples into numeric vectors (normalized
//! continuous variables + dummy-coded categories), then clusters them. The
//! metrics here operate on such vectors, with `NaN` marking missing
//! coordinates: distances are averaged over the observed dimensions
//! (Gower-style), so rows with a few missing cells remain comparable.
//!
//! Two layers serve the hot loops:
//!
//! - [`Metric::dist_block`] fills a tile of pairwise distances straight
//!   from the row-major flat matrix — reciprocal ranges are precomputed at
//!   fit time and rows whose cells are all observed take a branch-free
//!   inner loop.
//! - [`BlockKernel`] (from [`Points::block_kernel`]) additionally exploits
//!   dictionary codes kept beside the matrix for dummy-coded categorical
//!   blocks: one `u32` equality test replaces the whole block's float
//!   compares, with results bitwise identical to [`Points::dist`].

use blaeu_store::Bitmap;

/// Sentinel dictionary code marking a missing categorical value in coded
/// point sets (see [`Points::from_flat_coded`]).
pub const CODE_NULL: u32 = u32::MAX;

/// A contiguous run of dummy dimensions born from one categorical source
/// column. Within a block, two rows' dummy sub-vectors are equal **iff**
/// their dictionary codes are equal, and a [`CODE_NULL`] code corresponds
/// to the whole block being unobserved (`NaN` dummies) — the invariants the
/// coded fast path relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatBlock {
    /// First dummy dimension of the block.
    pub start: usize,
    /// Number of dummy dimensions (kept levels + optional overflow slot).
    pub len: usize,
}

/// A distance metric over `f64` vectors with optional missing (`NaN`) cells.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Euclidean (L2). Missing dims are skipped and the sum re-scaled by
    /// `dims / observed` before the square root.
    Euclidean,
    /// Manhattan (L1), same missing-dim policy (no square root).
    Manhattan,
    /// Gower dissimilarity for mixed data: per-dimension distances in
    /// `[0, 1]` — numeric dims are |Δ| · 1/range, categorical dims are
    /// 0/1 — averaged over observed dimensions.
    Gower {
        /// Per-dimension reciprocal value ranges for numeric dims
        /// (ignored for categorical dims); zero-range dims carry factor
        /// `0.0` and so contribute no distance. Storing the reciprocal
        /// keeps division out of the distance inner loop.
        inv_ranges: Vec<f64>,
        /// True for dims holding category codes compared by equality.
        categorical: Vec<bool>,
    },
}

impl Metric {
    /// Fits a Gower metric to data: per-dimension ranges from observed
    /// values; `categorical` flags supplied by the caller.
    pub fn fit_gower(rows: &[Vec<f64>], categorical: Vec<bool>) -> Metric {
        let dims = rows.first().map_or(0, Vec::len);
        let n = rows.len();
        let mut flat = Vec::with_capacity(n * dims);
        for row in rows {
            assert_eq!(row.len(), dims, "ragged point set");
            flat.extend_from_slice(row);
        }
        Metric::fit_gower_flat(&flat, n, dims, categorical)
    }

    /// Fits a Gower metric from a flat row-major buffer (`n × dims`) —
    /// the accessor the zero-copy preprocessing path uses, so fitting
    /// ranges never materializes per-row vectors.
    ///
    /// Fully observed rows (the common case) update every dimension's
    /// bounds branch-free; rows with missing cells are revisited through
    /// the word-wise [`Bitmap::iter_ones`] walk of the complement mask.
    /// Ranges are reciprocated once here (`0.0` for zero ranges), so the
    /// distance loops multiply instead of divide.
    ///
    /// # Panics
    /// Panics if `data.len() != n * dims` or a flag count mismatches.
    pub fn fit_gower_flat(data: &[f64], n: usize, dims: usize, categorical: Vec<bool>) -> Metric {
        assert_eq!(data.len(), n * dims, "flat buffer size mismatch");
        assert_eq!(categorical.len(), dims, "flag per dimension");
        let mut lo = vec![f64::INFINITY; dims];
        let mut hi = vec![f64::NEG_INFINITY; dims];
        // Pass 1: fully observed rows, no per-cell branch. The mask of the
        // remaining rows is built word-wise as a side effect.
        let mut holes = Bitmap::new_clear(n);
        for r in 0..n {
            let row = &data[r * dims..(r + 1) * dims];
            if row.iter().all(|v| v.is_finite()) {
                for d in 0..dims {
                    lo[d] = lo[d].min(row[d]);
                    hi[d] = hi[d].max(row[d]);
                }
            } else {
                holes.set(r);
            }
        }
        // Pass 2: only rows with missing cells, per-cell checked.
        for r in holes.iter_ones() {
            let row = &data[r * dims..(r + 1) * dims];
            for d in 0..dims {
                let v = row[d];
                if v.is_finite() {
                    lo[d] = lo[d].min(v);
                    hi[d] = hi[d].max(v);
                }
            }
        }
        let inv_ranges = lo
            .iter()
            .zip(&hi)
            .map(|(&l, &h)| if h > l { 1.0 / (h - l) } else { 0.0 })
            .collect();
        Metric::Gower {
            inv_ranges,
            categorical,
        }
    }

    /// Distance between two vectors of equal length.
    ///
    /// Pairs with **no** commonly observed dimension are maximally
    /// uncertain, not identical: treating them as distance 0 would make
    /// near-empty rows magnetic medoids (they would sit "at distance 0"
    /// from everything). Such pairs get a pessimistic default instead —
    /// the distance of a typical random pair: `1.0` for Gower,
    /// `sqrt(2·dims)` for Euclidean and `dims` for Manhattan on
    /// standardized features.
    pub fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Metric::Euclidean => {
                let mut sum = 0.0;
                let mut observed = 0usize;
                for (x, y) in a.iter().zip(b) {
                    if x.is_finite() && y.is_finite() {
                        sum += (x - y) * (x - y);
                        observed += 1;
                    }
                }
                if observed == 0 {
                    (2.0 * a.len() as f64).sqrt()
                } else {
                    (sum * a.len() as f64 / observed as f64).sqrt()
                }
            }
            Metric::Manhattan => {
                let mut sum = 0.0;
                let mut observed = 0usize;
                for (x, y) in a.iter().zip(b) {
                    if x.is_finite() && y.is_finite() {
                        sum += (x - y).abs();
                        observed += 1;
                    }
                }
                if observed == 0 {
                    a.len() as f64
                } else {
                    sum * a.len() as f64 / observed as f64
                }
            }
            Metric::Gower {
                inv_ranges,
                categorical,
            } => {
                let mut sum = 0.0;
                let mut observed = 0usize;
                for (d, (x, y)) in a.iter().zip(b).enumerate() {
                    if x.is_finite() && y.is_finite() {
                        observed += 1;
                        if categorical[d] {
                            if x != y {
                                sum += 1.0;
                            }
                        } else {
                            sum += (x - y).abs() * inv_ranges[d];
                        }
                    }
                }
                if observed == 0 {
                    1.0
                } else {
                    sum / observed as f64
                }
            }
        }
    }

    /// Fills a `rows_i.len() × rows_j.len()` tile of pairwise distances
    /// from a row-major flat matrix into `out` (row-major), without
    /// materializing per-row vectors.
    ///
    /// Rows whose cells are all finite — detected once per tile row, not
    /// per pair — go through a branch-free inner loop over the dimensions;
    /// remaining pairs fall back to the observed-dimension scan. Both
    /// paths apply float operations in the same per-cell order, so every
    /// cell equals [`Metric::dist`] on the corresponding row slices
    /// bitwise.
    ///
    /// # Panics
    /// Panics if `data` is too small for the requested rows or if
    /// `out.len() != rows_i.len() * rows_j.len()`.
    pub fn dist_block(
        &self,
        data: &[f64],
        dims: usize,
        rows_i: std::ops::Range<usize>,
        rows_j: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        let (bi, bj) = (rows_i.len(), rows_j.len());
        assert_eq!(out.len(), bi * bj, "tile buffer size mismatch");
        let max_row = rows_i.end.max(rows_j.end);
        assert!(max_row * dims <= data.len(), "rows beyond the flat matrix");
        let row = |i: usize| &data[i * dims..(i + 1) * dims];
        let all_finite = |i: usize| row(i).iter().all(|v| v.is_finite());
        let fast_j: Vec<bool> = rows_j.clone().map(all_finite).collect();
        for (ti, i) in rows_i.enumerate() {
            let a = row(i);
            let strip = &mut out[ti * bj..(ti + 1) * bj];
            if all_finite(i) {
                for (tj, j) in rows_j.clone().enumerate() {
                    strip[tj] = if fast_j[tj] {
                        self.dist_fast(a, row(j))
                    } else {
                        self.dist(a, row(j))
                    };
                }
            } else {
                for (tj, j) in rows_j.clone().enumerate() {
                    strip[tj] = self.dist(a, row(j));
                }
            }
        }
    }

    /// Distance between two rows known to have every cell observed: the
    /// finite checks drop out but the accumulation order (and the final
    /// rescale expression) match [`Metric::dist`] exactly, keeping the
    /// result bitwise identical.
    #[inline]
    fn dist_fast(&self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            Metric::Euclidean => {
                let mut sum = 0.0;
                for (x, y) in a.iter().zip(b) {
                    sum += (x - y) * (x - y);
                }
                let observed = a.len();
                (sum * a.len() as f64 / observed as f64).sqrt()
            }
            Metric::Manhattan => {
                let mut sum = 0.0;
                for (x, y) in a.iter().zip(b) {
                    sum += (x - y).abs();
                }
                let observed = a.len();
                sum * a.len() as f64 / observed as f64
            }
            Metric::Gower {
                inv_ranges,
                categorical,
            } => {
                let mut sum = 0.0;
                for (d, (x, y)) in a.iter().zip(b).enumerate() {
                    if categorical[d] {
                        if x != y {
                            sum += 1.0;
                        }
                    } else {
                        sum += (x - y).abs() * inv_ranges[d];
                    }
                }
                sum / a.len() as f64
            }
        }
    }
}

/// The dimension layout a coded point set evaluates over: numeric runs
/// interleaved with categorical code blocks, in dimension order. Both the
/// scalar [`Points::dist`] and the [`BlockKernel`] walk the same segment
/// list, which is what keeps them bitwise identical.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Segment {
    /// Plain dims `start..end` of the flat matrix.
    Numeric { start: usize, end: usize },
    /// Categorical-flagged dims `start..end` compared by equality
    /// (Gower only; other metrics treat flagged dims numerically).
    Dummy { start: usize, end: usize },
    /// Code column `block` standing in for `len` dummy dims.
    Block { block: usize, len: usize },
}

/// Splits `start..end` into maximal runs of equal `flags[d]`, emitting
/// `Dummy` for flagged runs and `Numeric` otherwise. Hoisting the flag
/// test to segment construction removes the per-dim branch from the
/// distance inner loop.
fn push_runs(segments: &mut Vec<Segment>, start: usize, end: usize, flags: Option<&[bool]>) {
    let Some(flags) = flags else {
        segments.push(Segment::Numeric { start, end });
        return;
    };
    let mut run = start;
    while run < end {
        let flagged = flags[run];
        let mut stop = run + 1;
        while stop < end && flags[stop] == flagged {
            stop += 1;
        }
        segments.push(if flagged {
            Segment::Dummy {
                start: run,
                end: stop,
            }
        } else {
            Segment::Numeric {
                start: run,
                end: stop,
            }
        });
        run = stop;
    }
}

fn build_segments(dims: usize, blocks: &[CatBlock], flags: Option<&[bool]>) -> Vec<Segment> {
    let mut segments = Vec::with_capacity(2 * blocks.len() + 1);
    let mut d = 0usize;
    for (bi, b) in blocks.iter().enumerate() {
        assert!(b.len > 0, "empty categorical block");
        assert!(b.start >= d, "categorical blocks overlap or are unsorted");
        assert!(b.start + b.len <= dims, "categorical block beyond dims");
        if d < b.start {
            push_runs(&mut segments, d, b.start, flags);
        }
        segments.push(Segment::Block {
            block: bi,
            len: b.len,
        });
        d = b.start + b.len;
    }
    if d < dims {
        push_runs(&mut segments, d, dims, flags);
    } else if dims == 0 {
        segments.push(Segment::Numeric { start: 0, end: 0 });
    }
    segments
}

/// One segment-walk distance evaluation. `FAST` skips the per-cell
/// observedness checks (caller guarantees both rows are fully observed);
/// the arithmetic sequence is identical either way, so fast and general
/// results agree bitwise on fully observed pairs.
#[inline]
fn segment_dist<const FAST: bool>(
    metric: &Metric,
    segments: &[Segment],
    dims: usize,
    a: &[f64],
    b: &[f64],
    codes_a: &[u32],
    codes_b: &[u32],
) -> f64 {
    let mut sum = 0.0;
    let mut observed = 0usize;
    match metric {
        Metric::Euclidean => {
            for seg in segments {
                match *seg {
                    // Euclidean treats flagged dims numerically (dummies
                    // are 0/1 floats), so Dummy degenerates to Numeric.
                    Segment::Numeric { start, end } | Segment::Dummy { start, end } => {
                        for d in start..end {
                            let (x, y) = (a[d], b[d]);
                            if FAST || (x.is_finite() && y.is_finite()) {
                                sum += (x - y) * (x - y);
                                observed += 1;
                            }
                        }
                    }
                    Segment::Block { block, len } => {
                        let (x, y) = (codes_a[block], codes_b[block]);
                        if FAST || (x != CODE_NULL && y != CODE_NULL) {
                            observed += len;
                            if x != y {
                                // Two differing one-hot dummies: 1² + 1².
                                sum += 2.0;
                            }
                        }
                    }
                }
            }
            if observed == 0 {
                (2.0 * dims as f64).sqrt()
            } else {
                (sum * dims as f64 / observed as f64).sqrt()
            }
        }
        Metric::Manhattan => {
            for seg in segments {
                match *seg {
                    Segment::Numeric { start, end } | Segment::Dummy { start, end } => {
                        for d in start..end {
                            let (x, y) = (a[d], b[d]);
                            if FAST || (x.is_finite() && y.is_finite()) {
                                sum += (x - y).abs();
                                observed += 1;
                            }
                        }
                    }
                    Segment::Block { block, len } => {
                        let (x, y) = (codes_a[block], codes_b[block]);
                        if FAST || (x != CODE_NULL && y != CODE_NULL) {
                            observed += len;
                            if x != y {
                                sum += 2.0;
                            }
                        }
                    }
                }
            }
            if observed == 0 {
                dims as f64
            } else {
                sum * dims as f64 / observed as f64
            }
        }
        Metric::Gower { inv_ranges, .. } => {
            for seg in segments {
                match *seg {
                    // The categorical flags were resolved into Dummy
                    // segments at build time, so the numeric inner loop
                    // is branch-free on the dimension kind.
                    Segment::Numeric { start, end } => {
                        for d in start..end {
                            let (x, y) = (a[d], b[d]);
                            if FAST || (x.is_finite() && y.is_finite()) {
                                observed += 1;
                                sum += (x - y).abs() * inv_ranges[d];
                            }
                        }
                    }
                    Segment::Dummy { start, end } => {
                        for d in start..end {
                            let (x, y) = (a[d], b[d]);
                            if FAST || (x.is_finite() && y.is_finite()) {
                                observed += 1;
                                if x != y {
                                    sum += 1.0;
                                }
                            }
                        }
                    }
                    Segment::Block { block, len } => {
                        let (x, y) = (codes_a[block], codes_b[block]);
                        if FAST || (x != CODE_NULL && y != CODE_NULL) {
                            observed += len;
                            if x != y {
                                sum += 2.0;
                            }
                        }
                    }
                }
            }
            if observed == 0 {
                1.0
            } else {
                sum / observed as f64
            }
        }
    }
}

/// Four distance evaluations sharing one anchor row `a`: lane `l` computes
/// the fast-path distance between `a` and `b[l]`.
///
/// Each lane keeps its own accumulator and walks the dimensions in the
/// exact order [`segment_dist`]`::<true>` does, so every lane's result is
/// bitwise identical to the scalar fast path — the lanes only buy
/// instruction-level parallelism across the four otherwise-serial
/// floating-point add chains. All five rows must be fully observed
/// (caller checks the kernel's `fast` flags), which also pins
/// `observed == dims`, so the finals divide by `dims` directly.
///
/// Because `(x - y)` and `(y - x)` are exact negations (and abs, square
/// and equality are symmetric), `segment_dist4(a, [r0..r3])` is also
/// bitwise equal to `dist(r_l, a)` — callers may orient the anchor either
/// way, which is what the assignment sweep exploits (anchor = medoid).
fn segment_dist4(
    metric: &Metric,
    segments: &[Segment],
    dims: usize,
    a: &[f64],
    b: [&[f64]; 4],
    codes_a: &[u32],
    codes_b: [&[u32]; 4],
) -> [f64; 4] {
    let mut s = [0.0f64; 4];
    match metric {
        Metric::Euclidean => {
            for seg in segments {
                match *seg {
                    Segment::Numeric { start, end } | Segment::Dummy { start, end } => {
                        let xa = &a[start..end];
                        let (b0, b1) = (&b[0][start..end], &b[1][start..end]);
                        let (b2, b3) = (&b[2][start..end], &b[3][start..end]);
                        for (k, &x) in xa.iter().enumerate() {
                            let d0 = x - b0[k];
                            let d1 = x - b1[k];
                            let d2 = x - b2[k];
                            let d3 = x - b3[k];
                            s[0] += d0 * d0;
                            s[1] += d1 * d1;
                            s[2] += d2 * d2;
                            s[3] += d3 * d3;
                        }
                    }
                    Segment::Block { block, .. } => {
                        let x = codes_a[block];
                        for l in 0..4 {
                            if x != codes_b[l][block] {
                                s[l] += 2.0;
                            }
                        }
                    }
                }
            }
            if dims == 0 {
                [(2.0 * dims as f64).sqrt(); 4]
            } else {
                s.map(|v| (v * dims as f64 / dims as f64).sqrt())
            }
        }
        Metric::Manhattan => {
            for seg in segments {
                match *seg {
                    Segment::Numeric { start, end } | Segment::Dummy { start, end } => {
                        let xa = &a[start..end];
                        let (b0, b1) = (&b[0][start..end], &b[1][start..end]);
                        let (b2, b3) = (&b[2][start..end], &b[3][start..end]);
                        for (k, &x) in xa.iter().enumerate() {
                            s[0] += (x - b0[k]).abs();
                            s[1] += (x - b1[k]).abs();
                            s[2] += (x - b2[k]).abs();
                            s[3] += (x - b3[k]).abs();
                        }
                    }
                    Segment::Block { block, .. } => {
                        let x = codes_a[block];
                        for l in 0..4 {
                            if x != codes_b[l][block] {
                                s[l] += 2.0;
                            }
                        }
                    }
                }
            }
            if dims == 0 {
                [dims as f64; 4]
            } else {
                s.map(|v| v * dims as f64 / dims as f64)
            }
        }
        Metric::Gower { inv_ranges, .. } => {
            for seg in segments {
                match *seg {
                    Segment::Numeric { start, end } => {
                        let xa = &a[start..end];
                        let inv = &inv_ranges[start..end];
                        let (b0, b1) = (&b[0][start..end], &b[1][start..end]);
                        let (b2, b3) = (&b[2][start..end], &b[3][start..end]);
                        for (k, (&x, &w)) in xa.iter().zip(inv).enumerate() {
                            s[0] += (x - b0[k]).abs() * w;
                            s[1] += (x - b1[k]).abs() * w;
                            s[2] += (x - b2[k]).abs() * w;
                            s[3] += (x - b3[k]).abs() * w;
                        }
                    }
                    Segment::Dummy { start, end } => {
                        let xa = &a[start..end];
                        let (b0, b1) = (&b[0][start..end], &b[1][start..end]);
                        let (b2, b3) = (&b[2][start..end], &b[3][start..end]);
                        for (k, &x) in xa.iter().enumerate() {
                            if x != b0[k] {
                                s[0] += 1.0;
                            }
                            if x != b1[k] {
                                s[1] += 1.0;
                            }
                            if x != b2[k] {
                                s[2] += 1.0;
                            }
                            if x != b3[k] {
                                s[3] += 1.0;
                            }
                        }
                    }
                    Segment::Block { block, .. } => {
                        let x = codes_a[block];
                        for l in 0..4 {
                            if x != codes_b[l][block] {
                                s[l] += 2.0;
                            }
                        }
                    }
                }
            }
            if dims == 0 {
                [1.0; 4]
            } else {
                s.map(|v| v / dims as f64)
            }
        }
    }
}

/// A dense row-major point set paired with a metric.
///
/// This is the clustering engine's working representation: preprocessing
/// produces it from a table sample, PAM/CLARA/k-means consume it. Coded
/// sets additionally carry a `u32` dictionary code per categorical block
/// beside the flat matrix ([`Points::from_flat_coded`]): distance
/// evaluation then compares codes instead of the block's dummy floats.
#[derive(Debug, Clone)]
pub struct Points {
    data: Vec<f64>,
    n: usize,
    dims: usize,
    metric: Metric,
    cat_blocks: Vec<CatBlock>,
    /// `n × cat_blocks.len()` row-major dictionary codes ([`CODE_NULL`]
    /// for missing). Empty when the set carries no coded blocks.
    cat_codes: Vec<u32>,
    segments: Vec<Segment>,
}

impl Points {
    /// Builds a point set from rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn new(rows: Vec<Vec<f64>>, metric: Metric) -> Self {
        let n = rows.len();
        let dims = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n * dims);
        for row in &rows {
            assert_eq!(row.len(), dims, "ragged point set");
            data.extend_from_slice(row);
        }
        Points::from_flat(data, n, dims, metric)
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != n * dims`.
    pub fn from_flat(data: Vec<f64>, n: usize, dims: usize, metric: Metric) -> Self {
        Points::from_flat_coded(data, n, dims, metric, Vec::new(), Vec::new())
    }

    /// Builds from a flat row-major buffer plus dictionary codes for
    /// dummy-coded categorical blocks.
    ///
    /// The caller (normally preprocessing) guarantees the coded
    /// invariant: within each block, two rows' dummy sub-vectors are
    /// equal iff their codes are equal, and a [`CODE_NULL`] code means
    /// the block's dummies are all unobserved (`NaN`).
    ///
    /// # Panics
    /// Panics if buffer sizes mismatch, blocks are unsorted / overlapping
    /// / out of bounds, or (for Gower) a block covers dims not flagged
    /// categorical.
    pub fn from_flat_coded(
        data: Vec<f64>,
        n: usize,
        dims: usize,
        metric: Metric,
        cat_blocks: Vec<CatBlock>,
        cat_codes: Vec<u32>,
    ) -> Self {
        assert_eq!(data.len(), n * dims, "flat buffer size mismatch");
        assert_eq!(
            cat_codes.len(),
            n * cat_blocks.len(),
            "one code per row per categorical block"
        );
        let flags = match &metric {
            Metric::Gower { categorical, .. } => Some(categorical.as_slice()),
            _ => None,
        };
        let segments = build_segments(dims, &cat_blocks, flags);
        if let Metric::Gower { categorical, .. } = &metric {
            for b in &cat_blocks {
                assert!(
                    categorical[b.start..b.start + b.len].iter().all(|&c| c),
                    "coded block over non-categorical dims"
                );
            }
        }
        Points {
            data,
            n,
            dims,
            metric,
            cat_blocks,
            cat_codes,
            segments,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the set holds no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The metric in use.
    pub fn metric(&self) -> &Metric {
        &self.metric
    }

    /// The categorical code blocks (empty for uncoded sets).
    pub fn cat_blocks(&self) -> &[CatBlock] {
        &self.cat_blocks
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dims..(i + 1) * self.dims]
    }

    /// Row `i`'s dictionary codes (empty for uncoded sets).
    #[inline]
    pub fn codes(&self, i: usize) -> &[u32] {
        let nb = self.cat_blocks.len();
        &self.cat_codes[i * nb..(i + 1) * nb]
    }

    /// Distance between points `i` and `j`.
    #[inline]
    pub fn dist(&self, i: usize, j: usize) -> f64 {
        segment_dist::<false>(
            &self.metric,
            &self.segments,
            self.dims,
            self.row(i),
            self.row(j),
            self.codes(i),
            self.codes(j),
        )
    }

    /// A reusable evaluation kernel over this point set (precomputed
    /// per-row observedness flags). Every distance it produces is bitwise
    /// identical to [`Points::dist`].
    pub fn block_kernel(&self) -> BlockKernel<'_> {
        let fast = (0..self.n)
            .map(|i| {
                self.row(i).iter().all(|v| v.is_finite())
                    && self.codes(i).iter().all(|&c| c != CODE_NULL)
            })
            .collect();
        BlockKernel { points: self, fast }
    }

    /// Gathers a subset of points (by index) into a new set.
    pub fn subset(&self, indices: &[usize]) -> Points {
        let mut data = Vec::with_capacity(indices.len() * self.dims);
        let nb = self.cat_blocks.len();
        let mut cat_codes = Vec::with_capacity(indices.len() * nb);
        for &i in indices {
            data.extend_from_slice(self.row(i));
            cat_codes.extend_from_slice(self.codes(i));
        }
        Points {
            data,
            n: indices.len(),
            dims: self.dims,
            metric: self.metric.clone(),
            cat_blocks: self.cat_blocks.clone(),
            cat_codes,
            segments: self.segments.clone(),
        }
    }
}

/// A cache-friendly distance kernel over a [`Points`] set.
///
/// Construction scans every row once and remembers whether it is fully
/// observed (all cells finite, no [`CODE_NULL`] codes); pairs of such rows
/// take branch-free inner loops. The arithmetic sequence per cell matches
/// the scalar path exactly, so fills are bitwise identical to calling
/// [`Points::dist`] per pair — whatever the tiling or thread layout above.
#[derive(Debug)]
pub struct BlockKernel<'a> {
    points: &'a Points,
    fast: Vec<bool>,
}

impl BlockKernel<'_> {
    /// Distance between points `i` and `j` (bitwise equal to
    /// [`Points::dist`]).
    #[inline]
    pub fn dist(&self, i: usize, j: usize) -> f64 {
        let p = self.points;
        if self.fast[i] && self.fast[j] {
            segment_dist::<true>(
                &p.metric,
                &p.segments,
                p.dims,
                p.row(i),
                p.row(j),
                p.codes(i),
                p.codes(j),
            )
        } else {
            p.dist(i, j)
        }
    }

    /// Fills `out[k] = dist(i, j_start + k)` for a contiguous strip of
    /// columns — the inner primitive of the condensed-matrix fill. The
    /// row-`i` observedness branch is hoisted out of the loop, and runs
    /// of four fully observed columns take the four-lane kernel
    /// ([`segment_dist4`]), which is bitwise identical per cell.
    pub fn fill_strip(&self, i: usize, j_start: usize, out: &mut [f64]) {
        let p = self.points;
        if self.fast[i] {
            let (a, ca) = (p.row(i), p.codes(i));
            let mut k = 0usize;
            while k + 4 <= out.len() {
                let j = j_start + k;
                if self.fast[j] && self.fast[j + 1] && self.fast[j + 2] && self.fast[j + 3] {
                    let quad = segment_dist4(
                        &p.metric,
                        &p.segments,
                        p.dims,
                        a,
                        [p.row(j), p.row(j + 1), p.row(j + 2), p.row(j + 3)],
                        ca,
                        [p.codes(j), p.codes(j + 1), p.codes(j + 2), p.codes(j + 3)],
                    );
                    out[k..k + 4].copy_from_slice(&quad);
                } else {
                    for t in 0..4 {
                        out[k + t] = self.dist(i, j + t);
                    }
                }
                k += 4;
            }
            for (t, slot) in out.iter_mut().enumerate().skip(k) {
                *slot = self.dist(i, j_start + t);
            }
        } else {
            for (k, slot) in out.iter_mut().enumerate() {
                *slot = p.dist(i, j_start + k);
            }
        }
    }

    /// Fills `out[l] = dist(rows[l], m)` for four consecutive evaluation
    /// rows against one shared target — the assignment-sweep primitive.
    /// When the target and all four rows are fully observed this anchors
    /// the four-lane kernel at the *target* row, which by operand-swap
    /// symmetry (`x−y` and `y−x` are exact negations; abs, square and
    /// equality are symmetric) is bitwise equal to the row-anchored
    /// scalar evaluation.
    pub fn dists_tile4(&self, rows: [usize; 4], m: usize, out: &mut [f64; 4]) {
        let p = self.points;
        if self.fast[m] && rows.iter().all(|&r| self.fast[r]) {
            *out = segment_dist4(
                &p.metric,
                &p.segments,
                p.dims,
                p.row(m),
                [
                    p.row(rows[0]),
                    p.row(rows[1]),
                    p.row(rows[2]),
                    p.row(rows[3]),
                ],
                p.codes(m),
                [
                    p.codes(rows[0]),
                    p.codes(rows[1]),
                    p.codes(rows[2]),
                    p.codes(rows[3]),
                ],
            );
        } else {
            for (slot, &r) in out.iter_mut().zip(&rows) {
                *slot = self.dist(r, m);
            }
        }
    }

    /// Fills `out[s] = dist(i, targets[s])` — the assignment sweep
    /// primitive (targets are typically the medoid rows, which stay hot
    /// in cache across consecutive `i`).
    pub fn dists_to(&self, i: usize, targets: &[usize], out: &mut [f64]) {
        debug_assert_eq!(targets.len(), out.len());
        let p = self.points;
        if self.fast[i] {
            let (a, ca) = (p.row(i), p.codes(i));
            for (slot, &m) in out.iter_mut().zip(targets) {
                *slot = if self.fast[m] {
                    segment_dist::<true>(
                        &p.metric,
                        &p.segments,
                        p.dims,
                        a,
                        p.row(m),
                        ca,
                        p.codes(m),
                    )
                } else {
                    p.dist(i, m)
                };
            }
        } else {
            for (slot, &m) in out.iter_mut().zip(targets) {
                *slot = p.dist(i, m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basics() {
        let m = Metric::Euclidean;
        assert_eq!(m.dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(m.dist(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn manhattan_basics() {
        let m = Metric::Manhattan;
        assert_eq!(m.dist(&[0.0, 0.0], &[3.0, 4.0]), 7.0);
    }

    #[test]
    fn missing_dims_rescaled() {
        let m = Metric::Euclidean;
        // One of two dims observed: distance scales up by sqrt(2/1).
        let d = m.dist(&[3.0, f64::NAN], &[0.0, 5.0]);
        assert!((d - (9.0f64 * 2.0).sqrt()).abs() < 1e-12);
        let m = Metric::Manhattan;
        let d = m.dist(&[3.0, f64::NAN], &[0.0, 5.0]);
        assert!((d - 6.0).abs() < 1e-12);
    }

    #[test]
    fn unobservable_pairs_are_pessimistic_not_identical() {
        // No common observed dimension: the pair must NOT look identical,
        // or near-empty rows would become magnetic medoids.
        assert!((Metric::Euclidean.dist(&[f64::NAN], &[1.0]) - 2.0f64.sqrt()).abs() < 1e-12);
        assert!((Metric::Euclidean.dist(&[f64::NAN, 2.0], &[1.0, f64::NAN]) - 2.0).abs() < 1e-12);
        assert_eq!(
            Metric::Manhattan.dist(&[f64::NAN, f64::NAN], &[1.0, 2.0]),
            2.0
        );
        let g = Metric::Gower {
            inv_ranges: vec![1.0, 1.0],
            categorical: vec![false, false],
        };
        assert_eq!(g.dist(&[f64::NAN, f64::NAN], &[1.0, 2.0]), 1.0);
    }

    #[test]
    fn gower_mixed() {
        let rows = vec![vec![0.0, 0.0], vec![10.0, 1.0], vec![5.0, 0.0]];
        let m = Metric::fit_gower(&rows, vec![false, true]);
        // dims: numeric range 10, categorical.
        // d(0,1) = (10/10 + 1)/2 = 1.0
        assert!((m.dist(&rows[0], &rows[1]) - 1.0).abs() < 1e-12);
        // d(0,2) = (5/10 + 0)/2 = 0.25
        assert!((m.dist(&rows[0], &rows[2]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn gower_zero_range_ignored() {
        let rows = vec![vec![7.0, 0.0], vec![7.0, 3.0]];
        let m = Metric::fit_gower(&rows, vec![false, false]);
        // First dim constant → factor 0.0; second: 3/3 = 1; avg over 2.
        assert!((m.dist(&rows[0], &rows[1]) - 0.5).abs() < 1e-12);
        if let Metric::Gower { inv_ranges, .. } = &m {
            assert_eq!(inv_ranges[0], 0.0, "zero range reciprocates to 0.0");
        } else {
            unreachable!()
        }
    }

    #[test]
    fn gower_in_unit_interval() {
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i % 3) as f64, (i * 7 % 5) as f64])
            .collect();
        let m = Metric::fit_gower(&rows, vec![false, true, false]);
        for i in 0..rows.len() {
            for j in 0..rows.len() {
                let d = m.dist(&rows[i], &rows[j]);
                assert!((0.0..=1.0).contains(&d), "gower({i},{j}) = {d}");
            }
        }
    }

    #[test]
    fn fit_gower_flat_matches_row_fit() {
        let rows: Vec<Vec<f64>> = (0..15)
            .map(|i| vec![i as f64, (i % 4) as f64, f64::NAN])
            .collect();
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let by_rows = Metric::fit_gower(&rows, vec![false, true, false]);
        let by_flat = Metric::fit_gower_flat(&flat, 15, 3, vec![false, true, false]);
        assert_eq!(by_rows, by_flat);
    }

    #[test]
    fn fit_gower_flat_handles_scattered_missing() {
        // Bounds must come from observed cells of *both* passes: make the
        // extreme of one dim live on a row that is missing another dim.
        let flat = vec![
            1.0,
            f64::NAN, //
            100.0,
            5.0, //
            -50.0,
            7.0,
        ];
        let m = Metric::fit_gower_flat(&flat, 3, 2, vec![false, false]);
        if let Metric::Gower { inv_ranges, .. } = m {
            assert!((inv_ranges[0] - 1.0 / 150.0).abs() < 1e-15);
            assert!((inv_ranges[1] - 1.0 / 2.0).abs() < 1e-15);
        } else {
            unreachable!()
        }
    }

    #[test]
    fn points_layout() {
        let p = Points::new(
            vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
            Metric::Euclidean,
        );
        assert_eq!(p.len(), 3);
        assert_eq!(p.dims(), 2);
        assert_eq!(p.row(1), &[3.0, 4.0]);
        assert!((p.dist(0, 1) - 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn subset_gathers() {
        let p = Points::new(vec![vec![1.0], vec![2.0], vec![3.0]], Metric::Manhattan);
        let s = p.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0), &[3.0]);
        assert_eq!(s.row(1), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Points::new(vec![vec![1.0], vec![1.0, 2.0]], Metric::Euclidean);
    }

    #[test]
    fn from_flat_roundtrip() {
        let p = Points::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2, 2, Metric::Euclidean);
        assert_eq!(p.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn metric_symmetry_and_identity() {
        let rows: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![(i as f64).sin(), (i as f64).cos(), i as f64])
            .collect();
        for metric in [
            Metric::Euclidean,
            Metric::Manhattan,
            Metric::fit_gower(&rows, vec![false, false, false]),
        ] {
            for i in 0..rows.len() {
                assert_eq!(metric.dist(&rows[i], &rows[i]), 0.0);
                for j in 0..rows.len() {
                    let dij = metric.dist(&rows[i], &rows[j]);
                    let dji = metric.dist(&rows[j], &rows[i]);
                    assert!((dij - dji).abs() < 1e-12);
                    assert!(dij >= 0.0);
                }
            }
        }
    }

    /// Deterministic pseudo-random mixed data: 2 numeric dims (with some
    /// NaN holes), one 3-dummy coded block, one trailing numeric dim.
    fn coded_fixture(n: usize) -> Points {
        let dims = 6;
        let mut data = Vec::with_capacity(n * dims);
        let mut codes = Vec::with_capacity(n);
        for i in 0..n {
            let h = i.wrapping_mul(2654435761) % 97;
            let x0 = if h % 13 == 0 {
                f64::NAN
            } else {
                h as f64 / 97.0
            };
            let x1 = ((h * 7) % 31) as f64;
            let level = if h % 11 == 0 {
                CODE_NULL
            } else {
                (h % 3) as u32
            };
            let x5 = if h % 17 == 0 {
                f64::NAN
            } else {
                (h as f64).sin()
            };
            data.push(x0);
            data.push(x1);
            for slot in 0..3u32 {
                data.push(if level == CODE_NULL {
                    f64::NAN
                } else {
                    f64::from(level == slot)
                });
            }
            data.push(x5);
            codes.push(level);
        }
        let metric =
            Metric::fit_gower_flat(&data, n, dims, vec![false, false, true, true, true, false]);
        Points::from_flat_coded(
            data,
            n,
            dims,
            metric,
            vec![CatBlock { start: 2, len: 3 }],
            codes,
        )
    }

    #[test]
    fn coded_dist_matches_dummy_dist() {
        // The coded segment walk must agree with evaluating the raw dummy
        // matrix through Metric::dist (same dims, flags, ranges).
        let p = coded_fixture(60);
        for i in 0..p.len() {
            for j in 0..p.len() {
                let coded = p.dist(i, j);
                let dummy = p.metric().dist(p.row(i), p.row(j));
                assert!(
                    (coded - dummy).abs() < 1e-12,
                    "coded {coded} vs dummy {dummy} at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn block_kernel_is_bitwise_identical_to_scalar() {
        let p = coded_fixture(80);
        let k = p.block_kernel();
        for i in 0..p.len() {
            for j in 0..p.len() {
                assert_eq!(
                    k.dist(i, j).to_bits(),
                    p.dist(i, j).to_bits(),
                    "kernel differs at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn fill_strip_and_dists_to_match_dist() {
        let p = coded_fixture(50);
        let k = p.block_kernel();
        let mut strip = vec![0.0; 30];
        k.fill_strip(7, 15, &mut strip);
        for (s, slot) in strip.iter().enumerate() {
            assert_eq!(slot.to_bits(), p.dist(7, 15 + s).to_bits());
        }
        let targets = [3usize, 28, 44, 9];
        let mut out = vec![0.0; targets.len()];
        for i in 0..p.len() {
            k.dists_to(i, &targets, &mut out);
            for (s, &m) in targets.iter().enumerate() {
                assert_eq!(out[s].to_bits(), p.dist(i, m).to_bits());
            }
        }
    }

    #[test]
    fn four_lane_paths_match_scalar_bitwise() {
        // Fixture with a flagged-but-uncoded (Dummy-segment) dim plus NaN
        // holes: strips and medoid tiles through the four-lane kernel must
        // equal the scalar path bit-for-bit, fast and holed rows alike.
        let n = 53; // not a multiple of 4 — exercises the straggler tail
        let dims = 4;
        let mut data = Vec::with_capacity(n * dims);
        for i in 0..n {
            let h = i.wrapping_mul(2654435761) % 89;
            data.push(if h % 23 == 0 {
                f64::NAN
            } else {
                (h as f64).sin()
            });
            data.push(((h * 5) % 7) as f64); // categorical levels kept as floats
            data.push(h as f64 / 89.0);
            data.push(if h % 29 == 0 {
                f64::NAN
            } else {
                (h as f64).cos()
            });
        }
        let metric = Metric::fit_gower_flat(&data, n, dims, vec![false, true, false, false]);
        let p = Points::from_flat(data, n, dims, metric);
        let k = p.block_kernel();
        let mut strip = vec![0.0; n - 1];
        k.fill_strip(3, 1, &mut strip);
        for (s, slot) in strip.iter().enumerate() {
            assert_eq!(slot.to_bits(), p.dist(3, 1 + s).to_bits());
        }
        let medoids = [2usize, 17, 40];
        let mut out = [0.0f64; 4];
        for j in (0..n - 4).step_by(3) {
            for &m in &medoids {
                k.dists_tile4([j, j + 1, j + 2, j + 3], m, &mut out);
                for (l, d) in out.iter().enumerate() {
                    assert_eq!(d.to_bits(), p.dist(j + l, m).to_bits());
                }
            }
        }
    }

    #[test]
    fn dist_block_matches_scalar_bitwise() {
        // Numeric-only fixture with NaN holes, all three metrics.
        let n = 40;
        let dims = 5;
        let mut data = Vec::with_capacity(n * dims);
        for i in 0..n * dims {
            let h = i.wrapping_mul(40503) % 101;
            data.push(if h % 19 == 0 {
                f64::NAN
            } else {
                (h as f64).cos()
            });
        }
        let flags = vec![false; dims];
        for metric in [
            Metric::Euclidean,
            Metric::Manhattan,
            Metric::fit_gower_flat(&data, n, dims, flags),
        ] {
            let mut tile = vec![0.0; 12 * 17];
            metric.dist_block(&data, dims, 5..17, 20..37, &mut tile);
            for (ti, i) in (5..17).enumerate() {
                for (tj, j) in (20..37).enumerate() {
                    let direct = metric.dist(
                        &data[i * dims..(i + 1) * dims],
                        &data[j * dims..(j + 1) * dims],
                    );
                    assert_eq!(
                        tile[ti * 17 + tj].to_bits(),
                        direct.to_bits(),
                        "tile cell ({i},{j}) differs"
                    );
                }
            }
        }
    }

    #[test]
    fn null_codes_make_block_unobserved() {
        let p = coded_fixture(60);
        // Find a pair where one side's block is missing: the distance must
        // average over the remaining observed dims only — never panic,
        // never compare against the sentinel as a real level.
        let i = (0..p.len())
            .find(|&i| p.codes(i)[0] == CODE_NULL)
            .expect("fixture contains null codes");
        let j = (0..p.len())
            .find(|&j| p.codes(j)[0] != CODE_NULL)
            .expect("fixture contains observed codes");
        let d = p.dist(i, j);
        assert!(d.is_finite());
        assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_blocks_panic() {
        let _ = Points::from_flat_coded(
            vec![0.0; 8],
            2,
            4,
            Metric::Manhattan,
            vec![CatBlock { start: 0, len: 2 }, CatBlock { start: 1, len: 2 }],
            vec![0, 0, 0, 0],
        );
    }

    #[test]
    #[should_panic(expected = "one code per row")]
    fn code_count_mismatch_panics() {
        let _ = Points::from_flat_coded(
            vec![0.0; 8],
            2,
            4,
            Metric::Manhattan,
            vec![CatBlock { start: 0, len: 2 }],
            vec![0],
        );
    }
}
