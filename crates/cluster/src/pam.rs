//! PAM — Partitioning Around Medoids (Kaufman & Rousseeuw 1990).
//!
//! The paper's clustering algorithm for both themes and maps: "it is
//! accurate, well established and fast enough". PAM is a k-medoid method: it
//! picks k data points as cluster centers (medoids) minimizing the total
//! distance from every point to its medoid. Implemented as the classic
//! BUILD (greedy seeding) + SWAP (steepest-descent exchange) with cached
//! nearest / second-nearest medoid distances. The SWAP search evaluates
//! all k replacement slots in a single pass over the matrix row of each
//! candidate (the FastPAM1 decomposition), so one descent step costs
//! O(n² + nk²) distance lookups instead of the textbook O(kn²).

use crate::matrix::DistanceMatrix;

/// Configuration for [`pam`].
#[derive(Debug, Clone)]
pub struct PamConfig {
    /// Maximum SWAP iterations (each performs the single best swap).
    pub max_iter: usize,
}

impl Default for PamConfig {
    fn default() -> Self {
        PamConfig { max_iter: 200 }
    }
}

/// Result of a PAM (or CLARA) run.
#[derive(Debug, Clone)]
pub struct PamResult {
    /// Indices of the medoid points (into the clustered data), one per
    /// cluster, in cluster-label order.
    pub medoids: Vec<usize>,
    /// Cluster label per point (`labels[i] < medoids.len()`).
    pub labels: Vec<usize>,
    /// Sum over points of the distance to their medoid.
    pub total_deviation: f64,
    /// Number of swaps performed.
    pub swaps: usize,
    /// False when `max_iter` stopped the descent early.
    pub converged: bool,
}

/// Per-point nearest/second-nearest medoid cache.
struct Cache {
    /// Index into `medoids` of the nearest medoid.
    nearest: Vec<usize>,
    /// Distance to the nearest medoid.
    d_nearest: Vec<f64>,
    /// Distance to the second-nearest medoid (`INFINITY` when k = 1).
    d_second: Vec<f64>,
}

fn rebuild_cache(matrix: &DistanceMatrix, medoids: &[usize]) -> Cache {
    let n = matrix.len();
    let mut nearest = vec![0usize; n];
    let mut d_nearest = vec![f64::INFINITY; n];
    let mut d_second = vec![f64::INFINITY; n];
    for j in 0..n {
        for (mi, &m) in medoids.iter().enumerate() {
            let d = matrix.get(j, m);
            if d < d_nearest[j] {
                d_second[j] = d_nearest[j];
                d_nearest[j] = d;
                nearest[j] = mi;
            } else if d < d_second[j] {
                d_second[j] = d;
            }
        }
    }
    Cache {
        nearest,
        d_nearest,
        d_second,
    }
}

/// Greedy BUILD phase: start from the most central point, then repeatedly
/// add the point with the largest aggregate distance reduction.
fn build(matrix: &DistanceMatrix, k: usize) -> Vec<usize> {
    let n = matrix.len();
    let mut medoids = Vec::with_capacity(k);

    // First medoid: minimizes total distance to all points.
    let mut best = 0usize;
    let mut best_total = f64::INFINITY;
    for c in 0..n {
        let total: f64 = (0..n).map(|j| matrix.get(c, j)).sum();
        if total < best_total {
            best_total = total;
            best = c;
        }
    }
    medoids.push(best);

    let mut d_nearest: Vec<f64> = (0..n).map(|j| matrix.get(best, j)).collect();
    while medoids.len() < k {
        let mut best_c = usize::MAX;
        let mut best_gain = f64::NEG_INFINITY;
        for c in 0..n {
            if medoids.contains(&c) {
                continue;
            }
            let mut gain = 0.0;
            for (j, &dn) in d_nearest.iter().enumerate() {
                let d = matrix.get(c, j);
                if d < dn {
                    gain += dn - d;
                }
            }
            if gain > best_gain {
                best_gain = gain;
                best_c = c;
            }
        }
        medoids.push(best_c);
        for (j, dn) in d_nearest.iter_mut().enumerate() {
            let d = matrix.get(best_c, j);
            if d < *dn {
                *dn = d;
            }
        }
    }
    medoids
}

/// Runs PAM over a distance matrix.
///
/// `k` is clamped to `[1, n]`; when `k == n` every point becomes a medoid.
/// Deterministic: BUILD and SWAP break ties toward lower indices.
///
/// # Panics
/// Panics if the matrix is empty or `k == 0`.
pub fn pam(matrix: &DistanceMatrix, k: usize, config: &PamConfig) -> PamResult {
    let n = matrix.len();
    assert!(n > 0, "cannot cluster an empty matrix");
    assert!(k > 0, "k must be positive");
    let k = k.min(n);

    let mut medoids = build(matrix, k);
    let mut cache = rebuild_cache(matrix, &medoids);
    let mut swaps = 0usize;
    let mut converged = false;

    let mut medoid_mask = vec![false; n];
    for &m in &medoids {
        medoid_mask[m] = true;
    }

    // Scratch for the per-candidate slot corrections, reused across rounds.
    let mut corr = vec![0.0f64; medoids.len()];

    for _ in 0..config.max_iter {
        // Find the best (medoid, candidate) swap by total-deviation delta.
        // FastPAM1: for a candidate h, the delta of swapping it into slot s
        // splits into a slot-independent part (points that defect to h no
        // matter which medoid leaves) plus a per-slot correction for the
        // points currently assigned to s — so one pass over j prices all k
        // slots at once.
        let mut best_delta = -1e-12;
        let mut best_swap: Option<(usize, usize)> = None; // (medoid slot, candidate)
        for h in 0..n {
            if medoid_mask[h] {
                continue;
            }
            let mut shared = 0.0f64;
            corr.fill(0.0);
            for j in 0..n {
                if j == h || medoid_mask[j] {
                    continue;
                }
                let d_jh = matrix.get(j, h);
                // Slot-independent: j defects to h when h is closer than
                // j's current medoid (0 otherwise).
                let defect = (d_jh - cache.d_nearest[j]).min(0.0);
                shared += defect;
                // If j's own medoid is the one leaving, j moves to h or to
                // its second choice instead; record the difference.
                let own = d_jh.min(cache.d_second[j]) - cache.d_nearest[j];
                corr[cache.nearest[j]] += own - defect;
            }
            for (slot, &old_m) in medoids.iter().enumerate() {
                // h itself: was a regular point at d_nearest[h], becomes a
                // medoid at distance 0. The outgoing medoid becomes a
                // regular point assigned to its nearest remaining medoid
                // (possibly h).
                let mut d_old = matrix.get(old_m, h);
                for (s2, &m2) in medoids.iter().enumerate() {
                    if s2 != slot {
                        d_old = d_old.min(matrix.get(old_m, m2));
                    }
                }
                let delta = shared + corr[slot] - cache.d_nearest[h] + d_old;
                if delta < best_delta {
                    best_delta = delta;
                    best_swap = Some((slot, h));
                }
            }
        }
        match best_swap {
            Some((slot, h)) => {
                medoid_mask[medoids[slot]] = false;
                medoid_mask[h] = true;
                medoids[slot] = h;
                cache = rebuild_cache(matrix, &medoids);
                swaps += 1;
            }
            None => {
                converged = true;
                break;
            }
        }
    }

    let labels = cache.nearest;
    let total_deviation = cache.d_nearest.iter().sum();
    PamResult {
        medoids,
        labels,
        total_deviation,
        swaps,
        converged,
    }
}

/// Assigns every point to its nearest medoid, returning labels and the
/// total deviation. Ties break toward the lower medoid slot.
pub fn assign_to_medoids(matrix: &DistanceMatrix, medoids: &[usize]) -> (Vec<usize>, f64) {
    let cache = rebuild_cache(matrix, medoids);
    let total = cache.d_nearest.iter().sum();
    (cache.nearest, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{Metric, Points};

    /// Three well-separated 1-D blobs.
    fn blobs() -> Points {
        let mut rows = Vec::new();
        for c in 0..3 {
            for i in 0..10 {
                rows.push(vec![c as f64 * 100.0 + i as f64]);
            }
        }
        Points::new(rows, Metric::Euclidean)
    }

    #[test]
    fn recovers_separated_blobs() {
        let p = blobs();
        let m = DistanceMatrix::from_points(&p);
        let r = pam(&m, 3, &PamConfig::default());
        assert!(r.converged);
        assert_eq!(r.medoids.len(), 3);
        // All points of one blob share a label, blobs get distinct labels.
        for blob in 0..3 {
            let first = r.labels[blob * 10];
            for i in 0..10 {
                assert_eq!(r.labels[blob * 10 + i], first, "blob {blob} split");
            }
        }
        let distinct: std::collections::HashSet<usize> = r.labels.iter().copied().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn medoids_are_members_and_labeled_to_themselves() {
        let p = blobs();
        let m = DistanceMatrix::from_points(&p);
        let r = pam(&m, 3, &PamConfig::default());
        for (slot, &med) in r.medoids.iter().enumerate() {
            assert!(med < p.len());
            assert_eq!(r.labels[med], slot, "medoid belongs to its own cluster");
        }
    }

    #[test]
    fn total_deviation_matches_assignment() {
        let p = blobs();
        let m = DistanceMatrix::from_points(&p);
        let r = pam(&m, 3, &PamConfig::default());
        let (labels, total) = assign_to_medoids(&m, &r.medoids);
        assert_eq!(labels, r.labels);
        assert!((total - r.total_deviation).abs() < 1e-9);
        // Every point is genuinely at its nearest medoid.
        for j in 0..p.len() {
            let assigned = m.get(j, r.medoids[r.labels[j]]);
            for &med in &r.medoids {
                assert!(assigned <= m.get(j, med) + 1e-12);
            }
        }
    }

    #[test]
    fn k_one_picks_most_central() {
        let p = Points::new(
            vec![vec![0.0], vec![1.0], vec![2.0], vec![10.0]],
            Metric::Euclidean,
        );
        let m = DistanceMatrix::from_points(&p);
        let r = pam(&m, 1, &PamConfig::default());
        // Point 1 (value 1.0) minimizes total deviation (1+0+1+9=11)
        // vs point 2 (2+1+0+8=11)... both tie at 11; BUILD breaks toward
        // the lower index.
        assert!((r.total_deviation - 11.0).abs() < 1e-12);
        assert!(r.medoids[0] == 1 || r.medoids[0] == 2);
        assert!(r.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn k_equals_n_zero_deviation() {
        let p = blobs();
        let m = DistanceMatrix::from_points(&p);
        let r = pam(&m, p.len(), &PamConfig::default());
        assert_eq!(r.medoids.len(), p.len());
        assert!(r.total_deviation.abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_n_clamped() {
        let p = Points::new(vec![vec![0.0], vec![5.0]], Metric::Euclidean);
        let m = DistanceMatrix::from_points(&p);
        let r = pam(&m, 10, &PamConfig::default());
        assert_eq!(r.medoids.len(), 2);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let m = DistanceMatrix::from_fn(2, |_, _| 1.0);
        let _ = pam(&m, 0, &PamConfig::default());
    }

    #[test]
    fn swap_improves_over_build() {
        // Construct a case where BUILD's greedy seeds are suboptimal:
        // two tight pairs and one far singleton, k=2.
        let p = Points::new(
            vec![vec![0.0], vec![0.1], vec![10.0], vec![10.1], vec![5.0]],
            Metric::Euclidean,
        );
        let m = DistanceMatrix::from_points(&p);
        let r = pam(&m, 2, &PamConfig::default());
        assert!(r.converged);
        // Optimal: medoids in each pair; 5.0 joins either side.
        assert!(
            r.total_deviation <= 5.0 + 0.2 + 1e-9,
            "deviation {}",
            r.total_deviation
        );
    }

    #[test]
    fn deterministic() {
        let p = blobs();
        let m = DistanceMatrix::from_points(&p);
        let a = pam(&m, 3, &PamConfig::default());
        let b = pam(&m, 3, &PamConfig::default());
        assert_eq!(a.medoids, b.medoids);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn max_iter_caps_swaps() {
        let p = blobs();
        let m = DistanceMatrix::from_points(&p);
        let r = pam(&m, 3, &PamConfig { max_iter: 0 });
        // No swaps allowed: BUILD result returned, not converged.
        assert_eq!(r.swaps, 0);
        assert!(!r.converged);
        assert_eq!(r.labels.len(), p.len());
    }

    #[test]
    fn deviation_never_increases_with_k() {
        let p = blobs();
        let m = DistanceMatrix::from_points(&p);
        let mut prev = f64::INFINITY;
        for k in 1..=6 {
            let r = pam(&m, k, &PamConfig::default());
            assert!(
                r.total_deviation <= prev + 1e-9,
                "deviation increased at k={k}"
            );
            prev = r.total_deviation;
        }
    }
}
