//! External cluster validation: comparing a clustering to ground truth (or
//! to another clustering). Used throughout the experiment harness to turn
//! the paper's qualitative claims into numbers.

/// A contingency (confusion) matrix between two labelings.
fn contingency(a: &[usize], b: &[usize]) -> (Vec<Vec<u64>>, Vec<u64>, Vec<u64>) {
    assert_eq!(a.len(), b.len(), "labelings must cover the same points");
    let ka = a.iter().copied().max().map_or(0, |m| m + 1);
    let kb = b.iter().copied().max().map_or(0, |m| m + 1);
    let mut table = vec![vec![0u64; kb]; ka];
    for (&x, &y) in a.iter().zip(b) {
        table[x][y] += 1;
    }
    let row_sums: Vec<u64> = table.iter().map(|r| r.iter().sum()).collect();
    let col_sums: Vec<u64> = (0..kb).map(|j| table.iter().map(|r| r[j]).sum()).collect();
    (table, row_sums, col_sums)
}

fn choose2(n: u64) -> f64 {
    (n as f64) * (n as f64 - 1.0) / 2.0
}

/// Adjusted Rand Index (Hubert & Arabie): 1 for identical partitions
/// (up to label permutation), ~0 for independent ones, can go negative.
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> f64 {
    if a.is_empty() {
        return 1.0;
    }
    let (table, rows, cols) = contingency(a, b);
    let sum_cells: f64 = table
        .iter()
        .flat_map(|r| r.iter())
        .map(|&c| choose2(c))
        .sum();
    let sum_rows: f64 = rows.iter().map(|&r| choose2(r)).sum();
    let sum_cols: f64 = cols.iter().map(|&c| choose2(c)).sum();
    let total = choose2(a.len() as u64);
    if total == 0.0 {
        return 1.0;
    }
    let expected = sum_rows * sum_cols / total;
    let max_index = (sum_rows + sum_cols) / 2.0;
    if (max_index - expected).abs() < 1e-12 {
        // Degenerate: both partitions trivial (all-one-cluster or all
        // singletons). Same partition structure (up to label permutation)
        // ⇒ 1, else 0.
        return if same_partition(&table) { 1.0 } else { 0.0 };
    }
    (sum_cells - expected) / (max_index - expected)
}

/// True when the contingency table is a (partial) permutation matrix:
/// every non-empty row and column has exactly one non-zero cell, i.e. the
/// two labelings induce the same partition.
fn same_partition(table: &[Vec<u64>]) -> bool {
    let kb = table.first().map_or(0, Vec::len);
    for row in table {
        if row.iter().filter(|&&c| c > 0).count() > 1 {
            return false;
        }
    }
    for j in 0..kb {
        if table.iter().filter(|row| row[j] > 0).count() > 1 {
            return false;
        }
    }
    true
}

fn entropy_of(counts: &[u64], total: f64) -> f64 {
    let mut h = 0.0;
    for &c in counts {
        if c > 0 {
            let p = c as f64 / total;
            h -= p * p.ln();
        }
    }
    h
}

/// Normalized mutual information between two labelings
/// (sqrt normalization), in `[0, 1]`.
pub fn label_nmi(a: &[usize], b: &[usize]) -> f64 {
    if a.is_empty() {
        return 1.0;
    }
    let (table, rows, cols) = contingency(a, b);
    let n = a.len() as f64;
    let ha = entropy_of(&rows, n);
    let hb = entropy_of(&cols, n);
    if ha < 1e-12 && hb < 1e-12 {
        return 1.0; // both constant: identical structure
    }
    let mut mi = 0.0;
    for (i, row) in table.iter().enumerate() {
        for (j, &c) in row.iter().enumerate() {
            if c > 0 {
                let pij = c as f64 / n;
                let pi = rows[i] as f64 / n;
                let pj = cols[j] as f64 / n;
                mi += pij * (pij / (pi * pj)).ln();
            }
        }
    }
    let denom = (ha * hb).sqrt();
    if denom < 1e-12 {
        0.0
    } else {
        (mi / denom).clamp(0.0, 1.0)
    }
}

/// Purity: fraction of points whose cluster's majority truth label matches
/// their own. In `(0, 1]`; 1 means every cluster is label-pure.
pub fn purity(clusters: &[usize], truth: &[usize]) -> f64 {
    if clusters.is_empty() {
        return 1.0;
    }
    let (table, _, _) = contingency(clusters, truth);
    let majority_sum: u64 = table
        .iter()
        .map(|row| row.iter().copied().max().unwrap_or(0))
        .sum();
    majority_sum as f64 / clusters.len() as f64
}

/// Plain accuracy between two label vectors (no permutation matching):
/// useful when labels share an encoding, e.g. decision-tree predictions
/// against the clustering that trained them.
pub fn accuracy(predicted: &[usize], actual: &[usize]) -> f64 {
    assert_eq!(predicted.len(), actual.len());
    if predicted.is_empty() {
        return 1.0;
    }
    let hits = predicted.iter().zip(actual).filter(|(p, a)| p == a).count();
    hits as f64 / predicted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ari_identical_is_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
        // Label permutation does not matter.
        let b = vec![2, 2, 0, 0, 1, 1];
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_independent_near_zero() {
        // Interleaved labels share no structure with blocked labels.
        let a: Vec<usize> = (0..400).map(|i| i / 100).collect();
        let b: Vec<usize> = (0..400).map(|i| i % 4).collect();
        assert!(adjusted_rand_index(&a, &b).abs() < 0.05);
    }

    #[test]
    fn ari_partial_overlap_intermediate() {
        let a = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let b = vec![0, 0, 0, 1, 1, 1, 1, 1]; // one point moved
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari > 0.4 && ari < 1.0, "ari {ari}");
    }

    #[test]
    fn ari_degenerate_partitions() {
        let all_same = vec![0usize; 10];
        assert_eq!(adjusted_rand_index(&all_same, &all_same), 1.0);
        let singletons: Vec<usize> = (0..10).collect();
        assert_eq!(adjusted_rand_index(&singletons, &singletons), 1.0);
        assert_eq!(adjusted_rand_index(&all_same, &singletons), 0.0);
        assert_eq!(adjusted_rand_index(&[], &[]), 1.0);
        // Degenerate AND relabeled: still the same partition.
        assert_eq!(adjusted_rand_index(&[0, 0], &[1, 1]), 1.0);
        let relabeled: Vec<usize> = (0..10).map(|i| 9 - i).collect();
        assert_eq!(adjusted_rand_index(&singletons, &relabeled), 1.0);
    }

    #[test]
    fn nmi_identical_is_one() {
        let a = vec![0, 1, 2, 0, 1, 2];
        assert!((label_nmi(&a, &a) - 1.0).abs() < 1e-12);
        let permuted = vec![1, 2, 0, 1, 2, 0];
        assert!((label_nmi(&a, &permuted) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_independent_near_zero() {
        let a: Vec<usize> = (0..1000).map(|i| i / 500).collect();
        let b: Vec<usize> = (0..1000).map(|i| i % 2).collect();
        assert!(label_nmi(&a, &b) < 0.01);
    }

    #[test]
    fn nmi_in_unit_interval() {
        let a = vec![0, 0, 1, 1, 2, 2, 0, 1];
        let b = vec![0, 1, 1, 1, 2, 0, 0, 2];
        let v = label_nmi(&a, &b);
        assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn purity_perfect_and_mixed() {
        let truth = vec![0, 0, 1, 1];
        assert_eq!(purity(&[0, 0, 1, 1], &truth), 1.0);
        // One cluster holding everything: majority is 2/4.
        assert_eq!(purity(&[0, 0, 0, 0], &truth), 0.5);
        // Purity is 1 for singleton clusters regardless of truth.
        assert_eq!(purity(&[0, 1, 2, 3], &truth), 1.0);
    }

    #[test]
    fn accuracy_counts_exact_matches() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 2]), 1.0);
        assert_eq!(accuracy(&[0, 1, 2], &[0, 9, 2]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "same points")]
    fn mismatched_lengths_panic() {
        let _ = adjusted_rand_index(&[0], &[0, 1]);
    }
}
