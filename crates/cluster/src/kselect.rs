//! Choosing the number of clusters with the silhouette coefficient.
//!
//! "We generate several partitionings with different numbers of clusters,
//! and keep the one with the best score." This module sweeps a k range,
//! clusters at each k (PAM on the exact matrix, or CLARA beyond a size
//! threshold), scores with the (optionally Monte-Carlo) silhouette, and
//! returns the winning partition plus the whole score profile.

use crate::clara::{clara, ClaraConfig};
use crate::distance::Points;
use crate::matrix::DistanceMatrix;
use crate::pam::{pam, PamConfig, PamResult};
use crate::silhouette::{mc_silhouette, silhouette_score, McSilhouetteConfig};

/// Configuration for [`select_k`].
#[derive(Debug, Clone)]
pub struct KSelectConfig {
    /// Smallest k to try (≥ 2; k = 1 has no silhouette).
    pub k_min: usize,
    /// Largest k to try (inclusive).
    pub k_max: usize,
    /// Beyond this many points, cluster with CLARA instead of exact PAM.
    pub clara_threshold: usize,
    /// PAM settings.
    pub pam: PamConfig,
    /// CLARA settings (used past the threshold).
    pub clara: ClaraConfig,
    /// Monte-Carlo silhouette settings; `None` scores exactly.
    pub mc: Option<McSilhouetteConfig>,
}

impl Default for KSelectConfig {
    fn default() -> Self {
        KSelectConfig {
            k_min: 2,
            k_max: 8,
            clara_threshold: 1000,
            pam: PamConfig::default(),
            clara: ClaraConfig::default(),
            mc: Some(McSilhouetteConfig::default()),
        }
    }
}

/// Outcome of a k sweep.
#[derive(Debug, Clone)]
pub struct KSelection {
    /// Winning number of clusters.
    pub k: usize,
    /// Partition at the winning k.
    pub result: PamResult,
    /// Average silhouette of the winning partition.
    pub silhouette: f64,
    /// `(k, silhouette)` for every k tried, ascending k.
    pub profile: Vec<(usize, f64)>,
}

/// Sweeps `k_min..=k_max`, returning the silhouette-best partition.
///
/// Ties break toward smaller k (simpler maps are easier to read).
///
/// # Panics
/// Panics if the point set is empty or the k range is invalid.
pub fn select_k(points: &Points, config: &KSelectConfig) -> KSelection {
    let n = points.len();
    assert!(n > 0, "cannot select k on an empty point set");
    let k_min = config.k_min.max(2);
    let k_max = config.k_max.max(k_min).min(n.saturating_sub(1).max(2));
    assert!(k_min <= k_max, "invalid k range [{k_min}, {k_max}]");

    // The exact matrix is shared across the sweep when PAM is in play.
    let matrix = if n <= config.clara_threshold {
        Some(DistanceMatrix::from_points(points))
    } else {
        None
    };

    let mut best: Option<(usize, PamResult, f64)> = None;
    let mut profile = Vec::with_capacity(k_max - k_min + 1);

    for k in k_min..=k_max {
        let result = match &matrix {
            Some(m) => pam(m, k, &config.pam),
            None => clara(points, k, &config.clara),
        };
        let score = match (&config.mc, &matrix) {
            // Exact silhouette when we already paid for the matrix and the
            // caller did not ask for Monte-Carlo.
            (None, Some(m)) => silhouette_score(m, &result.labels),
            (None, None) => mc_silhouette(points, &result.labels, &McSilhouetteConfig::default()),
            (Some(mc), _) => mc_silhouette(points, &result.labels, mc),
        };
        profile.push((k, score));
        let better = match &best {
            None => true,
            Some((_, _, best_score)) => score > *best_score + 1e-12,
        };
        if better {
            best = Some((k, result, score));
        }
    }

    let (k, result, silhouette) = best.expect("at least one k tried");
    KSelection {
        k,
        result,
        silhouette,
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Metric;

    fn blobs(k: usize, per: usize, sep: f64) -> Points {
        let mut rows = Vec::new();
        for c in 0..k {
            for i in 0..per {
                let jitter = ((i * 2654435761usize) % 1000) as f64 / 1000.0;
                rows.push(vec![c as f64 * sep + jitter, (i % 7) as f64 * 0.1]);
            }
        }
        Points::new(rows, Metric::Euclidean)
    }

    #[test]
    fn finds_planted_k3() {
        let p = blobs(3, 30, 50.0);
        let sel = select_k(
            &p,
            &KSelectConfig {
                mc: None,
                ..KSelectConfig::default()
            },
        );
        assert_eq!(sel.k, 3, "profile: {:?}", sel.profile);
        assert!(sel.silhouette > 0.9);
        assert_eq!(sel.profile.len(), 7); // k = 2..=8
    }

    #[test]
    fn finds_planted_k5() {
        let p = blobs(5, 25, 40.0);
        let sel = select_k(
            &p,
            &KSelectConfig {
                mc: None,
                ..KSelectConfig::default()
            },
        );
        assert_eq!(sel.k, 5, "profile: {:?}", sel.profile);
    }

    #[test]
    fn mc_scoring_also_finds_k() {
        let p = blobs(3, 60, 80.0);
        let sel = select_k(
            &p,
            &KSelectConfig {
                mc: Some(McSilhouetteConfig {
                    subsamples: 6,
                    subsample_size: 60,
                    seed: 1,
                }),
                ..KSelectConfig::default()
            },
        );
        assert_eq!(sel.k, 3, "profile: {:?}", sel.profile);
    }

    #[test]
    fn clara_path_used_beyond_threshold() {
        let p = blobs(3, 120, 60.0);
        let sel = select_k(
            &p,
            &KSelectConfig {
                clara_threshold: 100, // force CLARA
                k_max: 5,
                mc: Some(McSilhouetteConfig::default()),
                ..KSelectConfig::default()
            },
        );
        assert_eq!(sel.k, 3, "profile: {:?}", sel.profile);
    }

    #[test]
    fn k_range_clamped_to_n() {
        let p = blobs(2, 3, 100.0); // 6 points
        let sel = select_k(
            &p,
            &KSelectConfig {
                k_min: 2,
                k_max: 50,
                mc: None,
                ..KSelectConfig::default()
            },
        );
        assert!(sel.k <= 5);
        assert_eq!(sel.result.labels.len(), 6);
    }

    #[test]
    fn profile_covers_requested_range() {
        let p = blobs(3, 20, 30.0);
        let sel = select_k(
            &p,
            &KSelectConfig {
                k_min: 2,
                k_max: 4,
                mc: None,
                ..KSelectConfig::default()
            },
        );
        let ks: Vec<usize> = sel.profile.iter().map(|&(k, _)| k).collect();
        assert_eq!(ks, vec![2, 3, 4]);
    }

    #[test]
    fn ties_prefer_smaller_k() {
        // Two perfect blobs: k=2 scores ~1; k=3+ scores lower, but make sure
        // equal scores would keep k=2 (strict improvement required).
        let p = blobs(2, 20, 100.0);
        let sel = select_k(
            &p,
            &KSelectConfig {
                mc: None,
                k_max: 6,
                ..KSelectConfig::default()
            },
        );
        assert_eq!(sel.k, 2);
    }
}
