//! k-means baseline (k-means++ seeding + Lloyd iterations).
//!
//! Not used by Blaeu itself — the paper chose k-medoids — but required as
//! the comparison point for the ablation "why PAM instead of k-means?"
//! (medoids are actual rows, so maps can display them; means are synthetic
//! points, and k-means is notoriously sensitive to outliers).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::distance::Points;

/// Configuration for [`kmeans`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Convergence threshold on total center movement.
    pub tol: f64,
    /// RNG seed for k-means++ seeding.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            max_iter: 100,
            tol: 1e-6,
            seed: 23,
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster centers (row-major, `k × dims`).
    pub centers: Vec<Vec<f64>>,
    /// Cluster label per point.
    pub labels: Vec<usize>,
    /// Sum of squared Euclidean distances to assigned centers.
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// True when the `tol` threshold stopped the loop.
    pub converged: bool,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// k-means++ seeding: first center uniform, then proportional to squared
/// distance from the nearest chosen center.
fn seed_plus_plus(points: &Points, k: usize, rng: &mut ChaCha8Rng) -> Vec<Vec<f64>> {
    let n = points.len();
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    centers.push(points.row(rng.gen_range(0..n)).to_vec());
    let mut d2: Vec<f64> = (0..n)
        .map(|i| sq_dist(points.row(i), &centers[0]))
        .collect();
    while centers.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= f64::EPSILON {
            // All points coincide with existing centers: take any row.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centers.push(points.row(next).to_vec());
        for (i, slot) in d2.iter_mut().enumerate() {
            let d = sq_dist(points.row(i), centers.last().expect("pushed"));
            if d < *slot {
                *slot = d;
            }
        }
    }
    centers
}

/// Runs k-means over a point set (squared-Euclidean objective; the set's
/// metric is ignored — k-means is only defined for Euclidean geometry).
/// Missing (`NaN`) coordinates are not supported: impute first.
///
/// # Panics
/// Panics if `points` is empty, `k == 0`, or data contains NaN.
pub fn kmeans(points: &Points, k: usize, config: &KMeansConfig) -> KMeansResult {
    let n = points.len();
    assert!(n > 0, "cannot cluster an empty point set");
    assert!(k > 0, "k must be positive");
    let k = k.min(n);
    let dims = points.dims();
    for i in 0..n {
        assert!(
            points.row(i).iter().all(|v| v.is_finite()),
            "k-means requires dense data; impute missing values first"
        );
    }

    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut centers = seed_plus_plus(points, k, &mut rng);
    let mut labels = vec![0usize; n];
    let mut converged = false;
    let mut iterations = 0usize;

    for it in 0..config.max_iter {
        iterations = it + 1;
        // Assignment step.
        for (i, label) in labels.iter_mut().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, center) in centers.iter().enumerate() {
                let d = sq_dist(points.row(i), center);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            *label = best;
        }
        // Update step.
        let mut sums = vec![vec![0.0f64; dims]; k];
        let mut counts = vec![0usize; k];
        for i in 0..n {
            counts[labels[i]] += 1;
            for (d, &v) in points.row(i).iter().enumerate() {
                sums[labels[i]][d] += v;
            }
        }
        let mut movement = 0.0f64;
        for c in 0..k {
            if counts[c] == 0 {
                // Empty cluster: re-seed at the point farthest from its center.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        sq_dist(points.row(a), &centers[labels[a]])
                            .total_cmp(&sq_dist(points.row(b), &centers[labels[b]]))
                    })
                    .expect("nonempty");
                let new_center = points.row(far).to_vec();
                movement += sq_dist(&centers[c], &new_center).sqrt();
                centers[c] = new_center;
                continue;
            }
            let new_center: Vec<f64> = sums[c].iter().map(|s| s / counts[c] as f64).collect();
            movement += sq_dist(&centers[c], &new_center).sqrt();
            centers[c] = new_center;
        }
        if movement < config.tol {
            converged = true;
            break;
        }
    }

    // Final assignment + inertia against the last centers.
    let mut inertia = 0.0f64;
    for (i, label) in labels.iter_mut().enumerate() {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (c, center) in centers.iter().enumerate() {
            let d = sq_dist(points.row(i), center);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        *label = best;
        inertia += best_d;
    }

    KMeansResult {
        centers,
        labels,
        inertia,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Metric;

    fn blobs() -> Points {
        let mut rows = Vec::new();
        for c in 0..3 {
            for i in 0..20 {
                let jitter = ((i * 2654435761usize) % 100) as f64 / 100.0;
                rows.push(vec![c as f64 * 40.0 + jitter, c as f64 * -25.0 + jitter]);
            }
        }
        Points::new(rows, Metric::Euclidean)
    }

    #[test]
    fn recovers_blobs() {
        let p = blobs();
        let r = kmeans(&p, 3, &KMeansConfig::default());
        assert!(r.converged);
        for c in 0..3 {
            let base = r.labels[c * 20];
            for i in 0..20 {
                assert_eq!(r.labels[c * 20 + i], base);
            }
        }
        let distinct: std::collections::HashSet<usize> = r.labels.iter().copied().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let p = blobs();
        let mut prev = f64::INFINITY;
        for k in 1..=5 {
            let r = kmeans(&p, k, &KMeansConfig::default());
            assert!(r.inertia <= prev + 1e-6, "inertia rose at k={k}");
            prev = r.inertia;
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = blobs();
        let a = kmeans(&p, 3, &KMeansConfig::default());
        let b = kmeans(&p, 3, &KMeansConfig::default());
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn centers_are_blob_means() {
        let p = blobs();
        let r = kmeans(&p, 3, &KMeansConfig::default());
        // Each center's first coordinate should be near 0, 40 or 80.
        let mut firsts: Vec<f64> = r.centers.iter().map(|c| c[0]).collect();
        firsts.sort_by(f64::total_cmp);
        assert!((firsts[0] - 0.5).abs() < 1.0);
        assert!((firsts[1] - 40.5).abs() < 1.0);
        assert!((firsts[2] - 80.5).abs() < 1.0);
    }

    #[test]
    fn k_clamped_to_n() {
        let p = Points::new(vec![vec![0.0], vec![1.0]], Metric::Euclidean);
        let r = kmeans(&p, 5, &KMeansConfig::default());
        assert_eq!(r.centers.len(), 2);
        assert!(r.inertia < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dense data")]
    fn nan_rejected() {
        let p = Points::new(vec![vec![f64::NAN]], Metric::Euclidean);
        let _ = kmeans(&p, 1, &KMeansConfig::default());
    }

    #[test]
    fn identical_points_handled() {
        let p = Points::new(vec![vec![2.0]; 10], Metric::Euclidean);
        let r = kmeans(&p, 3, &KMeansConfig::default());
        assert!(r.inertia < 1e-12);
        assert_eq!(r.labels.len(), 10);
    }
}
