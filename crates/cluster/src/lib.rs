//! # blaeu-cluster — cluster analysis engine
//!
//! The clustering substrate of Blaeu, replacing the R `cluster` package the
//! paper builds on: PAM (k-medoids, the paper's algorithm of choice for
//! both themes and maps), CLARA (its sampling-based variant for large
//! data), a k-means baseline, exact and Monte-Carlo silhouette scoring,
//! silhouette-driven selection of the number of clusters, and external
//! validation measures (ARI, NMI, purity) for the experiment harness.
//!
//! ```
//! use blaeu_cluster::{pam, DistanceMatrix, Metric, PamConfig, Points};
//!
//! let rows = vec![
//!     vec![0.0], vec![0.2], vec![0.1],   // blob A
//!     vec![9.0], vec![9.1], vec![8.9],   // blob B
//! ];
//! let points = Points::new(rows, Metric::Euclidean);
//! let matrix = DistanceMatrix::from_points(&points);
//! let result = pam(&matrix, 2, &PamConfig::default());
//! assert_eq!(result.labels[0], result.labels[1]);
//! assert_ne!(result.labels[0], result.labels[3]);
//! ```

#![warn(missing_docs)]

pub mod clara;
pub mod distance;
pub mod eval;
pub mod hierarchical;
pub mod kmeans;
pub mod kselect;
pub mod matrix;
pub mod pam;
pub mod silhouette;

pub use clara::{assign_points, assign_shard, clara, finalize_assign, AssignPartial, ClaraConfig};
pub use distance::{BlockKernel, CatBlock, Metric, Points, CODE_NULL};
pub use eval::{accuracy, adjusted_rand_index, label_nmi, purity};
pub use hierarchical::{agglomerative, Dendrogram, Linkage, Merge};
pub use kmeans::{kmeans, KMeansConfig, KMeansResult};
pub use kselect::{select_k, KSelectConfig, KSelection};
pub use matrix::DistanceMatrix;
pub use pam::{assign_to_medoids, pam, PamConfig, PamResult};
pub use silhouette::{
    mc_silhouette, medoid_silhouette, silhouette_samples, silhouette_score, McSilhouetteConfig,
};
