//! Condensed symmetric distance matrices.

use crate::distance::Points;

/// A symmetric `n × n` distance matrix stored in condensed form
/// (`n(n−1)/2` entries, zero diagonal implied).
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Builds a matrix by evaluating `f(i, j)` for every pair `i < j`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                data.push(f(i, j));
            }
        }
        DistanceMatrix { n, data }
    }

    /// Maximum rows per steal-queue band in
    /// [`DistanceMatrix::from_points`]. The condensed row of `i` holds
    /// `n − 1 − i` cells, so equal-height bands carry wildly unequal
    /// work; fine bands let the executor's claim queue rebalance that
    /// skew instead of pinning the long early rows to whichever worker
    /// drew them. For small `n` the height shrinks further (to the
    /// adaptive grain for the thread budget) so even a 300-point build
    /// has enough bands to balance — the band layout may depend on the
    /// budget because every cell's value depends only on its position,
    /// never on which band wrote it.
    const BAND_ROWS: usize = 64;

    fn band_rows(n: usize) -> usize {
        Self::BAND_ROWS.min(blaeu_exec::adaptive_grain(n, blaeu_exec::thread_budget()))
    }

    /// Column-tile width of the blocked fill: a tile of `J_TILE` point
    /// rows stays resident in cache while every row of a band sweeps it.
    const J_TILE: usize = 256;

    /// Builds a matrix from a point set, parallelizing across row bands
    /// when the set is large.
    ///
    /// The condensed buffer is split into fixed-height row bands
    /// ([`Self::BAND_ROWS`]) that executor workers claim adaptively; each
    /// worker fills its band in place through the point set's
    /// [`blocked kernel`](Points::block_kernel), sweeping column tiles of
    /// [`Self::J_TILE`] rows so the j-side data is reused from cache
    /// across the whole band. Every cell's value depends only on its
    /// position (the kernel is bitwise identical to [`Points::dist`]), so
    /// the matrix is identical for any thread count and any tile layout
    /// (and the build degrades to sequential inside an outer parallel
    /// region, e.g. CLARA replicates).
    pub fn from_points(points: &Points) -> Self {
        let n = points.len();
        let kernel = points.block_kernel();
        if n < 256 {
            return DistanceMatrix::from_fn(n, |i, j| kernel.dist(i, j));
        }
        let mut data = vec![0.0f64; n * (n - 1) / 2];
        // Split the condensed buffer where each row band starts.
        let row_start = |i: usize| i * n - i * (i + 1) / 2; // offset of (i, i+1)
        let bands = blaeu_exec::ShardSpec::with_shard_size(n, Self::band_rows(n));
        let boundaries: Vec<usize> = (1..bands.shard_count())
            .map(|s| row_start(bands.range(s).start))
            .collect();
        blaeu_exec::par_chunks_mut(&mut data, &boundaries, |band, slice| {
            let rows = bands.range(band);
            let base = row_start(rows.start);
            let mut tile = rows.start + 1;
            while tile < n {
                let tile_end = (tile + Self::J_TILE).min(n);
                for i in rows.clone() {
                    let j0 = tile.max(i + 1);
                    if j0 >= tile_end {
                        continue;
                    }
                    let off = row_start(i) - base + (j0 - i - 1);
                    kernel.fill_strip(i, j0, &mut slice[off..off + (tile_end - j0)]);
                }
                tile = tile_end;
            }
        });
        DistanceMatrix { n, data }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the matrix covers no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between points `i` and `j` (0 on the diagonal).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        use std::cmp::Ordering;
        match i.cmp(&j) {
            Ordering::Equal => 0.0,
            Ordering::Less => self.data[i * self.n - i * (i + 1) / 2 + j - i - 1],
            Ordering::Greater => self.data[j * self.n - j * (j + 1) / 2 + i - j - 1],
        }
    }

    /// Restricts the matrix to a subset of points (by index).
    pub fn subset(&self, indices: &[usize]) -> DistanceMatrix {
        DistanceMatrix::from_fn(indices.len(), |a, b| self.get(indices[a], indices[b]))
    }

    /// Mean pairwise distance (0 for fewer than two points).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f64>() / self.data.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Metric;

    #[test]
    fn from_fn_indexing() {
        let m = DistanceMatrix::from_fn(4, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.len(), 4);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 1.0, "symmetric access");
        assert_eq!(m.get(2, 3), 23.0);
        assert_eq!(m.get(3, 3), 0.0, "zero diagonal");
    }

    #[test]
    fn from_points_small_matches_direct() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let p = Points::new(rows, Metric::Euclidean);
        let m = DistanceMatrix::from_points(&p);
        for i in 0..10 {
            for j in 0..10 {
                assert!((m.get(i, j) - p.dist(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn from_points_parallel_matches_serial() {
        // Force the parallel path (n >= 256) and compare with from_fn.
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![(i as f64).sin(), (i as f64 * 0.7).cos()])
            .collect();
        let p = Points::new(rows, Metric::Manhattan);
        let par = DistanceMatrix::from_points(&p);
        let ser = DistanceMatrix::from_fn(300, |i, j| p.dist(i, j));
        assert_eq!(par, ser);
    }

    #[test]
    fn subset_restricts() {
        let m = DistanceMatrix::from_fn(5, |i, j| (i + j) as f64);
        let s = m.subset(&[0, 2, 4]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(0, 1), m.get(0, 2));
        assert_eq!(s.get(1, 2), m.get(2, 4));
    }

    #[test]
    fn mean_distance() {
        let m = DistanceMatrix::from_fn(3, |_, _| 2.0);
        assert_eq!(m.mean(), 2.0);
        let empty = DistanceMatrix::from_fn(1, |_, _| unreachable!());
        assert_eq!(empty.mean(), 0.0);
    }
}
