//! CART — Classification And Regression Trees (Breiman et al. 1984),
//! classification flavor.
//!
//! Blaeu trains a decision tree on the original tuples using cluster IDs as
//! class labels; the tree *is* the data map. The implementation consumes
//! zero-copy `blaeu-store` views directly — fitting on a sampled view and
//! routing a zoomed view never materializes a sub-table: numeric columns
//! split on thresholds, categorical columns on label subsets, and rows with
//! missing test values follow the node's majority direction.

use blaeu_store::{ColumnView, DataType, Result, StoreError, TableView};

use crate::impurity::Criterion;
use crate::node::{Node, SplitRule};

/// Configuration for [`DecisionTree::fit`].
#[derive(Debug, Clone)]
pub struct CartConfig {
    /// Split-quality criterion.
    pub criterion: Criterion,
    /// Maximum tree depth (root = depth 0). The paper's maps are shallow —
    /// depth 2–4 — because they must stay readable.
    pub max_depth: usize,
    /// Minimum rows needed to consider splitting a node.
    pub min_samples_split: usize,
    /// Minimum rows on each side of an admissible split.
    pub min_samples_leaf: usize,
    /// Minimum weighted impurity decrease for a split to be kept.
    pub min_impurity_decrease: f64,
    /// Categorical columns with more distinct values than this are skipped
    /// (their subsets would explode and overfit).
    pub max_categories: usize,
    /// Stop splitting once the majority class reaches this fraction —
    /// keeps maps readable by not carving slivers off near-pure regions.
    pub purity_stop: f64,
    /// Minimum leaf size as a fraction of the fitted table (combined with
    /// `min_samples_leaf` by taking the larger).
    pub min_leaf_fraction: f64,
}

impl Default for CartConfig {
    fn default() -> Self {
        CartConfig {
            criterion: Criterion::Gini,
            max_depth: 4,
            min_samples_split: 10,
            min_samples_leaf: 5,
            min_impurity_decrease: 1e-7,
            max_categories: 32,
            purity_stop: 0.95,
            min_leaf_fraction: 0.02,
        }
    }
}

/// A fitted classification tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    root: Node,
    nclasses: usize,
    features: Vec<String>,
}

struct BestSplit {
    rule: SplitRule,
    decrease: f64,
    default_left: bool,
}

fn class_counts(labels: &[usize], rows: &[u32], nclasses: usize) -> Vec<usize> {
    let mut counts = vec![0usize; nclasses];
    for &r in rows {
        counts[labels[r as usize]] += 1;
    }
    counts
}

/// Scans all thresholds of a numeric column in one sorted pass.
fn best_numeric_split(
    col: &ColumnView<'_>,
    name: &str,
    labels: &[usize],
    rows: &[u32],
    nclasses: usize,
    config: &CartConfig,
) -> Option<BestSplit> {
    let mut pairs: Vec<(f64, usize)> = Vec::with_capacity(rows.len());
    for &r in rows {
        if let Some(v) = col.numeric_at(r as usize) {
            pairs.push((v, labels[r as usize]));
        }
    }
    if pairs.len() < 2 * config.min_samples_leaf {
        return None;
    }
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut total = vec![0usize; nclasses];
    for &(_, l) in &pairs {
        total[l] += 1;
    }
    // The parent impurity is constant across thresholds; left/right counts
    // shift by one row per step. Maintaining them incrementally keeps the
    // scan allocation-free (this loop runs once per candidate threshold of
    // every node × feature, so a per-candidate Vec is real churn).
    let parent_impurity = config.criterion.impurity(&total);
    let mut left = vec![0usize; nclasses];
    let mut right = total.clone();
    let mut best: Option<(f64, f64, bool)> = None; // (decrease, threshold, default_left)
    let n = pairs.len();
    let nf = n as f64;
    for i in 0..n - 1 {
        left[pairs[i].1] += 1;
        right[pairs[i].1] -= 1;
        if pairs[i].0 == pairs[i + 1].0 {
            continue; // can't split between equal values
        }
        let nl = i + 1;
        let nr = n - nl;
        if nl < config.min_samples_leaf || nr < config.min_samples_leaf {
            continue;
        }
        let dec = parent_impurity
            - (nl as f64 / nf) * config.criterion.impurity(&left)
            - (nr as f64 / nf) * config.criterion.impurity(&right);
        let threshold = pairs[i].0.midpoint(pairs[i + 1].0);
        if best.is_none_or(|(bd, bt, _)| dec > bd + 1e-15 || (dec > bd - 1e-15 && threshold < bt)) {
            best = Some((dec, threshold, nl >= nr));
        }
    }
    best.map(|(decrease, threshold, default_left)| BestSplit {
        rule: SplitRule::Numeric {
            column: name.to_owned(),
            threshold,
        },
        decrease,
        default_left,
    })
}

/// Evaluates categorical splits: every single-category split plus prefix
/// subsets of categories ordered by majority-class proportion (the CART
/// ordering trick, exact for two classes).
fn best_categorical_split(
    col: &ColumnView<'_>,
    name: &str,
    labels: &[usize],
    rows: &[u32],
    nclasses: usize,
    config: &CartConfig,
) -> Option<BestSplit> {
    let dict = col.dictionary();
    if dict.len() > config.max_categories || dict.is_empty() {
        return None;
    }
    let ncat = dict.len();
    let mut cat_counts = vec![vec![0usize; nclasses]; ncat];
    let mut total = vec![0usize; nclasses];
    let mut n_valid = 0usize;
    for &r in rows {
        if let Some(code) = col.code_at(r as usize) {
            cat_counts[code as usize][labels[r as usize]] += 1;
            total[labels[r as usize]] += 1;
            n_valid += 1;
        }
    }
    if n_valid < 2 * config.min_samples_leaf {
        return None;
    }
    let majority = total
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| *c)
        .map(|(i, _)| i)
        .unwrap_or(0);

    // Candidate subsets: prefixes of categories sorted by majority-class
    // proportion (descending), which subsumes all single-category splits
    // for 2 classes and is a strong heuristic beyond.
    let mut order: Vec<usize> = (0..ncat)
        .filter(|&c| cat_counts[c].iter().sum::<usize>() > 0)
        .collect();
    order.sort_by(|&a, &b| {
        let pa = cat_counts[a][majority] as f64 / cat_counts[a].iter().sum::<usize>() as f64;
        let pb = cat_counts[b][majority] as f64 / cat_counts[b].iter().sum::<usize>() as f64;
        pb.total_cmp(&pa).then(a.cmp(&b))
    });

    let mut candidates: Vec<Vec<usize>> = Vec::new();
    for prefix_len in 1..order.len() {
        candidates.push(order[..prefix_len].to_vec());
    }
    // Also each singleton (covers one-vs-rest in the multiclass case).
    for &c in &order {
        candidates.push(vec![c]);
    }

    let mut best: Option<(f64, Vec<usize>, bool)> = None;
    for cats in candidates {
        let mut left = vec![0usize; nclasses];
        for &c in &cats {
            for k in 0..nclasses {
                left[k] += cat_counts[c][k];
            }
        }
        let nl: usize = left.iter().sum();
        let nr = n_valid - nl;
        if nl < config.min_samples_leaf || nr < config.min_samples_leaf {
            continue;
        }
        let right: Vec<usize> = total.iter().zip(&left).map(|(t, l)| t - l).collect();
        let dec = config.criterion.decrease(&total, &left, &right);
        let better = match &best {
            None => true,
            Some((bd, bc, _)) => dec > bd + 1e-15 || (dec > bd - 1e-15 && cats.len() < bc.len()),
        };
        if better {
            best = Some((dec, cats, nl >= nr));
        }
    }

    best.map(|(decrease, cats, default_left)| BestSplit {
        rule: SplitRule::Categorical {
            column: name.to_owned(),
            left_categories: cats.iter().map(|&c| dict[c].clone()).collect(),
        },
        decrease,
        default_left,
    })
}

/// Routes one row through a split rule. `None` = missing test value.
fn route(rule: &SplitRule, view: &TableView, row: usize) -> Option<bool> {
    let col = view
        .col_by_name(rule.column())
        .expect("feature validated at fit/predict time");
    match rule {
        SplitRule::Numeric { threshold, .. } => col.numeric_at(row).map(|v| v < *threshold),
        SplitRule::Categorical {
            left_categories, ..
        } => {
            let code = col.code_at(row)?;
            let label = &col.dictionary()[code as usize];
            Some(left_categories.iter().any(|c| c == label))
        }
    }
}

/// A split rule bound to a view: the column handle is resolved and the
/// categorical left-set is translated to a per-code table **once**, so
/// routing a row costs one column access instead of a name lookup plus a
/// string-set scan. This is what keeps bulk routing (fit partitions,
/// [`DecisionTree::predict`], [`DecisionTree::leaf_assignments`]) linear
/// in rows rather than rows × columns.
enum BoundRule<'v> {
    Numeric {
        col: ColumnView<'v>,
        threshold: f64,
    },
    Categorical {
        col: ColumnView<'v>,
        in_left: Vec<bool>,
    },
}

impl<'v> BoundRule<'v> {
    fn bind(rule: &SplitRule, view: &'v TableView) -> BoundRule<'v> {
        let col = view
            .col_by_name(rule.column())
            .expect("feature validated at fit/predict time");
        match rule {
            SplitRule::Numeric { threshold, .. } => BoundRule::Numeric {
                col,
                threshold: *threshold,
            },
            SplitRule::Categorical {
                left_categories, ..
            } => {
                let in_left = col
                    .dictionary()
                    .iter()
                    .map(|label| left_categories.iter().any(|c| c == label))
                    .collect();
                BoundRule::Categorical { col, in_left }
            }
        }
    }

    /// `None` = missing test value (caller applies the node's default).
    fn route(&self, row: usize) -> Option<bool> {
        match self {
            BoundRule::Numeric { col, threshold } => col.numeric_at(row).map(|v| v < *threshold),
            BoundRule::Categorical { col, in_left } => {
                col.code_at(row).map(|code| in_left[code as usize])
            }
        }
    }
}

/// Recursively partitions `rows` down the tree, invoking `on_leaf` with
/// each leaf node, its left-to-right leaf index, and the rows that landed
/// on it. Columns are bound once per node, not once per row.
fn partition_rows(
    node: &Node,
    view: &TableView,
    rows: Vec<u32>,
    leaf_base: usize,
    on_leaf: &mut impl FnMut(&Node, usize, &[u32]),
) {
    match node {
        Node::Leaf { .. } => on_leaf(node, leaf_base, &rows),
        Node::Internal {
            rule,
            default_left,
            left,
            right,
            ..
        } => {
            let bound = BoundRule::bind(rule, view);
            let mut left_rows = Vec::new();
            let mut right_rows = Vec::new();
            for r in rows {
                if bound.route(r as usize).unwrap_or(*default_left) {
                    left_rows.push(r);
                } else {
                    right_rows.push(r);
                }
            }
            partition_rows(left, view, left_rows, leaf_base, on_leaf);
            partition_rows(
                right,
                view,
                right_rows,
                leaf_base + left.n_leaves(),
                on_leaf,
            );
        }
    }
}

fn build_node(
    view: &TableView,
    features: &[String],
    labels: &[usize],
    rows: &[u32],
    nclasses: usize,
    depth: usize,
    config: &CartConfig,
) -> Node {
    let counts = class_counts(labels, rows, nclasses);
    let majority = counts
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(&a.0)))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let majority_fraction = if rows.is_empty() {
        1.0
    } else {
        counts[majority] as f64 / rows.len() as f64
    };
    let pure =
        counts.iter().filter(|&&c| c > 0).count() <= 1 || majority_fraction >= config.purity_stop;

    if pure || depth >= config.max_depth || rows.len() < config.min_samples_split {
        return Node::Leaf {
            class: majority,
            counts,
        };
    }

    // Best split across features (ties toward the earlier feature).
    let mut best: Option<BestSplit> = None;
    for name in features {
        let col = view.col_by_name(name).expect("validated");
        let candidate = match col.data_type() {
            DataType::Float64 | DataType::Int64 | DataType::Bool => {
                best_numeric_split(&col, name, labels, rows, nclasses, config)
            }
            DataType::Categorical => {
                best_categorical_split(&col, name, labels, rows, nclasses, config)
            }
        };
        if let Some(c) = candidate {
            if best
                .as_ref()
                .is_none_or(|b| c.decrease > b.decrease + 1e-15)
            {
                best = Some(c);
            }
        }
    }

    let Some(split) = best else {
        return Node::Leaf {
            class: majority,
            counts,
        };
    };
    if split.decrease < config.min_impurity_decrease {
        return Node::Leaf {
            class: majority,
            counts,
        };
    }

    // Partition rows; missing test values follow the default direction.
    let bound = BoundRule::bind(&split.rule, view);
    let mut left_rows = Vec::new();
    let mut right_rows = Vec::new();
    for &r in rows {
        let goes_left = bound.route(r as usize).unwrap_or(split.default_left);
        if goes_left {
            left_rows.push(r);
        } else {
            right_rows.push(r);
        }
    }
    if left_rows.is_empty() || right_rows.is_empty() {
        // All rows (incl. missing) landed on one side: not a useful split.
        return Node::Leaf {
            class: majority,
            counts,
        };
    }

    let left = build_node(
        view,
        features,
        labels,
        &left_rows,
        nclasses,
        depth + 1,
        config,
    );
    let right = build_node(
        view,
        features,
        labels,
        &right_rows,
        nclasses,
        depth + 1,
        config,
    );
    Node::Internal {
        rule: split.rule,
        default_left: split.default_left,
        counts,
        left: Box::new(left),
        right: Box::new(right),
    }
}

impl DecisionTree {
    /// Fits a tree on the given feature columns and class labels of a view
    /// (`labels[i]` is view row *i*'s class; Blaeu passes cluster IDs).
    ///
    /// # Errors
    /// Returns an error for unknown features, a label/row-count mismatch,
    /// or an empty view.
    pub fn fit(
        view: &TableView,
        features: &[&str],
        labels: &[usize],
        config: &CartConfig,
    ) -> Result<Self> {
        if labels.len() != view.nrows() {
            return Err(StoreError::LengthMismatch {
                expected: view.nrows(),
                found: labels.len(),
                column: "<labels>".to_owned(),
            });
        }
        if view.nrows() == 0 {
            return Err(StoreError::InvalidArgument(
                "cannot fit a tree on an empty view".to_owned(),
            ));
        }
        for &f in features {
            view.col_by_name(f)?;
        }
        let nclasses = labels.iter().copied().max().unwrap_or(0) + 1;
        let rows: Vec<u32> = (0..view.nrows() as u32).collect();
        let features: Vec<String> = features.iter().map(|&s| s.to_owned()).collect();
        // Fold the fractional leaf floor into the absolute one.
        let mut config = config.clone();
        config.min_samples_leaf = config
            .min_samples_leaf
            .max((config.min_leaf_fraction.clamp(0.0, 1.0) * view.nrows() as f64).ceil() as usize);
        let root = build_node(view, &features, labels, &rows, nclasses, 0, &config);
        Ok(DecisionTree {
            root,
            nclasses,
            features,
        })
    }

    /// The root node.
    pub fn root(&self) -> &Node {
        &self.root
    }

    /// Rebuilds this tree around a (typically pruned) root, keeping the
    /// class count and feature list.
    pub(crate) fn with_root(&self, root: Node) -> DecisionTree {
        DecisionTree {
            root,
            nclasses: self.nclasses,
            features: self.features.clone(),
        }
    }

    /// Number of classes the tree distinguishes.
    pub fn nclasses(&self) -> usize {
        self.nclasses
    }

    /// Feature columns used at fit time.
    pub fn features(&self) -> &[String] {
        &self.features
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.root.n_leaves()
    }

    /// Tree depth.
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Predicts the class of one view row.
    ///
    /// # Errors
    /// Returns an error when a feature column is missing from the view.
    pub fn predict_row(&self, view: &TableView, row: usize) -> Result<usize> {
        for f in &self.features {
            view.col_by_name(f)?;
        }
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class, .. } => return Ok(*class),
                Node::Internal {
                    rule,
                    default_left,
                    left,
                    right,
                    ..
                } => {
                    let goes_left = route(rule, view, row).unwrap_or(*default_left);
                    node = if goes_left { left } else { right };
                }
            }
        }
    }

    /// Predicts every row of a view.
    ///
    /// # Errors
    /// Returns an error when a feature column is missing from the view.
    pub fn predict(&self, view: &TableView) -> Result<Vec<usize>> {
        for f in &self.features {
            view.col_by_name(f)?;
        }
        let mut out = vec![0usize; view.nrows()];
        let rows: Vec<u32> = (0..view.nrows() as u32).collect();
        partition_rows(&self.root, view, rows, 0, &mut |leaf, _, leaf_rows| {
            let Node::Leaf { class, .. } = leaf else {
                unreachable!("partition_rows only reports leaves");
            };
            for &r in leaf_rows {
                out[r as usize] = *class;
            }
        });
        Ok(out)
    }

    /// Routes every view row to a leaf, returning per-row leaf indices in
    /// left-to-right leaf order (the region assignment for data maps).
    ///
    /// # Errors
    /// Returns an error when a feature column is missing from the view.
    pub fn leaf_assignments(&self, view: &TableView) -> Result<Vec<usize>> {
        for f in &self.features {
            view.col_by_name(f)?;
        }
        let mut out = vec![0usize; view.nrows()];
        let rows: Vec<u32> = (0..view.nrows() as u32).collect();
        partition_rows(
            &self.root,
            view,
            rows,
            0,
            &mut |_, leaf_index, leaf_rows| {
                for &r in leaf_rows {
                    out[r as usize] = leaf_index;
                }
            },
        );
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaeu_store::{Column, TableBuilder};

    /// Two numeric clusters split at x = 5.
    fn simple_numeric() -> (TableView, Vec<usize>) {
        let xs: Vec<f64> = (0..40)
            .map(|i| {
                if i < 20 {
                    i as f64 / 4.0
                } else {
                    6.0 + (i - 20) as f64 / 4.0
                }
            })
            .collect();
        let labels: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
        let t = TableBuilder::new("t")
            .column("x", Column::dense_f64(xs))
            .unwrap()
            .build()
            .unwrap();
        (t.into(), labels)
    }

    #[test]
    fn learns_threshold_split() {
        let (t, labels) = simple_numeric();
        let tree = DecisionTree::fit(&t, &["x"], &labels, &CartConfig::default()).unwrap();
        assert_eq!(tree.depth(), 1);
        assert_eq!(tree.n_leaves(), 2);
        let Node::Internal { rule, .. } = tree.root() else {
            panic!("expected a split");
        };
        let SplitRule::Numeric { threshold, .. } = rule else {
            panic!("expected numeric rule");
        };
        assert!(
            (*threshold > 4.7) && (*threshold < 6.1),
            "threshold {threshold} should sit in the gap"
        );
        let pred = tree.predict(&t).unwrap();
        assert_eq!(pred, labels, "tree should perfectly separate the blobs");
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let t: TableView = TableBuilder::new("t")
            .column("x", Column::dense_f64(vec![1.0, 2.0, 3.0]))
            .unwrap()
            .build()
            .unwrap()
            .into();
        let tree = DecisionTree::fit(&t, &["x"], &[1, 1, 1], &CartConfig::default()).unwrap();
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.predict_row(&t, 0).unwrap(), 1);
        assert_eq!(tree.nclasses(), 2);
    }

    #[test]
    fn max_depth_respected() {
        // Three clusters need two split levels (three leaves); cap at 1 and
        // verify the tree stays shallow, then confirm depth 2 fits exactly.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut labels = Vec::new();
        for i in 0..12 {
            xs.push(i as f64 * 0.1);
            ys.push(i as f64 * 0.1);
            labels.push(0);
        }
        for i in 0..12 {
            xs.push(i as f64 * 0.1);
            ys.push(10.0 + i as f64 * 0.1);
            labels.push(1);
        }
        for i in 0..12 {
            xs.push(10.0 + i as f64 * 0.1);
            ys.push(5.0 + i as f64 * 0.1);
            labels.push(2);
        }
        let t: TableView = TableBuilder::new("t")
            .column("x", Column::dense_f64(xs))
            .unwrap()
            .column("y", Column::dense_f64(ys))
            .unwrap()
            .build()
            .unwrap()
            .into();
        let config = CartConfig {
            max_depth: 1,
            min_samples_split: 2,
            min_samples_leaf: 1,
            ..CartConfig::default()
        };
        let tree = DecisionTree::fit(&t, &["x", "y"], &labels, &config).unwrap();
        assert!(tree.depth() <= 1);
        assert!(tree.n_leaves() <= 2);
        let deeper = DecisionTree::fit(
            &t,
            &["x", "y"],
            &labels,
            &CartConfig {
                max_depth: 3,
                min_samples_split: 2,
                min_samples_leaf: 1,
                ..CartConfig::default()
            },
        )
        .unwrap();
        assert!(deeper.depth() >= 2, "three clusters need two levels");
        let pred = deeper.predict(&t).unwrap();
        assert_eq!(pred, labels);
    }

    #[test]
    fn categorical_split() {
        let cats = ["nl", "nl", "nl", "ch", "ch", "ch", "us", "us", "us", "us"];
        let labels = vec![0, 0, 0, 0, 0, 0, 1, 1, 1, 1];
        let t: TableView = TableBuilder::new("t")
            .column("country", Column::from_strs(cats.iter().map(|&s| Some(s))))
            .unwrap()
            .build()
            .unwrap()
            .into();
        let config = CartConfig {
            min_samples_split: 2,
            min_samples_leaf: 1,
            ..CartConfig::default()
        };
        let tree = DecisionTree::fit(&t, &["country"], &labels, &config).unwrap();
        let pred = tree.predict(&t).unwrap();
        assert_eq!(pred, labels);
        let Node::Internal { rule, .. } = tree.root() else {
            panic!("expected split");
        };
        let SplitRule::Categorical {
            left_categories, ..
        } = rule
        else {
            panic!("expected categorical rule");
        };
        // One side must be exactly {us}.
        let sorted: Vec<&str> = left_categories.iter().map(String::as_str).collect();
        assert!(sorted == ["us"] || sorted.len() == 2, "got {sorted:?}");
    }

    #[test]
    fn missing_values_follow_default_direction() {
        let xs: Vec<Option<f64>> = (0..30)
            .map(|i| if i % 10 == 9 { None } else { Some(i as f64) })
            .collect();
        let labels: Vec<usize> = (0..30).map(|i| usize::from(i >= 15)).collect();
        let t: TableView = TableBuilder::new("t")
            .column("x", Column::from_f64s(xs))
            .unwrap()
            .build()
            .unwrap()
            .into();
        let config = CartConfig {
            min_samples_split: 4,
            min_samples_leaf: 2,
            ..CartConfig::default()
        };
        let tree = DecisionTree::fit(&t, &["x"], &labels, &config).unwrap();
        // Prediction never fails on missing data.
        for row in 0..30 {
            let _ = tree.predict_row(&t, row).unwrap();
        }
        let acc = tree
            .predict(&t)
            .unwrap()
            .iter()
            .zip(&labels)
            .filter(|(p, a)| p == a)
            .count();
        assert!(acc >= 24, "tree should fit most rows, got {acc}/30");
    }

    #[test]
    fn min_samples_leaf_enforced() {
        let (t, labels) = simple_numeric();
        let config = CartConfig {
            min_samples_leaf: 25, // can't split 40 rows into 25+25
            ..CartConfig::default()
        };
        let tree = DecisionTree::fit(&t, &["x"], &labels, &config).unwrap();
        assert_eq!(tree.n_leaves(), 1);
    }

    #[test]
    fn errors_on_bad_inputs() {
        let (t, labels) = simple_numeric();
        assert!(DecisionTree::fit(&t, &["ghost"], &labels, &CartConfig::default()).is_err());
        assert!(DecisionTree::fit(&t, &["x"], &labels[..5], &CartConfig::default()).is_err());
        let empty: TableView = TableBuilder::new("e").build().unwrap().into();
        assert!(DecisionTree::fit(&empty, &[], &[], &CartConfig::default()).is_err());
    }

    #[test]
    fn predict_on_missing_feature_errors() {
        let (t, labels) = simple_numeric();
        let tree = DecisionTree::fit(&t, &["x"], &labels, &CartConfig::default()).unwrap();
        let other: TableView = TableBuilder::new("o")
            .column("y", Column::dense_f64(vec![1.0]))
            .unwrap()
            .build()
            .unwrap()
            .into();
        assert!(tree.predict(&other).is_err());
        assert!(tree.predict_row(&other, 0).is_err());
    }

    #[test]
    fn leaf_assignments_partition_rows() {
        let (t, labels) = simple_numeric();
        let tree = DecisionTree::fit(&t, &["x"], &labels, &CartConfig::default()).unwrap();
        let assign = tree.leaf_assignments(&t).unwrap();
        assert_eq!(assign.len(), t.nrows());
        let distinct: std::collections::HashSet<usize> = assign.iter().copied().collect();
        assert_eq!(distinct.len(), tree.n_leaves());
        assert!(assign.iter().all(|&a| a < tree.n_leaves()));
    }

    #[test]
    fn three_class_problem() {
        let xs: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let labels: Vec<usize> = (0..60).map(|i| i / 20).collect();
        let t: TableView = TableBuilder::new("t")
            .column("x", Column::dense_f64(xs))
            .unwrap()
            .build()
            .unwrap()
            .into();
        let tree = DecisionTree::fit(&t, &["x"], &labels, &CartConfig::default()).unwrap();
        assert_eq!(tree.nclasses(), 3);
        assert_eq!(tree.n_leaves(), 3);
        assert_eq!(tree.predict(&t).unwrap(), labels);
    }

    #[test]
    fn deterministic() {
        let (t, labels) = simple_numeric();
        let a = DecisionTree::fit(&t, &["x"], &labels, &CartConfig::default()).unwrap();
        let b = DecisionTree::fit(&t, &["x"], &labels, &CartConfig::default()).unwrap();
        assert_eq!(a, b);
    }
}
