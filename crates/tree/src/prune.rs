//! Cost-complexity (weakest-link) pruning — CART's pruning procedure
//! (Breiman et al. 1984, ch. 3).
//!
//! For an internal node *t*, the link strength is
//! `g(t) = (R(t) − R(T_t)) / (|leaves(T_t)| − 1)` where `R` counts
//! training misclassifications: how much error one buys per leaf saved by
//! collapsing *t*. Pruning at complexity `alpha` collapses every subtree
//! whose weakest link is ≤ `alpha`, yielding the smallest subtree within
//! `alpha` per-leaf error of the full tree. Blaeu's maps benefit directly:
//! pruned maps are smaller without giving up real structure.

use crate::cart::DecisionTree;
use crate::node::Node;

/// Training misclassifications at the node if it were a leaf.
fn node_error(counts: &[usize]) -> usize {
    let total: usize = counts.iter().sum();
    total - counts.iter().copied().max().unwrap_or(0)
}

/// (subtree error, subtree leaves).
fn subtree_stats(node: &Node) -> (usize, usize) {
    match node {
        Node::Leaf { counts, .. } => (node_error(counts), 1),
        Node::Internal { left, right, .. } => {
            let (el, ll) = subtree_stats(left);
            let (er, lr) = subtree_stats(right);
            (el + er, ll + lr)
        }
    }
}

/// Weakest link strength over the subtree (`None` for leaves).
fn weakest_link(node: &Node) -> Option<f64> {
    match node {
        Node::Leaf { .. } => None,
        Node::Internal {
            counts,
            left,
            right,
            ..
        } => {
            let (sub_err, sub_leaves) = subtree_stats(node);
            let own =
                (node_error(counts) as f64 - sub_err as f64) / (sub_leaves as f64 - 1.0).max(1.0);
            let mut weakest = own;
            for child in [left, right] {
                if let Some(w) = weakest_link(child) {
                    weakest = weakest.min(w);
                }
            }
            Some(weakest)
        }
    }
}

/// Collapses every internal node whose link strength is ≤ `alpha`
/// (children first, so collapsing cascades bottom-up).
fn prune_node(node: &Node, alpha: f64) -> Node {
    match node {
        Node::Leaf { class, counts } => Node::Leaf {
            class: *class,
            counts: counts.clone(),
        },
        Node::Internal {
            rule,
            default_left,
            counts,
            left,
            right,
        } => {
            let left = prune_node(left, alpha);
            let right = prune_node(right, alpha);
            let rebuilt = Node::Internal {
                rule: rule.clone(),
                default_left: *default_left,
                counts: counts.clone(),
                left: Box::new(left),
                right: Box::new(right),
            };
            let (sub_err, sub_leaves) = subtree_stats(&rebuilt);
            let g =
                (node_error(counts) as f64 - sub_err as f64) / (sub_leaves as f64 - 1.0).max(1.0);
            if g <= alpha {
                Node::Leaf {
                    class: rebuilt.majority_class(),
                    counts: counts.clone(),
                }
            } else {
                rebuilt
            }
        }
    }
}

/// The increasing sequence of critical `alpha` values at which the tree
/// loses at least one split (the cost-complexity path). Empty for stumps.
pub fn alpha_path(tree: &DecisionTree) -> Vec<f64> {
    let mut alphas = Vec::new();
    let mut current = tree.clone();
    while let Some(weakest) = weakest_link(current.root()) {
        let alpha = weakest.max(0.0);
        alphas.push(alpha);
        let pruned = current.with_root(prune_node(current.root(), alpha));
        if pruned.n_leaves() == current.n_leaves() {
            break; // numerical safety; should not happen
        }
        current = pruned;
    }
    alphas.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    alphas
}

/// Returns the tree pruned at complexity `alpha ≥ 0`.
pub fn prune(tree: &DecisionTree, alpha: f64) -> DecisionTree {
    tree.with_root(prune_node(tree.root(), alpha.max(0.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cart::CartConfig;
    use blaeu_store::{Column, TableBuilder, TableView};

    /// Two strong clusters plus a sprinkle of label noise that invites
    /// overfit micro-splits.
    fn noisy_dataset() -> (TableView, Vec<usize>) {
        let n = 200;
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let labels: Vec<usize> = (0..n)
            .map(|i| {
                if i % 37 == 0 {
                    usize::from(i < n / 2) // flipped: noise
                } else {
                    usize::from(i >= n / 2)
                }
            })
            .collect();
        let t = TableBuilder::new("noisy")
            .column("x", Column::dense_f64(xs))
            .unwrap()
            .build()
            .unwrap();
        (t.into(), labels)
    }

    fn overfit_config() -> CartConfig {
        CartConfig {
            max_depth: 8,
            min_samples_split: 2,
            min_samples_leaf: 1,
            min_leaf_fraction: 0.0,
            purity_stop: 1.0,
            ..CartConfig::default()
        }
    }

    #[test]
    fn pruning_shrinks_overfit_trees() {
        let (t, labels) = noisy_dataset();
        let tree = DecisionTree::fit(&t, &["x"], &labels, &overfit_config()).unwrap();
        assert!(tree.n_leaves() > 2, "tree should overfit the noise");
        let pruned = prune(&tree, 2.0);
        assert!(
            pruned.n_leaves() < tree.n_leaves(),
            "{} -> {}",
            tree.n_leaves(),
            pruned.n_leaves()
        );
        // The dominant split survives moderate pruning.
        assert!(pruned.n_leaves() >= 2);
        // Prediction still works.
        let acc = crate::eval::accuracy(&pruned.predict(&t).unwrap(), &labels);
        assert!(acc > 0.9, "acc {acc}");
    }

    #[test]
    fn alpha_zero_only_removes_useless_splits() {
        let (t, labels) = noisy_dataset();
        let tree = DecisionTree::fit(&t, &["x"], &labels, &overfit_config()).unwrap();
        let pruned = prune(&tree, 0.0);
        // Training error must not change at alpha = 0.
        let (e_before, _) = subtree_stats(tree.root());
        let (e_after, _) = subtree_stats(pruned.root());
        assert_eq!(e_before, e_after);
        assert!(pruned.n_leaves() <= tree.n_leaves());
    }

    #[test]
    fn huge_alpha_collapses_to_stump() {
        let (t, labels) = noisy_dataset();
        let tree = DecisionTree::fit(&t, &["x"], &labels, &overfit_config()).unwrap();
        let stump = prune(&tree, f64::INFINITY);
        assert_eq!(stump.n_leaves(), 1);
        assert_eq!(stump.depth(), 0);
        // Predicts the majority class everywhere.
        let majority = tree.root().majority_class();
        assert!(stump.predict(&t).unwrap().iter().all(|&p| p == majority));
    }

    #[test]
    fn alpha_path_is_monotone_and_effective() {
        let (t, labels) = noisy_dataset();
        let tree = DecisionTree::fit(&t, &["x"], &labels, &overfit_config()).unwrap();
        let path = alpha_path(&tree);
        assert!(!path.is_empty());
        assert!(
            path.windows(2).all(|w| w[0] <= w[1] + 1e-9),
            "path {path:?}"
        );
        // Leaf counts shrink monotonically along the path.
        let mut prev_leaves = tree.n_leaves();
        for &alpha in &path {
            let leaves = prune(&tree, alpha + 1e-9).n_leaves();
            assert!(
                leaves <= prev_leaves,
                "alpha {alpha}: {prev_leaves} -> {leaves}"
            );
            prev_leaves = leaves;
        }
        assert_eq!(prev_leaves, 1, "end of the path is the stump");
    }

    #[test]
    fn pruning_preserves_row_partition() {
        let (t, labels) = noisy_dataset();
        let tree = DecisionTree::fit(&t, &["x"], &labels, &overfit_config()).unwrap();
        let pruned = prune(&tree, 1.0);
        let assign = pruned.leaf_assignments(&t).unwrap();
        assert_eq!(assign.len(), t.nrows());
        assert!(assign.iter().all(|&a| a < pruned.n_leaves()));
        // Counts per leaf match rule extraction.
        let rules = crate::rules::leaf_rules(&pruned);
        for rule in &rules {
            let routed = assign.iter().filter(|&&a| a == rule.leaf).count();
            assert_eq!(routed, rule.n());
        }
    }

    #[test]
    fn pruning_a_stump_is_identity() {
        let t: TableView = TableBuilder::new("t")
            .column("x", Column::dense_f64(vec![1.0, 2.0, 3.0]))
            .unwrap()
            .build()
            .unwrap()
            .into();
        let tree = DecisionTree::fit(&t, &["x"], &[0, 0, 0], &CartConfig::default()).unwrap();
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(prune(&tree, 5.0), tree);
        assert!(alpha_path(&tree).is_empty());
    }
}
