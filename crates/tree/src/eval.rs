//! Evaluating tree fidelity.
//!
//! "The decision tree only approximates the real partitions detected during
//! the clustering step" — these helpers measure exactly that loss.

/// Confusion matrix `m[actual][predicted]`.
pub fn confusion_matrix(predicted: &[usize], actual: &[usize]) -> Vec<Vec<usize>> {
    assert_eq!(predicted.len(), actual.len(), "label vectors must align");
    let k = predicted
        .iter()
        .chain(actual)
        .copied()
        .max()
        .map_or(0, |m| m + 1);
    let mut m = vec![vec![0usize; k]; k];
    for (&p, &a) in predicted.iter().zip(actual) {
        m[a][p] += 1;
    }
    m
}

/// Fraction of exact label matches.
pub fn accuracy(predicted: &[usize], actual: &[usize]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "label vectors must align");
    if predicted.is_empty() {
        return 1.0;
    }
    predicted.iter().zip(actual).filter(|(p, a)| p == a).count() as f64 / predicted.len() as f64
}

/// Per-class recall (`None` for classes absent from `actual`).
pub fn per_class_recall(predicted: &[usize], actual: &[usize]) -> Vec<Option<f64>> {
    let m = confusion_matrix(predicted, actual);
    m.iter()
        .enumerate()
        .map(|(c, row)| {
            let total: usize = row.iter().sum();
            (total > 0).then(|| row[c] as f64 / total as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let actual = vec![0, 0, 1, 1, 2];
        let predicted = vec![0, 1, 1, 1, 0];
        let m = confusion_matrix(&predicted, &actual);
        assert_eq!(m[0], vec![1, 1, 0]);
        assert_eq!(m[1], vec![0, 2, 0]);
        assert_eq!(m[2], vec![1, 0, 0]);
    }

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1], &[0, 1]), 1.0);
        assert_eq!(accuracy(&[1, 1], &[0, 1]), 0.5);
        assert_eq!(accuracy(&[], &[]), 1.0);
    }

    #[test]
    fn recall_per_class() {
        let actual = vec![0, 0, 1, 1];
        let predicted = vec![0, 1, 1, 1];
        let r = per_class_recall(&predicted, &actual);
        assert_eq!(r[0], Some(0.5));
        assert_eq!(r[1], Some(1.0));
    }

    #[test]
    fn recall_absent_class_none() {
        let actual = vec![0, 0];
        let predicted = vec![0, 2];
        let r = per_class_recall(&predicted, &actual);
        assert_eq!(r[0], Some(0.5));
        assert_eq!(r[1], None);
        assert_eq!(r[2], None);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        let _ = accuracy(&[0], &[0, 1]);
    }
}
