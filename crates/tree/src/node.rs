//! Tree nodes and split rules.

use std::fmt;

/// A binary split test on one column.
#[derive(Debug, Clone, PartialEq)]
pub enum SplitRule {
    /// Numeric test: rows with `value < threshold` go left.
    Numeric {
        /// Column tested.
        column: String,
        /// Split threshold.
        threshold: f64,
    },
    /// Categorical test: rows whose label is in `left_categories` go left.
    Categorical {
        /// Column tested.
        column: String,
        /// Category labels routed to the left child.
        left_categories: Vec<String>,
    },
}

impl SplitRule {
    /// Name of the tested column.
    pub fn column(&self) -> &str {
        match self {
            SplitRule::Numeric { column, .. } | SplitRule::Categorical { column, .. } => column,
        }
    }

    /// Human-readable description of the *left* branch condition
    /// (e.g. `"Average Income" < 22`).
    pub fn describe_left(&self) -> String {
        match self {
            SplitRule::Numeric { column, threshold } => {
                format!("{column} < {}", format_threshold(*threshold))
            }
            SplitRule::Categorical {
                column,
                left_categories,
            } => format!("{column} in {{{}}}", left_categories.join(", ")),
        }
    }

    /// Human-readable description of the *right* branch condition.
    pub fn describe_right(&self) -> String {
        match self {
            SplitRule::Numeric { column, threshold } => {
                format!("{column} >= {}", format_threshold(*threshold))
            }
            SplitRule::Categorical {
                column,
                left_categories,
            } => format!("{column} not in {{{}}}", left_categories.join(", ")),
        }
    }
}

/// Renders thresholds compactly (trim trailing zeros, keep 4 significant
/// decimals) so map labels stay readable.
fn format_threshold(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e12 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.4}");
        s.trim_end_matches('0').trim_end_matches('.').to_owned()
    }
}

impl fmt::Display for SplitRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe_left())
    }
}

/// A node of a fitted decision tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Terminal node predicting `class`.
    Leaf {
        /// Majority class at this leaf.
        class: usize,
        /// Training class counts at this leaf.
        counts: Vec<usize>,
    },
    /// Internal split node.
    Internal {
        /// The split test.
        rule: SplitRule,
        /// Where rows with a missing test value go (majority direction
        /// observed during training).
        default_left: bool,
        /// Training class counts at this node.
        counts: Vec<usize>,
        /// Left child (`rule` satisfied).
        left: Box<Node>,
        /// Right child.
        right: Box<Node>,
    },
}

impl Node {
    /// Training row count at this node.
    pub fn n(&self) -> usize {
        match self {
            Node::Leaf { counts, .. } | Node::Internal { counts, .. } => counts.iter().sum(),
        }
    }

    /// Majority class at this node.
    pub fn majority_class(&self) -> usize {
        match self {
            Node::Leaf { class, .. } => *class,
            Node::Internal { counts, .. } => counts
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(&a.0)))
                .map(|(i, _)| i)
                .unwrap_or(0),
        }
    }

    /// Number of leaves under (and including) this node.
    pub fn n_leaves(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Internal { left, right, .. } => left.n_leaves() + right.n_leaves(),
        }
    }

    /// Depth of the subtree (a leaf has depth 0).
    pub fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 0,
            Node::Internal { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> Node {
        Node::Internal {
            rule: SplitRule::Numeric {
                column: "income".into(),
                threshold: 22.0,
            },
            default_left: true,
            counts: vec![6, 4],
            left: Box::new(Node::Leaf {
                class: 0,
                counts: vec![5, 1],
            }),
            right: Box::new(Node::Internal {
                rule: SplitRule::Categorical {
                    column: "region".into(),
                    left_categories: vec!["EU".into()],
                },
                default_left: false,
                counts: vec![1, 3],
                left: Box::new(Node::Leaf {
                    class: 1,
                    counts: vec![0, 2],
                }),
                right: Box::new(Node::Leaf {
                    class: 0,
                    counts: vec![1, 1],
                }),
            }),
        }
    }

    #[test]
    fn structure_metrics() {
        let t = sample_tree();
        assert_eq!(t.n(), 10);
        assert_eq!(t.n_leaves(), 3);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.majority_class(), 0);
    }

    #[test]
    fn describe_directions() {
        let rule = SplitRule::Numeric {
            column: "hours".into(),
            threshold: 20.0,
        };
        assert_eq!(rule.describe_left(), "hours < 20");
        assert_eq!(rule.describe_right(), "hours >= 20");
        assert_eq!(rule.column(), "hours");

        let rule = SplitRule::Categorical {
            column: "country".into(),
            left_categories: vec!["NL".into(), "CH".into()],
        };
        assert_eq!(rule.describe_left(), "country in {NL, CH}");
        assert_eq!(rule.describe_right(), "country not in {NL, CH}");
    }

    #[test]
    fn threshold_formatting() {
        assert_eq!(format_threshold(22.0), "22");
        assert_eq!(format_threshold(2.5), "2.5");
        assert_eq!(format_threshold(1.0 / 3.0), "0.3333");
        assert_eq!(format_threshold(-4.0), "-4");
    }

    #[test]
    fn majority_ties_prefer_lower_class() {
        let node = Node::Leaf {
            class: 0,
            counts: vec![3, 3],
        };
        assert_eq!(node.majority_class(), 0);
        let internal = Node::Internal {
            rule: SplitRule::Numeric {
                column: "x".into(),
                threshold: 0.0,
            },
            default_left: true,
            counts: vec![2, 2],
            left: Box::new(node.clone()),
            right: Box::new(node),
        };
        assert_eq!(internal.majority_class(), 0);
    }
}
