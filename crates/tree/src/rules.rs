//! Rule extraction: turning tree paths into predicates and descriptions.
//!
//! Every leaf of the map tree is an implicit Select-Project query. This
//! module walks root-to-leaf paths, merges the interval constraints per
//! column, and emits both a [`Predicate`] (evaluable / SQL-renderable) and
//! human-readable descriptions for region labels.
//!
//! Note on NULLs: predicates follow SQL semantics (NULL never matches a
//! comparison), while the tree routes missing values along default
//! branches. Region membership therefore comes from
//! [`DecisionTree::leaf_assignments`], and predicates are the *displayed*
//! form of each region.

use std::collections::BTreeMap;

use blaeu_store::{Bound, Predicate};

use crate::cart::DecisionTree;
use crate::node::{Node, SplitRule};

/// A fully described leaf region.
#[derive(Debug, Clone)]
pub struct LeafRule {
    /// Index of the leaf in left-to-right order (matches
    /// [`DecisionTree::leaf_assignments`]).
    pub leaf: usize,
    /// Merged predicate describing the root-to-leaf path.
    pub predicate: Predicate,
    /// One human-readable clause per constrained column.
    pub description: Vec<String>,
    /// Majority class at the leaf.
    pub class: usize,
    /// Training class counts at the leaf.
    pub counts: Vec<usize>,
}

impl LeafRule {
    /// Training rows at the leaf.
    pub fn n(&self) -> usize {
        self.counts.iter().sum()
    }
}

/// Per-column accumulated constraints along one path.
#[derive(Debug, Clone, Default)]
struct ColumnConstraint {
    lo: Option<f64>,              // value >= lo (from going right)
    hi: Option<f64>,              // value < hi  (from going left)
    include: Option<Vec<String>>, // categorical: must be in this set
    exclude: Vec<String>,         // categorical: must not be in these
}

/// Accumulated constraints of a root-to-node path, mergeable per column.
///
/// Use [`PathConstraints::apply`] while descending the tree; at any node,
/// [`PathConstraints::predicate`] and [`PathConstraints::describe`] render
/// the merged path (repeated tests on the same column collapse into
/// intervals / set differences).
#[derive(Debug, Clone, Default)]
pub struct PathConstraints {
    map: BTreeMap<String, ColumnConstraint>,
}

impl PathConstraints {
    /// Empty constraint set (the root path).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records taking the `went_left` branch of `rule`.
    pub fn apply(&mut self, rule: &SplitRule, went_left: bool) {
        self.map
            .entry(rule.column().to_owned())
            .or_default()
            .apply(rule, went_left);
    }

    /// Merged predicate for the whole path.
    pub fn predicate(&self) -> Predicate {
        let parts: Vec<Predicate> = self
            .map
            .iter()
            .filter_map(|(column, c)| c.to_predicate(column))
            .collect();
        Predicate::and(parts)
    }

    /// One human-readable clause per constrained column.
    pub fn describe(&self) -> Vec<String> {
        self.map
            .iter()
            .filter_map(|(column, c)| c.describe(column))
            .collect()
    }
}

fn format_number(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e12 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.4}");
        s.trim_end_matches('0').trim_end_matches('.').to_owned()
    }
}

impl ColumnConstraint {
    fn apply(&mut self, rule: &SplitRule, went_left: bool) {
        match rule {
            SplitRule::Numeric { threshold, .. } => {
                if went_left {
                    // value < threshold: tighten the upper bound.
                    self.hi = Some(self.hi.map_or(*threshold, |h| h.min(*threshold)));
                } else {
                    self.lo = Some(self.lo.map_or(*threshold, |l| l.max(*threshold)));
                }
            }
            SplitRule::Categorical {
                left_categories, ..
            } => {
                if went_left {
                    let new: Vec<String> = match &self.include {
                        Some(existing) => existing
                            .iter()
                            .filter(|c| left_categories.contains(c))
                            .cloned()
                            .collect(),
                        None => left_categories.clone(),
                    };
                    self.include = Some(new);
                } else {
                    for c in left_categories {
                        if !self.exclude.contains(c) {
                            self.exclude.push(c.clone());
                        }
                    }
                }
            }
        }
    }

    fn to_predicate(&self, column: &str) -> Option<Predicate> {
        let mut parts = Vec::new();
        match (self.lo, self.hi) {
            (None, None) => {}
            (lo, hi) => parts.push(Predicate::NumRange {
                column: column.to_owned(),
                lo: lo.map_or(Bound::Unbounded, Bound::Inclusive),
                hi: hi.map_or(Bound::Unbounded, Bound::Exclusive),
            }),
        }
        if let Some(include) = &self.include {
            // Included set minus later exclusions.
            let cats: Vec<String> = include
                .iter()
                .filter(|c| !self.exclude.contains(c))
                .cloned()
                .collect();
            parts.push(Predicate::is_in(column, cats));
        } else if !self.exclude.is_empty() {
            parts.push(Predicate::Not(Box::new(Predicate::is_in(
                column,
                self.exclude.clone(),
            ))));
        }
        match parts.len() {
            0 => None,
            1 => Some(parts.pop().expect("len checked")),
            _ => Some(Predicate::And(parts)),
        }
    }

    fn describe(&self, column: &str) -> Option<String> {
        if let Some(include) = &self.include {
            let cats: Vec<String> = include
                .iter()
                .filter(|c| !self.exclude.contains(c))
                .cloned()
                .collect();
            return Some(format!("{column} in {{{}}}", cats.join(", ")));
        }
        if !self.exclude.is_empty() {
            return Some(format!("{column} not in {{{}}}", self.exclude.join(", ")));
        }
        match (self.lo, self.hi) {
            (None, None) => None,
            (Some(lo), None) => Some(format!("{column} >= {}", format_number(lo))),
            (None, Some(hi)) => Some(format!("{column} < {}", format_number(hi))),
            (Some(lo), Some(hi)) => Some(format!(
                "{} <= {column} < {}",
                format_number(lo),
                format_number(hi)
            )),
        }
    }
}

fn walk(
    node: &Node,
    constraints: &PathConstraints,
    leaf_counter: &mut usize,
    out: &mut Vec<LeafRule>,
) {
    match node {
        Node::Leaf { class, counts } => {
            out.push(LeafRule {
                leaf: *leaf_counter,
                predicate: constraints.predicate(),
                description: constraints.describe(),
                class: *class,
                counts: counts.clone(),
            });
            *leaf_counter += 1;
        }
        Node::Internal {
            rule, left, right, ..
        } => {
            for (child, went_left) in [(left, true), (right, false)] {
                let mut next = constraints.clone();
                next.apply(rule, went_left);
                walk(child, &next, leaf_counter, out);
            }
        }
    }
}

/// Extracts one [`LeafRule`] per leaf, in left-to-right leaf order.
pub fn leaf_rules(tree: &DecisionTree) -> Vec<LeafRule> {
    let mut out = Vec::with_capacity(tree.n_leaves());
    let mut counter = 0usize;
    walk(tree.root(), &PathConstraints::new(), &mut counter, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cart::CartConfig;
    use blaeu_store::{Column, TableBuilder, TableView};

    fn two_split_table() -> (TableView, Vec<usize>) {
        // Three clusters describable as: x<10 & y<5 | x<10 & y>=5 | x>=10.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            xs.push(i as f64 / 4.0);
            ys.push(0.0 + (i % 5) as f64 / 2.0);
            labels.push(0);
        }
        for i in 0..20 {
            xs.push(i as f64 / 4.0);
            ys.push(8.0 + (i % 5) as f64 / 2.0);
            labels.push(1);
        }
        for i in 0..20 {
            xs.push(15.0 + i as f64 / 4.0);
            ys.push(4.0 + (i % 5) as f64 / 2.0);
            labels.push(2);
        }
        let t = TableBuilder::new("t")
            .column("x", Column::dense_f64(xs))
            .unwrap()
            .column("y", Column::dense_f64(ys))
            .unwrap()
            .build()
            .unwrap();
        (t.into(), labels)
    }

    #[test]
    fn rules_reselect_leaf_rows() {
        let (t, labels) = two_split_table();
        let tree = DecisionTree::fit(&t, &["x", "y"], &labels, &CartConfig::default()).unwrap();
        let rules = leaf_rules(&tree);
        assert_eq!(rules.len(), tree.n_leaves());

        // On NULL-free data, predicate selection == tree routing.
        let assignments = tree.leaf_assignments(&t).unwrap();
        for rule in &rules {
            let selected = rule.predicate.select_view(&t).unwrap();
            let routed: Vec<u32> = assignments
                .iter()
                .enumerate()
                .filter(|&(_, &leaf)| leaf == rule.leaf)
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(selected, routed, "leaf {} mismatch", rule.leaf);
        }
    }

    #[test]
    fn rule_counts_match_training_rows() {
        let (t, labels) = two_split_table();
        let tree = DecisionTree::fit(&t, &["x", "y"], &labels, &CartConfig::default()).unwrap();
        let rules = leaf_rules(&tree);
        let total: usize = rules.iter().map(LeafRule::n).sum();
        assert_eq!(total, t.nrows(), "leaves partition the training set");
    }

    #[test]
    fn interval_constraints_merge() {
        // Deep path on the same column: x < 8 then x < 4 then x >= 2
        // should merge to 2 <= x < 4.
        let xs: Vec<f64> = (0..64).map(|i| i as f64 / 4.0).collect();
        let labels: Vec<usize> = xs
            .iter()
            .map(|&x| {
                if x < 2.0 {
                    0
                } else if x < 4.0 {
                    1
                } else if x < 8.0 {
                    2
                } else {
                    3
                }
            })
            .collect();
        let t: TableView = TableBuilder::new("t")
            .column("x", Column::dense_f64(xs))
            .unwrap()
            .build()
            .unwrap()
            .into();
        let config = CartConfig {
            min_samples_split: 2,
            min_samples_leaf: 1,
            ..CartConfig::default()
        };
        let tree = DecisionTree::fit(&t, &["x"], &labels, &config).unwrap();
        let rules = leaf_rules(&tree);
        assert_eq!(rules.len(), 4);
        // The class-1 leaf must describe a bounded interval, in one clause.
        let r1 = rules.iter().find(|r| r.class == 1).expect("class 1 leaf");
        assert_eq!(r1.description.len(), 1);
        assert!(
            r1.description[0].contains("<= x <"),
            "got {:?}",
            r1.description
        );
    }

    #[test]
    fn categorical_rules_extracted() {
        let cats = ["a", "a", "a", "a", "b", "b", "b", "b", "c", "c", "c", "c"];
        let labels = vec![0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1];
        let t: TableView = TableBuilder::new("t")
            .column("cat", Column::from_strs(cats.iter().map(|&s| Some(s))))
            .unwrap()
            .build()
            .unwrap()
            .into();
        let config = CartConfig {
            min_samples_split: 2,
            min_samples_leaf: 1,
            ..CartConfig::default()
        };
        let tree = DecisionTree::fit(&t, &["cat"], &labels, &config).unwrap();
        let rules = leaf_rules(&tree);
        assert_eq!(rules.len(), 2);
        for rule in &rules {
            let selected = rule.predicate.select_view(&t).unwrap();
            assert!(!selected.is_empty());
            assert_eq!(rule.description.len(), 1);
        }
    }

    #[test]
    fn single_leaf_tree_has_true_predicate() {
        let t: TableView = TableBuilder::new("t")
            .column("x", Column::dense_f64(vec![1.0, 2.0]))
            .unwrap()
            .build()
            .unwrap()
            .into();
        let tree = DecisionTree::fit(&t, &["x"], &[0, 0], &CartConfig::default()).unwrap();
        let rules = leaf_rules(&tree);
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].predicate, Predicate::True);
        assert!(rules[0].description.is_empty());
        assert_eq!(rules[0].predicate.select_view(&t).unwrap(), vec![0, 1]);
    }

    #[test]
    fn leaf_order_matches_assignments() {
        let (t, labels) = two_split_table();
        let tree = DecisionTree::fit(&t, &["x", "y"], &labels, &CartConfig::default()).unwrap();
        let rules = leaf_rules(&tree);
        let leaf_ids: Vec<usize> = rules.iter().map(|r| r.leaf).collect();
        assert_eq!(leaf_ids, (0..tree.n_leaves()).collect::<Vec<_>>());
    }
}
