//! Impurity measures for classification trees.

/// Impurity criterion for split scoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    /// Gini impurity `1 − Σ pᵢ²` (CART's default).
    Gini,
    /// Shannon entropy `−Σ pᵢ ln pᵢ`.
    Entropy,
}

impl Criterion {
    /// Impurity of a class-count vector (0 for empty or pure nodes).
    pub fn impurity(self, counts: &[usize]) -> f64 {
        let total: usize = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let total_f = total as f64;
        match self {
            Criterion::Gini => {
                let sum_sq: f64 = counts
                    .iter()
                    .map(|&c| {
                        let p = c as f64 / total_f;
                        p * p
                    })
                    .sum();
                1.0 - sum_sq
            }
            Criterion::Entropy => {
                let mut h = 0.0;
                for &c in counts {
                    if c > 0 {
                        let p = c as f64 / total_f;
                        h -= p * p.ln();
                    }
                }
                h
            }
        }
    }

    /// Weighted impurity decrease of a parent split into (left, right).
    ///
    /// `Δ = I(parent) − (nₗ/n)·I(left) − (nᵣ/n)·I(right)`; never negative
    /// for Gini/entropy up to floating-point noise.
    pub fn decrease(self, parent: &[usize], left: &[usize], right: &[usize]) -> f64 {
        let n: usize = parent.iter().sum();
        if n == 0 {
            return 0.0;
        }
        let nl: usize = left.iter().sum();
        let nr: usize = right.iter().sum();
        debug_assert_eq!(nl + nr, n, "split must partition the parent");
        let nf = n as f64;
        self.impurity(parent)
            - (nl as f64 / nf) * self.impurity(left)
            - (nr as f64 / nf) * self.impurity(right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_bounds() {
        assert_eq!(Criterion::Gini.impurity(&[10, 0]), 0.0);
        assert!((Criterion::Gini.impurity(&[5, 5]) - 0.5).abs() < 1e-12);
        assert!((Criterion::Gini.impurity(&[5, 5, 5, 5]) - 0.75).abs() < 1e-12);
        assert_eq!(Criterion::Gini.impurity(&[]), 0.0);
        assert_eq!(Criterion::Gini.impurity(&[0, 0]), 0.0);
    }

    #[test]
    fn entropy_bounds() {
        assert_eq!(Criterion::Entropy.impurity(&[7]), 0.0);
        assert!((Criterion::Entropy.impurity(&[5, 5]) - 2f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn perfect_split_decrease_equals_parent_impurity() {
        let parent = [10, 10];
        let d = Criterion::Gini.decrease(&parent, &[10, 0], &[0, 10]);
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn useless_split_zero_decrease() {
        let parent = [10, 10];
        let d = Criterion::Gini.decrease(&parent, &[5, 5], &[5, 5]);
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn decrease_nonnegative() {
        let parent = [8, 4, 3];
        let left = [6, 1, 0];
        let right = [2, 3, 3];
        for crit in [Criterion::Gini, Criterion::Entropy] {
            assert!(crit.decrease(&parent, &left, &right) >= -1e-12);
        }
    }
}
