//! # blaeu-tree — CART decision trees for cluster description
//!
//! The third stage of Blaeu's mapping pipeline (Figure 3 of the paper):
//! after PAM detects clusters, a CART tree is trained on the *original*
//! tuples with the cluster IDs as class labels. The tree approximates the
//! clustering with a hierarchy of interpretable single-column tests — the
//! data map. This crate implements the tree itself ([`DecisionTree`]),
//! rule extraction back to evaluable/SQL-renderable predicates
//! ([`leaf_rules`]) and fidelity measures ([`eval`]).
//!
//! ```
//! use blaeu_store::{Column, TableBuilder, TableView};
//! use blaeu_tree::{CartConfig, DecisionTree};
//!
//! let view: TableView = TableBuilder::new("t")
//!     .column("hours", Column::dense_f64(
//!         (0..40).map(|i| if i < 20 { 10.0 + i as f64 * 0.1 } else { 25.0 + i as f64 * 0.1 }).collect()))
//!     .unwrap()
//!     .build()
//!     .unwrap()
//!     .into();
//! let clusters: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
//!
//! let tree = DecisionTree::fit(&view, &["hours"], &clusters, &CartConfig::default()).unwrap();
//! assert_eq!(tree.n_leaves(), 2);
//! assert_eq!(tree.predict(&view).unwrap(), clusters);
//! ```

#![warn(missing_docs)]

pub mod cart;
pub mod eval;
pub mod impurity;
pub mod node;
pub mod prune;
pub mod rules;

pub use cart::{CartConfig, DecisionTree};
pub use eval::{accuracy, confusion_matrix, per_class_recall};
pub use impurity::Criterion;
pub use node::{Node, SplitRule};
pub use prune::{alpha_path, prune};
pub use rules::{leaf_rules, LeafRule, PathConstraints};
