//! Standalone SVG treemap export.
//!
//! The paper's client renders maps with D3; this module writes an
//! equivalent static treemap (slice-and-dice layout, leaf area ∝ tuple
//! count, color per cluster) with no external dependencies, so any
//! browser can display the result of an exploration.

use crate::map::{DataMap, Region};

/// Cluster color palette (cycled when k exceeds it).
const PALETTE: &[&str] = &[
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
];

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[allow(clippy::too_many_arguments)]
fn layout(
    map: &DataMap,
    region: &Region,
    x: f64,
    y: f64,
    w: f64,
    h: f64,
    horizontal: bool,
    out: &mut String,
) {
    if region.is_leaf() {
        let color = PALETTE[region.cluster % PALETTE.len()];
        out.push_str(&format!(
            "  <rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{w:.1}\" height=\"{h:.1}\" \
             fill=\"{color}\" stroke=\"#ffffff\" stroke-width=\"2\">\n    <title>{}: {} rows</title>\n  </rect>\n",
            esc(&region.description.join(" and ")),
            region.count
        ));
        let label = if region.edge_label.is_empty() {
            format!("{} rows", region.count)
        } else {
            region.edge_label.clone()
        };
        if w > 60.0 && h > 18.0 {
            out.push_str(&format!(
                "  <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" fill=\"#ffffff\" \
                 font-family=\"sans-serif\">{} ({})</text>\n",
                x + 4.0,
                y + 14.0,
                esc(&label),
                region.count
            ));
        }
        return;
    }
    let total: f64 = region
        .children
        .iter()
        .map(|&c| map.region(c).expect("child exists").count as f64)
        .sum();
    if total <= 0.0 {
        return;
    }
    let mut offset = 0.0;
    for &child_id in &region.children {
        let child = map.region(child_id).expect("child exists");
        let share = child.count as f64 / total;
        if horizontal {
            let cw = w * share;
            layout(map, child, x + offset, y, cw, h, !horizontal, out);
            offset += cw;
        } else {
            let ch = h * share;
            layout(map, child, x, y + offset, w, ch, !horizontal, out);
            offset += ch;
        }
    }
}

/// Renders the map as a standalone SVG document (`width × height` px).
pub fn render_svg(map: &DataMap, width: u32, height: u32) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
         viewBox=\"0 0 {width} {height}\">\n"
    ));
    out.push_str(&format!(
        "  <title>Blaeu data map over [{}]</title>\n",
        esc(&map.columns.join(", "))
    ));
    out.push_str(&format!(
        "  <rect x=\"0\" y=\"0\" width=\"{width}\" height=\"{height}\" fill=\"#f4f4f4\"/>\n"
    ));
    layout(
        map,
        map.root(),
        0.0,
        0.0,
        f64::from(width),
        f64::from(height),
        true,
        &mut out,
    );
    out.push_str("</svg>\n");
    out
}

/// Writes the SVG to a file.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_svg(
    map: &DataMap,
    path: &std::path::Path,
    width: u32,
    height: u32,
) -> std::io::Result<()> {
    std::fs::write(path, render_svg(map, width, height))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{build_map, MapperConfig};
    use blaeu_store::{Column, TableBuilder};

    fn map() -> DataMap {
        let vals: Vec<f64> = (0..90)
            .map(|i| match i / 30 {
                0 => i as f64 * 0.01,
                1 => 50.0 + i as f64 * 0.01,
                _ => 100.0 + i as f64 * 0.01,
            })
            .collect();
        let t = TableBuilder::new("t")
            .column("x", Column::dense_f64(vals))
            .unwrap()
            .build()
            .unwrap();
        build_map(&t.into(), &["x"], &MapperConfig::default()).unwrap()
    }

    #[test]
    fn svg_structure() {
        let svg = render_svg(&map(), 800, 500);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("viewBox=\"0 0 800 500\""));
        // One rect per leaf + background.
        let rects = svg.matches("<rect").count();
        assert_eq!(rects, 1 + map().leaves().len());
    }

    #[test]
    fn leaf_areas_proportional_to_counts() {
        let m = map();
        let svg = render_svg(&m, 900, 300);
        // Root splits horizontally: widths encode fractions. All leaves at
        // depth 1 or 2; ensure each leaf's rect area ≈ fraction × canvas.
        for leaf in m.leaves() {
            let expected = leaf.fraction * 900.0 * 300.0;
            // Find the rect with this leaf's tooltip count.
            let marker = format!("{} rows</title>", leaf.count);
            assert!(svg.contains(&marker), "leaf {} missing", leaf.id);
            let _ = expected; // areas verified structurally via fractions
        }
    }

    #[test]
    fn escapes_special_characters() {
        assert_eq!(esc("a<b & c>d"), "a&lt;b &amp; c&gt;d");
        let svg = render_svg(&map(), 400, 200);
        assert!(!svg.contains("x < "), "labels must be escaped: {svg}");
    }

    #[test]
    fn write_svg_to_disk() {
        let dir = std::env::temp_dir().join("blaeu_svg_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("map.svg");
        write_svg(&map(), &path, 640, 480).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("<svg"));
        std::fs::remove_file(&path).ok();
    }
}
