//! Map renderers: terminal text, standalone SVG, and JSON for web clients.

pub mod json;
pub mod svg;
pub mod text;

pub use json::{highlight_to_json, map_to_json, state_to_json, themes_to_json};
pub use svg::{render_svg, write_svg};
pub use text::{render_highlight, render_map, render_status, render_themes};
