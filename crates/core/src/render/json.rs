//! JSON export — the wire format a web client (the paper's NodeJS → D3
//! pipeline) would consume.

use serde_json::{json, Value};

use crate::explorer::{Explorer, Highlight};
use crate::map::{DataMap, Region};
use crate::themes::ThemeSet;

fn region_to_json(map: &DataMap, region: &Region) -> Value {
    json!({
        "id": region.id,
        "edge": region.edge_label,
        "description": region.description,
        "predicate": region.predicate.to_string(),
        "count": region.count,
        "fraction": region.fraction,
        "cluster": region.cluster,
        "leaf": region.leaf,
        "children": region.children.iter()
            .map(|&c| region_to_json(map, map.region(c).expect("child exists")))
            .collect::<Vec<_>>(),
    })
}

/// Serializes one region *flat* — children as an id list instead of
/// nested objects. Refinement delta lines use this: a delta patches
/// individual regions in place, so each changed region must stand alone
/// without dragging its whole subtree onto the wire again.
pub fn region_flat_json(region: &Region) -> Value {
    json!({
        "id": region.id,
        "parent": region.parent,
        "depth": region.depth,
        "edge": region.edge_label,
        "description": region.description,
        "predicate": region.predicate.to_string(),
        "count": region.count,
        "fraction": region.fraction,
        "cluster": region.cluster,
        "leaf": region.leaf,
        "children": region.children,
    })
}

/// Serializes a data map (nested region tree).
pub fn map_to_json(map: &DataMap) -> Value {
    json!({
        "columns": map.columns,
        "k": map.k,
        "silhouette": map.silhouette,
        "tree_fidelity": map.tree_fidelity,
        "sample_size": map.sample_size,
        "view_rows": map.view_rows,
        "assigned_rows": map.assigned_rows,
        "root": region_to_json(map, map.root()),
    })
}

/// Serializes a theme set.
pub fn themes_to_json(themes: &ThemeSet) -> Value {
    json!({
        "silhouette": themes.silhouette,
        "themes": themes.themes.iter().map(|t| json!({
            "name": t.name,
            "cohesion": t.cohesion,
            "columns": t.columns,
        })).collect::<Vec<_>>(),
    })
}

/// Serializes a highlight result.
pub fn highlight_to_json(highlight: &Highlight) -> Value {
    json!({
        "column": highlight.column,
        "regions": highlight.regions.iter().map(|r| json!({
            "region": r.region,
            "count": r.count,
            "examples": r.examples,
        })).collect::<Vec<_>>(),
    })
}

/// Serializes the explorer's current state (what the session tier would
/// push to the browser after each action).
pub fn state_to_json(explorer: &Explorer) -> Value {
    let state = explorer.current();
    json!({
        "table": explorer.base().name(),
        "rows": state.view.nrows(),
        "columns": state.columns,
        "breadcrumbs": state.breadcrumbs,
        "sql": explorer.sql(),
        "map": state.map.as_deref().map(map_to_json),
        "themes": themes_to_json(explorer.theme_set()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::ExplorerConfig;
    use blaeu_store::generate::{oecd, OecdConfig};

    fn explorer() -> Explorer {
        let (table, _) = oecd(&OecdConfig {
            nrows: 300,
            ncols: 24,
            missing_rate: 0.0,
            ..OecdConfig::default()
        })
        .unwrap();
        Explorer::open(table, ExplorerConfig::default()).unwrap()
    }

    #[test]
    fn map_json_roundtrips_counts() {
        let mut ex = explorer();
        ex.select_theme(0).unwrap();
        let v = map_to_json(ex.map().unwrap());
        assert_eq!(v["view_rows"], 300);
        assert_eq!(v["root"]["count"], 300);
        // Children counts sum to the root count.
        let children = v["root"]["children"].as_array().unwrap();
        if !children.is_empty() {
            let sum: u64 = children.iter().map(|c| c["count"].as_u64().unwrap()).sum();
            assert_eq!(sum, 300);
        }
        // Serializes to a string cleanly.
        let rendered = serde_json::to_string(&v).unwrap();
        assert!(rendered.contains("\"silhouette\""));
    }

    #[test]
    fn themes_json_lists_all() {
        let ex = explorer();
        let v = themes_to_json(ex.theme_set());
        assert_eq!(v["themes"].as_array().unwrap().len(), ex.themes().len());
    }

    #[test]
    fn state_json_before_and_after_theme() {
        let mut ex = explorer();
        let v = state_to_json(&ex);
        assert!(v["map"].is_null());
        assert_eq!(v["rows"], 300);

        ex.select_theme(0).unwrap();
        let v = state_to_json(&ex);
        assert!(v["map"].is_object());
        assert!(v["sql"].as_str().unwrap().starts_with("SELECT"));
    }

    #[test]
    fn highlight_json() {
        let mut ex = explorer();
        ex.select_theme(0).unwrap();
        let hl = ex.highlight("country").unwrap();
        let v = highlight_to_json(&hl);
        assert_eq!(v["column"], "country");
        assert!(!v["regions"].as_array().unwrap().is_empty());
    }
}
