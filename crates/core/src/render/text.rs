//! Terminal renderings — the stand-in for the D3 web client.
//!
//! [`render_themes`] reproduces the *theme view* (Figure 5): a numbered
//! list of column groups. [`render_map`] reproduces the *map view*
//! (Figures 1b–1d and 6): an indented region tree with count bars whose
//! length is proportional to the number of tuples (the paper's leaf area).

use blaeu_stats::ColumnSummary;

use crate::explorer::Highlight;
use crate::map::{DataMap, Region};
use crate::themes::ThemeSet;

/// Renders the theme list (theme view, Figure 5).
pub fn render_themes(themes: &ThemeSet, max_columns_shown: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Themes ({}; partition silhouette {:.2})\n",
        themes.themes.len(),
        themes.silhouette
    ));
    for (i, theme) in themes.themes.iter().enumerate() {
        let shown: Vec<&str> = theme
            .columns
            .iter()
            .take(max_columns_shown)
            .map(String::as_str)
            .collect();
        let ellipsis = if theme.columns.len() > max_columns_shown {
            format!(", … (+{})", theme.columns.len() - max_columns_shown)
        } else {
            String::new()
        };
        let bar = "█".repeat(1 + (theme.cohesion * 10.0) as usize);
        out.push_str(&format!(
            "  [{i}] {:<30} cohesion {bar} {:.2}\n      {}{}\n",
            theme.name,
            theme.cohesion,
            shown.join(", "),
            ellipsis
        ));
    }
    out
}

fn region_line(region: &Region, bar_width: usize) -> String {
    let bar = "█".repeat((region.fraction * bar_width as f64).round() as usize);
    let label = if region.edge_label.is_empty() {
        "(all rows)".to_owned()
    } else {
        region.edge_label.clone()
    };
    let marker = if region.is_leaf() {
        format!("cluster {}", region.cluster)
    } else {
        "·".to_owned()
    };
    format!(
        "#{:<3} {label:<44} {:>7} rows {bar:<20} [{marker}]",
        region.id, region.count
    )
}

fn render_region(map: &DataMap, id: usize, indent: usize, out: &mut String) {
    let region = map.region(id).expect("walked ids exist");
    out.push_str(&"  ".repeat(indent));
    out.push_str(&region_line(region, 20));
    out.push('\n');
    for &child in &region.children {
        render_region(map, child, indent + 1, out);
    }
}

/// Renders the data map (map view, Figures 1b and 6).
pub fn render_map(map: &DataMap) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Data map over [{}]\n  k = {} clusters, silhouette {:.2}, tree fidelity {:.2}, {} regions ({} rows, sample {})\n",
        map.columns.join(", "),
        map.k,
        map.silhouette,
        map.tree_fidelity,
        map.n_regions(),
        map.view_rows,
        map.sample_size,
    ));
    render_region(map, 0, 1, &mut out);
    out
}

/// Renders a highlight (the paper's left info panel, Figure 6).
pub fn render_highlight(highlight: &Highlight) -> String {
    let mut out = String::new();
    out.push_str(&format!("Highlight: \"{}\"\n", highlight.column));
    for r in &highlight.regions {
        out.push_str(&format!("  region #{} ({} rows): ", r.region, r.count));
        match &r.summary {
            ColumnSummary::Numeric(s) => {
                if s.count == 0 {
                    out.push_str("all NULL\n");
                } else {
                    out.push_str(&format!(
                        "mean {:.2}, sd {:.2}, median {:.2}, range [{:.2}, {:.2}]\n",
                        s.mean, s.std, s.median, s.min, s.max
                    ));
                }
            }
            ColumnSummary::Categorical(s) => {
                let tops: Vec<String> = s
                    .top
                    .iter()
                    .map(|(label, count)| format!("{label} ({count})"))
                    .collect();
                out.push_str(&format!("{} distinct: {}\n", s.distinct, tops.join(", ")));
            }
        }
    }
    out
}

/// Renders breadcrumbs + SQL as a compact status footer.
pub fn render_status(breadcrumbs: &[String], sql: &str) -> String {
    let mut out = String::new();
    out.push_str("Trail:\n");
    for (i, crumb) in breadcrumbs.iter().enumerate() {
        out.push_str(&format!("  {}{}\n", "  ".repeat(i), crumb));
    }
    out.push_str(&format!("Query: {sql}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::{Explorer, ExplorerConfig};
    use blaeu_store::generate::{oecd, OecdConfig};

    fn explorer() -> Explorer {
        let (table, _) = oecd(&OecdConfig {
            nrows: 300,
            ncols: 24,
            missing_rate: 0.0,
            ..OecdConfig::default()
        })
        .unwrap();
        Explorer::open(table, ExplorerConfig::default()).unwrap()
    }

    #[test]
    fn themes_rendering_lists_all() {
        let ex = explorer();
        let text = render_themes(ex.theme_set(), 4);
        assert!(text.starts_with("Themes ("));
        for (i, _) in ex.themes().iter().enumerate() {
            assert!(text.contains(&format!("[{i}]")));
        }
        assert!(text.contains("cohesion"));
    }

    #[test]
    fn map_rendering_shows_hierarchy() {
        let mut ex = explorer();
        ex.select_theme(0).unwrap();
        let text = render_map(ex.map().unwrap());
        assert!(text.contains("Data map over ["));
        assert!(text.contains("(all rows)"));
        assert!(text.contains("cluster"));
        assert!(text.contains("rows"));
        // Indentation grows with depth.
        assert!(text.lines().count() > ex.map().unwrap().n_regions());
    }

    #[test]
    fn highlight_rendering() {
        let mut ex = explorer();
        ex.select_theme(0).unwrap();
        let hl = ex.highlight("country").unwrap();
        let text = render_highlight(&hl);
        assert!(text.contains("Highlight: \"country\""));
        assert!(text.contains("distinct"));

        let col = ex.current().columns[0].clone();
        let hl = ex.highlight(&col).unwrap();
        let text = render_highlight(&hl);
        assert!(text.contains("mean"));
    }

    #[test]
    fn status_footer() {
        let mut ex = explorer();
        ex.select_theme(0).unwrap();
        let text = render_status(ex.breadcrumbs(), &ex.sql());
        assert!(text.contains("Trail:"));
        assert!(text.contains("Query: SELECT"));
    }
}
