//! # blaeu-core — the Blaeu exploration engine
//!
//! A from-scratch reproduction of *Blaeu: Mapping and Navigating Large
//! Tables with Cluster Analysis* (Sellam, Cijvat, Koopmanschap, Kersten —
//! VLDB 2016). Blaeu guides casual users through large tables with a
//! double cluster analysis:
//!
//! 1. **Themes** (vertical clustering): columns are grouped by mutual
//!    information into groups of mutually dependent columns
//!    ([`detect_themes`], [`DependencyGraph`]).
//! 2. **Data maps** (horizontal clustering): for the chosen theme, rows
//!    are sampled, preprocessed into vectors, clustered with PAM/CLARA
//!    (k chosen by the silhouette coefficient) and described by a CART
//!    decision tree — an interactive hierarchy of interpretable regions
//!    ([`build_map`], [`DataMap`]).
//!
//! The [`Explorer`] exposes the paper's four navigational actions — zoom,
//! highlight, project, rollback — and renders the implicit Select-Project
//! query as SQL. [`SessionManager`] hosts concurrent sessions (the
//! paper's NodeJS tier); [`render`] holds terminal/SVG/JSON renderers
//! (the paper's D3 client).
//!
//! ```
//! use blaeu_core::{Explorer, ExplorerConfig};
//! use blaeu_store::generate::{oecd, OecdConfig};
//!
//! let (table, _) = oecd(&OecdConfig { nrows: 300, ncols: 24, ..OecdConfig::default() }).unwrap();
//! let mut explorer = Explorer::open(table, ExplorerConfig::default()).unwrap();
//!
//! // Pick a theme, build its map, zoom into the largest region.
//! let map = explorer.select_theme(0).unwrap();
//! let biggest = map.leaves().iter().max_by_key(|r| r.count).unwrap().id;
//! explorer.zoom(biggest).unwrap();
//! println!("{}", explorer.sql());
//! explorer.rollback().unwrap();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod command;
pub mod depgraph;
pub mod error;
pub mod explorer;
pub mod map;
pub mod mapper;
pub mod preprocess;
pub mod progressive;
pub mod render;
pub mod session;
pub mod sketch;
pub mod themes;

pub use cache::{AnalysisMemo, MapKey, ThemesKey, ViewFingerprint};
pub use command::{Command, Response};
pub use depgraph::DependencyGraph;
pub use error::{BlaeuError, Result};
pub use explorer::{
    Explorer, ExplorerConfig, ExplorerState, Highlight, RegionDetail, RegionHighlight,
};
pub use map::{DataMap, Region};
pub use mapper::{build_map, KChoice, MapperConfig};
pub use preprocess::{
    analyzable_columns, preprocess, FeatureInfo, FeatureMatrix, MetricChoice, MissingPolicy,
    PreprocessConfig,
};
pub use progressive::{
    level_schedule, ProgressiveMap, RefinementDelta, FIRST_LEVEL, LADDER_FACTOR,
};
pub use session::{SessionId, SessionManager};
pub use sketch::{SketchOp, SketchPartial, SketchPlan, SketchResult};
pub use themes::{detect_themes, detect_themes_on, Theme, ThemeConfig, ThemeSet};
