//! Progressive map refinement: first answer in milliseconds, deltas
//! until exact.
//!
//! Today's `Command::Map` answers only after the full analysis (sample →
//! preprocess → CLARA/PAM → CART) completes, so interactive p99 is gated
//! by the slowest exact run. This module turns that one build into a
//! deterministic *ladder* of builds over growing sample sizes:
//!
//! * [`level_schedule`] is a **pure function of the row count and the
//!   configured target sample** — no clocks, no adaptivity. Level 0 is
//!   sized ([`FIRST_LEVEL`] rows) to resolve in single-digit
//!   milliseconds; each rung multiplies the sample by
//!   [`LADDER_FACTOR`]; the final rung runs the session's `MapperConfig`
//!   **verbatim**, so its map is bit-for-bit the exact `Command::Map`
//!   result (and shares its analysis-cache key).
//! * The samples of successive rungs are **nested**: every sample is a
//!   prefix of one seeded shuffle stream
//!   ([`prefix_sample`](blaeu_store::prefix_sample)), so a coarser map
//!   is a genuine preview of the finer one, not an unrelated
//!   clustering — and drawing a small rung costs O(sample), not O(rows).
//! * Intermediate rungs are **preview maps**: region counts are scaled
//!   estimates from `sample × PREVIEW_FACTOR` routed rows instead of a
//!   full-view pass, which is what keeps a rung's cost proportional to
//!   its sample. Only the final rung (and any plain `Command::Map`)
//!   pays the exact full-view assignment.
//! * [`ProgressiveMap`] is the rung driver: it hands out the per-level
//!   `MapperConfig` (each intermediate level renders a distinct
//!   `Debug`, hence a distinct [`MapKey`](crate::cache::MapKey) — the
//!   `(ViewFingerprint, level)` keying the cache needs comes for free)
//!   and folds each completed map into a typed [`RefinementDelta`]:
//!   which regions changed, level metadata, and the per-level map
//!   digest. The final delta's digest equals the exact
//!   `Response::Map` digest verbatim — the anchor the determinism
//!   proptests pin.

use std::sync::Arc;

use crate::command::Response;
use crate::error::{BlaeuError, Result};
use crate::map::DataMap;
use crate::mapper::MapperConfig;

/// Sample size of level 0 — small enough that PAM plus a k sweep
/// resolves in single-digit milliseconds (the sweep is quadratic in the
/// sample, so 64 points price in well under a millisecond), large enough
/// that the coarse map usually finds the same major clusters the exact
/// map will.
pub const FIRST_LEVEL: usize = 64;

/// Sample-size multiplier between rungs. 4× keeps the ladder short
/// (four rungs cover 64 → 2048) while the total work of all
/// intermediate rungs stays a fraction of the exact build's.
pub const LADDER_FACTOR: usize = 4;

/// Intermediate rungs route `sample_size × PREVIEW_FACTOR` rows through
/// the fitted tree instead of the whole view
/// ([`MapperConfig::assign_preview`]) — enough rows that region counts
/// are tight estimates, without a full-view pass per rung. The final
/// rung always assigns exactly.
pub const PREVIEW_FACTOR: usize = 16;

/// The deterministic sample-size ladder for a view of `nrows` rows and
/// a configured `target_sample`. A **pure function** of its arguments:
/// intermediate sizes are `FIRST_LEVEL * LADDER_FACTOR^i` while they
/// stay below both the target and the row count, and the last entry is
/// always `target_sample` itself — the exact configuration, untouched.
/// Never empty; tiny views (or targets at or below [`FIRST_LEVEL`])
/// collapse to a single exact level.
pub fn level_schedule(nrows: usize, target_sample: usize) -> Vec<usize> {
    let target = target_sample.max(1);
    // Intermediate rungs below the row count are real refinements;
    // beyond it every level would resample the same clamped view.
    let cap = target.min(nrows.max(1));
    let mut schedule = Vec::new();
    let mut size = FIRST_LEVEL;
    while size < cap {
        schedule.push(size);
        size = size.saturating_mul(LADDER_FACTOR);
    }
    schedule.push(target);
    schedule
}

/// What one completed refinement level changed, plus the metadata a
/// client needs to render (or skip) the update.
#[derive(Debug, Clone, PartialEq)]
pub struct RefinementDelta {
    /// Index of the completed level (0 = the coarse first answer).
    pub level: usize,
    /// Total number of levels in the ladder.
    pub levels: usize,
    /// Scheduled sample size of this level (the exact target for the
    /// final level; the map itself may clamp to the view's row count).
    pub sample_size: usize,
    /// True for the last rung — the map is now the exact result.
    pub final_level: bool,
    /// Ids of regions that differ from the previous level's map (all
    /// regions at level 0). Region ids are stable pre-order indices, so
    /// an id appears here if its region was added, removed, or changed.
    pub changed_regions: Vec<usize>,
    /// Region count of this level's map.
    pub n_regions: usize,
    /// [`Response::digest`] of `Response::Map` over this level's map.
    /// For the final level this equals the exact `Command::Map` response
    /// digest verbatim.
    pub map_digest: u64,
}

/// Driver state of one in-flight progressive ladder: the schedule, the
/// cursor, and the previous level's map (the delta base).
#[derive(Debug, Clone)]
pub struct ProgressiveMap {
    schedule: Vec<usize>,
    base: MapperConfig,
    next: usize,
    prev: Option<Arc<DataMap>>,
}

impl ProgressiveMap {
    /// Plans the ladder for a view of `nrows` rows under the session's
    /// mapper configuration (whose `sample_size` is the exact target).
    pub fn new(nrows: usize, base: &MapperConfig) -> Self {
        ProgressiveMap {
            schedule: level_schedule(nrows, base.sample_size),
            base: base.clone(),
            next: 0,
            prev: None,
        }
    }

    /// The planned sample size per level.
    pub fn schedule(&self) -> &[usize] {
        &self.schedule
    }

    /// Total number of levels.
    pub fn levels(&self) -> usize {
        self.schedule.len()
    }

    /// The next level to run, or `None` when the ladder is exhausted.
    pub fn next_level(&self) -> Option<usize> {
        (self.next < self.schedule.len()).then_some(self.next)
    }

    /// True once the final (exact) level has completed.
    pub fn is_finished(&self) -> bool {
        self.next >= self.schedule.len()
    }

    /// The `MapperConfig` for `level`. Intermediate levels override only
    /// `sample_size` and `assign_preview` (set to `size ×
    /// [`PREVIEW_FACTOR`]`, so counts are estimates from a routed
    /// subset); the **final level returns the base configuration
    /// verbatim**, which is what makes its map — and its analysis-cache
    /// key — identical to a plain `Command::Map` of the same state.
    ///
    /// # Errors
    /// Returns [`BlaeuError::Invalid`] for levels outside the schedule.
    pub fn config_for(&self, level: usize) -> Result<MapperConfig> {
        let Some(&size) = self.schedule.get(level) else {
            return Err(BlaeuError::Invalid(format!(
                "refinement level {level} outside the {}-level schedule",
                self.schedule.len()
            )));
        };
        if level + 1 == self.schedule.len() {
            Ok(self.base.clone())
        } else {
            let mut config = self.base.with_sample_size(size);
            config.assign_preview = size.saturating_mul(PREVIEW_FACTOR);
            Ok(config)
        }
    }

    /// Folds the map built for the next level into the ladder and
    /// returns its [`RefinementDelta`]. Must be called with the level
    /// [`ProgressiveMap::next_level`] announced.
    ///
    /// # Errors
    /// Returns [`BlaeuError::Invalid`] when `level` is not the expected
    /// next rung (an out-of-order or duplicate refinement).
    pub fn complete(&mut self, level: usize, map: &Arc<DataMap>) -> Result<RefinementDelta> {
        if self.next_level() != Some(level) {
            return Err(BlaeuError::Invalid(format!(
                "refinement level {level} out of order (expected {:?})",
                self.next_level()
            )));
        }
        let delta = RefinementDelta {
            level,
            levels: self.schedule.len(),
            sample_size: self.schedule[level],
            final_level: level + 1 == self.schedule.len(),
            changed_regions: map.changed_region_ids(self.prev.as_deref()),
            n_regions: map.n_regions(),
            map_digest: Response::Map(Arc::clone(map)).digest(),
        };
        self.prev = Some(Arc::clone(map));
        self.next += 1;
        Ok(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::build_map;
    use blaeu_store::{Column, TableBuilder, TableView};

    #[test]
    fn schedule_is_pure_and_ends_at_target() {
        assert_eq!(level_schedule(50_000, 2000), vec![64, 256, 1024, 2000]);
        assert_eq!(level_schedule(50_000, 2048), vec![64, 256, 1024, 2048]);
        assert_eq!(
            level_schedule(50_000, 10_000),
            vec![64, 256, 1024, 4096, 10_000]
        );
        assert_eq!(level_schedule(50_000, 100), vec![64, 100]);
        // Tiny views and tiny targets collapse to a single exact level.
        assert_eq!(level_schedule(60, 2000), vec![2000]);
        assert_eq!(level_schedule(40, 2000), vec![2000]);
        assert_eq!(level_schedule(0, 2000), vec![2000]);
        assert_eq!(level_schedule(50_000, 0), vec![1]);
        // Determinism: same inputs, same ladder.
        assert_eq!(level_schedule(50_000, 2000), level_schedule(50_000, 2000));
    }

    #[test]
    fn final_config_is_the_base_verbatim() {
        let base = MapperConfig::default();
        let ladder = ProgressiveMap::new(50_000, &base);
        let last = ladder.levels() - 1;
        assert_eq!(
            format!("{:?}", ladder.config_for(last).unwrap()),
            format!("{base:?}")
        );
        // Intermediate configs differ only in sample size — and render
        // distinct Debug forms (distinct cache keys).
        let first = ladder.config_for(0).unwrap();
        assert_eq!(first.sample_size, FIRST_LEVEL);
        assert_ne!(format!("{first:?}"), format!("{base:?}"));
        assert!(ladder.config_for(ladder.levels()).is_err());
    }

    #[test]
    fn ladder_completes_in_order_and_diffs_regions() {
        let vals: Vec<f64> = (0..4000)
            .map(|i| {
                if i % 2 == 0 {
                    i as f64 * 0.01
                } else {
                    500.0 + i as f64 * 0.01
                }
            })
            .collect();
        let t = TableBuilder::new("t")
            .column("x", Column::dense_f64(vals))
            .unwrap()
            .build()
            .unwrap();
        let view = TableView::from(t);
        let base = MapperConfig::default();
        let mut ladder = ProgressiveMap::new(view.nrows(), &base);
        assert!(ladder.levels() >= 2);
        let mut last_delta = None;
        while let Some(level) = ladder.next_level() {
            let config = ladder.config_for(level).unwrap();
            let map = Arc::new(build_map(&view, &["x"], &config).unwrap());
            // Out-of-order completion is rejected without advancing.
            assert!(ladder.clone().complete(level + 1, &map).is_err());
            let delta = ladder.complete(level, &map).unwrap();
            assert_eq!(delta.level, level);
            assert_eq!(delta.levels, ladder.levels());
            if level == 0 {
                // Level 0 has no base: every region is "changed".
                assert_eq!(delta.changed_regions.len(), delta.n_regions);
            }
            assert_eq!(delta.map_digest, Response::Map(map).digest());
            last_delta = Some(delta);
        }
        let last = last_delta.unwrap();
        assert!(last.final_level);
        assert!(ladder.is_finished());

        // The final rung is bit-for-bit the exact build.
        let exact = Arc::new(build_map(&view, &["x"], &base).unwrap());
        assert_eq!(last.map_digest, Response::Map(exact).digest());
    }
}
