//! The data map model (Section 2 of the paper).
//!
//! A [`DataMap`] is "an interactive visualization of the clusters in the
//! query results": a hierarchy of [`Region`]s produced by the decision
//! tree, each described by interpretable predicates, sized by tuple count
//! (leaf area in the paper's figures), and usable as the target of the
//! zoom / highlight actions.

use blaeu_store::Predicate;
use blaeu_tree::DecisionTree;

use crate::error::{BlaeuError, Result};

/// One region of a data map.
#[derive(Debug, Clone)]
pub struct Region {
    /// Region id (root = 0, then depth-first pre-order).
    pub id: usize,
    /// Parent region id (`None` for the root).
    pub parent: Option<usize>,
    /// Child region ids (empty for leaves).
    pub children: Vec<usize>,
    /// Depth in the map (root = 0).
    pub depth: usize,
    /// Split condition on the edge from the parent (empty for the root),
    /// e.g. `"avg income < 22"`.
    pub edge_label: String,
    /// Merged predicate for the full path from the root of the map.
    pub predicate: Predicate,
    /// Human-readable clauses of the full path (one per column).
    pub description: Vec<String>,
    /// Rows of the active view inside this region.
    pub count: usize,
    /// `count` relative to the view size.
    pub fraction: f64,
    /// Majority cluster id at this region.
    pub cluster: usize,
    /// Leaf index (left-to-right) when this region is a leaf.
    pub leaf: Option<usize>,
}

impl Region {
    /// True for terminal regions.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// A complete data map over an active selection.
#[derive(Debug, Clone)]
pub struct DataMap {
    /// Columns the map was computed on (the active theme).
    pub columns: Vec<String>,
    /// Number of clusters the partition used.
    pub k: usize,
    /// Average silhouette of the partition (on the sample).
    pub silhouette: f64,
    /// Rows sampled to compute the clustering.
    pub sample_size: usize,
    /// Rows of the view the map covers.
    pub view_rows: usize,
    /// Rows actually routed through the tree to produce region counts and
    /// memberships. Equal to `view_rows` for exact maps; smaller for
    /// preview maps (intermediate progressive rungs), whose counts are
    /// scaled estimates from this many assigned rows.
    pub assigned_rows: usize,
    /// Fidelity of the tree to the raw clustering on the sample
    /// (fraction of sample rows whose tree class matches their cluster).
    pub tree_fidelity: f64,
    /// View-row indices of the cluster medoids (representative tuples).
    pub medoid_rows: Vec<u32>,
    /// The regions, `regions[0]` being the root.
    regions: Vec<Region>,
    /// Per-leaf view-row memberships, indexed by leaf index.
    leaf_rows: Vec<Vec<u32>>,
    /// The underlying decision tree.
    tree: DecisionTree,
}

impl DataMap {
    /// Assembles a map (used by the mapper; not part of the public
    /// exploration API).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        columns: Vec<String>,
        k: usize,
        silhouette: f64,
        sample_size: usize,
        view_rows: usize,
        assigned_rows: usize,
        tree_fidelity: f64,
        medoid_rows: Vec<u32>,
        regions: Vec<Region>,
        leaf_rows: Vec<Vec<u32>>,
        tree: DecisionTree,
    ) -> Self {
        debug_assert!(!regions.is_empty(), "a map always has a root region");
        DataMap {
            columns,
            k,
            silhouette,
            sample_size,
            view_rows,
            assigned_rows,
            tree_fidelity,
            medoid_rows,
            regions,
            leaf_rows,
            tree,
        }
    }

    /// The root region.
    pub fn root(&self) -> &Region {
        &self.regions[0]
    }

    /// All regions in id order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Region by id.
    ///
    /// # Errors
    /// Returns [`BlaeuError::UnknownRegion`] for bad ids.
    pub fn region(&self, id: usize) -> Result<&Region> {
        self.regions.get(id).ok_or(BlaeuError::UnknownRegion(id))
    }

    /// Leaf regions, left-to-right.
    pub fn leaves(&self) -> Vec<&Region> {
        let mut leaves: Vec<&Region> = self.regions.iter().filter(|r| r.is_leaf()).collect();
        leaves.sort_by_key(|r| r.leaf);
        leaves
    }

    /// Number of regions (internal + leaves).
    pub fn n_regions(&self) -> usize {
        self.regions.len()
    }

    /// The decision tree behind the map.
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }

    /// The quantized query space: one Select-Project query per region
    /// (projection = the map's columns, selection = the region's path
    /// predicate). "Blaeu quantizes the query space: to refine their
    /// queries, the users need only to consider a few discrete
    /// alternatives" — this is that set of alternatives, explicit.
    pub fn all_queries(&self) -> Vec<(usize, blaeu_store::SelectProject)> {
        self.regions
            .iter()
            .map(|r| {
                let q = blaeu_store::SelectProject::filtered(r.predicate.clone())
                    .project(self.columns.clone());
                (r.id, q)
            })
            .collect()
    }

    /// Ids of regions that differ from `prev` (every id when `prev` is
    /// `None`). Region ids are pre-order indices, so the comparison is
    /// positional: an id is "changed" when its region was added, removed,
    /// or renders a different `Debug` form — the same bit-exact float
    /// discipline [`Response::digest`](crate::Response::digest) uses, so
    /// an unchanged region here is unchanged in the digest sense too.
    pub fn changed_region_ids(&self, prev: Option<&DataMap>) -> Vec<usize> {
        let Some(prev) = prev else {
            return (0..self.regions.len()).collect();
        };
        let longest = self.regions.len().max(prev.regions.len());
        (0..longest)
            .filter(|&id| match (self.regions.get(id), prev.regions.get(id)) {
                (Some(a), Some(b)) => format!("{a:?}") != format!("{b:?}"),
                _ => true,
            })
            .collect()
    }

    /// True when region counts and memberships were estimated from a
    /// routed subset of the view rather than the full view.
    pub fn is_preview(&self) -> bool {
        self.assigned_rows < self.view_rows
    }

    /// Exact view-row indices inside a region, regardless of whether this
    /// map is a preview. Exact maps answer from stored memberships; for
    /// preview maps the full view is re-routed through the tree, so that
    /// actions which *select data* (zoom) never silently operate on the
    /// preview subset.
    ///
    /// # Errors
    /// Returns [`BlaeuError::UnknownRegion`] for bad ids, or a store error
    /// when `view` lacks the map's feature columns.
    pub fn exact_rows_of(&self, view: &blaeu_store::TableView, id: usize) -> Result<Vec<u32>> {
        if !self.is_preview() {
            return self.rows_of(id);
        }
        let region = self.region(id)?;
        // Leaves under this region, by left-to-right leaf index.
        let mut wanted = vec![false; self.leaf_rows.len()];
        let mut stack = vec![region];
        while let Some(r) = stack.pop() {
            if let Some(leaf) = r.leaf {
                wanted[leaf] = true;
            } else {
                for &c in &r.children {
                    stack.push(&self.regions[c]);
                }
            }
        }
        let assignments = self.tree.leaf_assignments(view)?;
        Ok(assignments
            .iter()
            .enumerate()
            .filter(|&(_, &leaf)| wanted[leaf])
            .map(|(row, _)| row as u32)
            .collect())
    }

    /// View-row indices inside a region (leaf rows are stored; internal
    /// regions concatenate their descendant leaves, ascending). For
    /// preview maps these are the routed preview rows only — use
    /// [`DataMap::exact_rows_of`] when the result selects data.
    ///
    /// # Errors
    /// Returns [`BlaeuError::UnknownRegion`] for bad ids.
    pub fn rows_of(&self, id: usize) -> Result<Vec<u32>> {
        let region = self.region(id)?;
        if let Some(leaf) = region.leaf {
            return Ok(self.leaf_rows[leaf].clone());
        }
        let mut out = Vec::with_capacity(region.count);
        let mut stack = vec![region];
        while let Some(r) = stack.pop() {
            if let Some(leaf) = r.leaf {
                out.extend_from_slice(&self.leaf_rows[leaf]);
            } else {
                for &c in &r.children {
                    stack.push(&self.regions[c]);
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{build_map, MapperConfig};
    use blaeu_store::{Column, TableBuilder};

    fn toy_map() -> DataMap {
        // Two clear clusters on one column.
        let vals: Vec<f64> = (0..60)
            .map(|i| {
                if i < 30 {
                    i as f64 * 0.01
                } else {
                    100.0 + i as f64 * 0.01
                }
            })
            .collect();
        let t = TableBuilder::new("t")
            .column("x", Column::dense_f64(vals))
            .unwrap()
            .build()
            .unwrap();
        build_map(&t.into(), &["x"], &MapperConfig::default()).unwrap()
    }

    #[test]
    fn root_covers_everything() {
        let map = toy_map();
        let root = map.root();
        assert_eq!(root.id, 0);
        assert_eq!(root.count, 60);
        assert!((root.fraction - 1.0).abs() < 1e-12);
        assert!(root.parent.is_none());
        assert_eq!(root.edge_label, "");
    }

    #[test]
    fn leaves_partition_view() {
        let map = toy_map();
        let leaves = map.leaves();
        assert_eq!(leaves.len(), 2);
        let total: usize = leaves.iter().map(|r| r.count).sum();
        assert_eq!(total, 60);
        // Row sets are disjoint and complete.
        let mut all_rows: Vec<u32> = Vec::new();
        for leaf in &leaves {
            all_rows.extend(map.rows_of(leaf.id).unwrap());
        }
        all_rows.sort_unstable();
        assert_eq!(all_rows, (0..60).collect::<Vec<u32>>());
    }

    #[test]
    fn internal_rows_concatenate_leaves() {
        let map = toy_map();
        let root_rows = map.rows_of(0).unwrap();
        assert_eq!(root_rows.len(), 60);
        assert!(root_rows.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn unknown_region_errors() {
        let map = toy_map();
        assert!(matches!(
            map.region(9999),
            Err(BlaeuError::UnknownRegion(9999))
        ));
        assert!(map.rows_of(9999).is_err());
    }

    #[test]
    fn parent_child_links_consistent() {
        let map = toy_map();
        for region in map.regions() {
            for &child in &region.children {
                assert_eq!(map.region(child).unwrap().parent, Some(region.id));
                assert_eq!(map.region(child).unwrap().depth, region.depth + 1);
            }
            if let Some(parent) = region.parent {
                assert!(map.region(parent).unwrap().children.contains(&region.id));
            }
        }
    }

    #[test]
    fn all_queries_enumerate_regions() {
        let map = toy_map();
        let queries = map.all_queries();
        assert_eq!(queries.len(), map.n_regions());
        // The root query selects everything; leaf queries partition.
        let (root_id, root_q) = &queries[0];
        assert_eq!(*root_id, 0);
        let sql = root_q.to_sql("t");
        assert!(sql.contains("\"x\""), "{sql}");
        for (id, q) in &queries {
            let region = map.region(*id).unwrap();
            if region.is_leaf() {
                assert!(
                    q.to_sql("t").contains("WHERE"),
                    "leaf queries carry predicates: {}",
                    q.to_sql("t")
                );
            }
        }
    }

    #[test]
    fn changed_region_ids_diff_positionally() {
        let map = toy_map();
        // No base: every region counts as changed.
        assert_eq!(
            map.changed_region_ids(None),
            (0..map.n_regions()).collect::<Vec<usize>>()
        );
        // Identical maps: nothing changed.
        assert!(map.changed_region_ids(Some(&map)).is_empty());
        // A coarser map (fewer regions) differs at the removed ids.
        let smaller = build_map(
            &TableBuilder::new("one")
                .column("x", Column::dense_f64((0..60).map(f64::from).collect()))
                .unwrap()
                .build()
                .unwrap()
                .into(),
            &["x"],
            &MapperConfig {
                k: crate::mapper::KChoice::Fixed(1),
                ..MapperConfig::default()
            },
        )
        .unwrap();
        let changed = map.changed_region_ids(Some(&smaller));
        assert_eq!(changed.len(), map.n_regions().max(smaller.n_regions()));
    }

    #[test]
    fn edge_labels_describe_split() {
        let map = toy_map();
        let root = map.root();
        assert_eq!(root.children.len(), 2);
        let left = map.region(root.children[0]).unwrap();
        let right = map.region(root.children[1]).unwrap();
        assert!(left.edge_label.contains('<'), "{}", left.edge_label);
        assert!(right.edge_label.contains(">="), "{}", right.edge_label);
    }
}
