//! Analysis memoization hooks — the contract between the explorer and an
//! external result cache (the server tier's `AnalysisCache`).
//!
//! The expensive analyses Blaeu runs — theme detection (the pairwise
//! dependency matrix + column clustering) and map construction (sample →
//! preprocess → CLARA/PAM → CART) — are pure functions of three things:
//! the underlying table, the view's row selection, and the configuration.
//! A million users zooming into the same region of the same table
//! therefore re-run *identical* computations. The [`AnalysisMemo`] trait
//! lets a caching layer intercept those computations without the core
//! knowing anything about eviction policy; [`MapKey`] / [`ThemesKey`]
//! are the exact (collision-free) identities the cache indexes by.
//!
//! ## Why the keys are exact, not hashed
//!
//! A memoized result must be a *pure win*: a hit has to be bit-identical
//! to what a miss would have computed. A 64-bit fingerprint cannot
//! guarantee that, so the keys compare for real:
//!
//! * **table identity** — the pointer of the shared [`Arc<Table>`],
//!   paired with a [`Weak`] handle. While an entry's `Weak` exists, the
//!   allocation cannot be reused, so pointer equality against a *live*
//!   probe is sound; once every `Arc` is gone the entry turns dead
//!   ([`ViewFingerprint::is_live`]) and the cache evicts it.
//! * **row selection** — the view's shared selection handle. Equality
//!   short-circuits on `Arc::ptr_eq` (the common case: the same zoom
//!   state probed twice) and falls back to content comparison.
//! * **configuration** — the `Debug` rendering of the config struct.
//!   Rust's `Debug` for `f64` is shortest-round-trip, so two configs
//!   render identically iff every field (including floats) is identical.

use std::hash::{Hash, Hasher};
use std::sync::{Arc, Weak};

use blaeu_store::{Table, TableView};

use crate::error::Result;
use crate::map::DataMap;
use crate::themes::ThemeSet;

/// Exact identity of a view: which table, which rows.
#[derive(Debug, Clone)]
pub struct ViewFingerprint {
    /// Identity handle: keeps the table's allocation pinned (not its
    /// data) so `table_ptr` cannot be recycled while this key exists.
    table: Weak<Table>,
    table_ptr: usize,
    rows: Option<Arc<Vec<u32>>>,
}

impl ViewFingerprint {
    /// Fingerprint of a view (cheap: two `Arc` bumps, no data copied).
    pub fn of(view: &TableView) -> Self {
        ViewFingerprint {
            table: Arc::downgrade(view.table()),
            table_ptr: Arc::as_ptr(view.table()) as usize,
            rows: view.rows_shared(),
        }
    }

    /// True while the fingerprinted table is still alive somewhere. Dead
    /// fingerprints can never match a live probe; caches should evict
    /// entries whose key stopped being live.
    pub fn is_live(&self) -> bool {
        self.table.strong_count() > 0
    }

    /// Number of rows the selection pins (`None` = identity view).
    pub fn selected_rows(&self) -> Option<usize> {
        self.rows.as_ref().map(|r| r.len())
    }
}

impl PartialEq for ViewFingerprint {
    fn eq(&self, other: &Self) -> bool {
        if self.table_ptr != other.table_ptr {
            return false;
        }
        match (&self.rows, &other.rows) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b) || a == b,
            _ => false,
        }
    }
}

impl Eq for ViewFingerprint {}

impl Hash for ViewFingerprint {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.table_ptr.hash(state);
        match &self.rows {
            None => state.write_u8(0),
            Some(rows) => {
                // Hash a bounded sample (length + a stride of elements),
                // NOT the whole selection: a probe must stay O(1) even
                // for million-row zooms. Exactness lives in Eq, which
                // compares full contents — Hash only has to be
                // consistent with it, and any subset of the content is.
                state.write_u8(1);
                rows.len().hash(state);
                let stride = (rows.len() / 16).max(1);
                for &r in rows.iter().step_by(stride).take(16) {
                    r.hash(state);
                }
                if let Some(&last) = rows.last() {
                    last.hash(state);
                }
            }
        }
    }
}

/// Identity of one map construction: view × columns × mapper config.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MapKey {
    /// The view the map covers.
    pub view: ViewFingerprint,
    /// The active columns (the theme), in order.
    pub columns: Vec<String>,
    /// Exact rendering of the `MapperConfig` (see module docs).
    pub config: String,
}

impl MapKey {
    /// Key for building a map of `columns` over `view` under `config`.
    pub fn new(view: &TableView, columns: &[&str], config: &crate::mapper::MapperConfig) -> Self {
        MapKey {
            view: ViewFingerprint::of(view),
            columns: columns.iter().map(|&c| c.to_owned()).collect(),
            config: format!("{config:?}"),
        }
    }
}

/// Identity of one theme detection: view × theme config.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ThemesKey {
    /// The view themes are detected over.
    pub view: ViewFingerprint,
    /// Exact rendering of the `ThemeConfig` (see module docs).
    pub config: String,
}

impl ThemesKey {
    /// Key for detecting themes over `view` under `config`.
    pub fn new(view: &TableView, config: &crate::themes::ThemeConfig) -> Self {
        ThemesKey {
            view: ViewFingerprint::of(view),
            config: format!("{config:?}"),
        }
    }
}

/// A pluggable memoizer for the explorer's expensive analyses.
///
/// Implementations (e.g. `blaeu-server`'s LRU `AnalysisCache`) must be
/// a pure win: on a hit they return a previously built result for an
/// *equal* key; on a miss they invoke `build` exactly once and may retain
/// the result. The explorer runs with `memo = None` by default, which is
/// observationally identical to a cache that always misses.
pub trait AnalysisMemo: Send + Sync + std::fmt::Debug {
    /// Returns the map for `key`, building it via `build` on a miss.
    fn memo_map(
        &self,
        key: MapKey,
        build: &mut dyn FnMut() -> Result<DataMap>,
    ) -> Result<Arc<DataMap>>;

    /// Returns the theme set for `key`, building it via `build` on a
    /// miss.
    fn memo_themes(
        &self,
        key: ThemesKey,
        build: &mut dyn FnMut() -> Result<ThemeSet>,
    ) -> Result<Arc<ThemeSet>>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaeu_store::{Column, TableBuilder};
    use std::collections::hash_map::DefaultHasher;

    fn table(name: &str) -> Arc<Table> {
        Arc::new(
            TableBuilder::new(name)
                .column("x", Column::dense_f64((0..50).map(f64::from).collect()))
                .unwrap()
                .build()
                .unwrap(),
        )
    }

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut h = DefaultHasher::new();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn same_view_same_fingerprint() {
        let t = table("t");
        let view = TableView::new(Arc::clone(&t));
        let a = ViewFingerprint::of(&view);
        let b = ViewFingerprint::of(&view.clone());
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        assert!(a.is_live());
        assert_eq!(a.selected_rows(), None);
    }

    #[test]
    fn equal_selections_match_across_distinct_arcs() {
        let t = table("t");
        let a = TableView::with_rows(Arc::clone(&t), vec![1, 3, 5]).unwrap();
        let b = TableView::with_rows(Arc::clone(&t), vec![1, 3, 5]).unwrap();
        // Different Arc allocations, same content: must be one cache key.
        let fa = ViewFingerprint::of(&a);
        let fb = ViewFingerprint::of(&b);
        assert_eq!(fa, fb);
        assert_eq!(hash_of(&fa), hash_of(&fb));
        assert_eq!(fa.selected_rows(), Some(3));
    }

    #[test]
    fn different_rows_or_tables_differ() {
        let t = table("t");
        let other = table("t"); // same shape and name, distinct identity
        let base = ViewFingerprint::of(&TableView::new(Arc::clone(&t)));
        let narrowed =
            ViewFingerprint::of(&TableView::with_rows(Arc::clone(&t), vec![0, 1]).unwrap());
        let elsewhere = ViewFingerprint::of(&TableView::new(Arc::clone(&other)));
        assert_ne!(base, narrowed);
        assert_ne!(base, elsewhere, "identical content, different table");
    }

    #[test]
    fn fingerprint_dies_with_its_table() {
        let t = table("t");
        let fp = ViewFingerprint::of(&TableView::new(Arc::clone(&t)));
        assert!(fp.is_live());
        drop(t);
        assert!(!fp.is_live());
    }

    #[test]
    fn map_key_separates_columns_and_config() {
        let t = table("t");
        let view = TableView::new(Arc::clone(&t));
        let config = crate::mapper::MapperConfig::default();
        let a = MapKey::new(&view, &["x"], &config);
        let b = MapKey::new(&view, &["x"], &config);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        let mut tweaked = config.clone();
        tweaked.seed += 1;
        assert_ne!(a, MapKey::new(&view, &["x"], &tweaked));
        assert_ne!(a, MapKey::new(&view, &["x", "x"], &config));
    }

    #[test]
    fn progressive_levels_get_distinct_keys_and_the_final_shares_maps() {
        // The progressive ladder keys its levels by (view, per-level
        // config): intermediate levels differ only in sample_size — which
        // is enough for a distinct key — while the final level passes the
        // base config verbatim and therefore shares the exact
        // Command::Map cache entry.
        let t = table("t");
        let view = TableView::new(Arc::clone(&t));
        let base = crate::mapper::MapperConfig::default();
        let ladder = crate::progressive::ProgressiveMap::new(50_000, &base);
        let exact = MapKey::new(&view, &["x"], &base);
        let mut keys = Vec::new();
        for level in 0..ladder.levels() {
            keys.push(MapKey::new(
                &view,
                &["x"],
                &ladder.config_for(level).unwrap(),
            ));
        }
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "levels must not collide");
            }
        }
        assert_eq!(keys.last().unwrap(), &exact);
        assert_eq!(hash_of(keys.last().unwrap()), hash_of(&exact));
    }

    #[test]
    fn themes_key_tracks_config() {
        let t = table("t");
        let view = TableView::new(Arc::clone(&t));
        let config = crate::themes::ThemeConfig::default();
        let a = ThemesKey::new(&view, &config);
        assert_eq!(a, ThemesKey::new(&view, &config));
        let mut tweaked = config.clone();
        tweaked.max_themes += 1;
        assert_ne!(a, ThemesKey::new(&view, &tweaked));
    }
}
