//! Theme detection — the vertical clustering (Figure 1a of the paper).
//!
//! "Blaeu creates groups of mutually dependent columns. To do so, it
//! partitions the dependency graph with cluster analysis … it uses PAM."
//! Vertices (columns) are clustered on the distance `1 − dependency`; the
//! number of themes is chosen by the silhouette coefficient; each theme is
//! named after its medoid column and scored by its internal cohesion.

use blaeu_stats::DependencyOptions;
use blaeu_store::TableView;

use blaeu_cluster::{pam, silhouette_score, DistanceMatrix, PamConfig};

use crate::depgraph::DependencyGraph;
use crate::error::{BlaeuError, Result};
use crate::preprocess::{analyzable_columns, PreprocessConfig};

/// A theme: a group of mutually dependent columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Theme {
    /// Theme name (the medoid column, the group's most central member).
    pub name: String,
    /// Member columns, medoid first, then by decreasing dependency on it.
    pub columns: Vec<String>,
    /// Mean pairwise dependency among members (1.0 for singletons).
    pub cohesion: f64,
}

impl Theme {
    /// Number of member columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the theme has no columns (never produced by detection).
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

/// Configuration for [`detect_themes`].
#[derive(Debug, Clone)]
pub struct ThemeConfig {
    /// Dependency-measure options (measure, binning, sampling).
    pub dependency: DependencyOptions,
    /// Smallest number of themes to consider.
    pub min_themes: usize,
    /// Largest number of themes to consider.
    pub max_themes: usize,
    /// Fixed number of themes; overrides the silhouette sweep when set.
    pub fixed_themes: Option<usize>,
    /// PAM settings for the column clustering.
    pub pam: PamConfig,
}

impl Default for ThemeConfig {
    fn default() -> Self {
        ThemeConfig {
            dependency: DependencyOptions::default(),
            min_themes: 2,
            max_themes: 12,
            fixed_themes: None,
            pam: PamConfig::default(),
        }
    }
}

/// Result of theme detection.
#[derive(Debug, Clone)]
pub struct ThemeSet {
    /// Detected themes, most cohesive first.
    pub themes: Vec<Theme>,
    /// Silhouette of the winning column partition.
    pub silhouette: f64,
    /// The dependency graph the themes were cut from.
    pub graph: DependencyGraph,
}

impl ThemeSet {
    /// Finds the theme containing `column`.
    pub fn theme_of(&self, column: &str) -> Option<&Theme> {
        self.themes
            .iter()
            .find(|t| t.columns.iter().any(|c| c == column))
    }

    /// Per-column theme index (aligned with `self.themes` order).
    pub fn column_assignments(&self) -> Vec<(String, usize)> {
        let mut out = Vec::new();
        for (i, theme) in self.themes.iter().enumerate() {
            for c in &theme.columns {
                out.push((c.clone(), i));
            }
        }
        out
    }
}

/// Detects themes over the analyzable columns of a view.
///
/// # Errors
/// Fails when fewer than two analyzable columns exist, or on storage
/// errors from the dependency sweep.
pub fn detect_themes(view: &TableView, config: &ThemeConfig) -> Result<ThemeSet> {
    let prep = PreprocessConfig::default();
    let columns = analyzable_columns(view, &prep);
    detect_themes_on(view, &columns, config)
}

/// Detects themes over an explicit column list.
///
/// # Errors
/// Fails when fewer than two columns are given, or on storage errors.
pub fn detect_themes_on(
    view: &TableView,
    columns: &[&str],
    config: &ThemeConfig,
) -> Result<ThemeSet> {
    if columns.len() < 2 {
        return Err(BlaeuError::Invalid(format!(
            "theme detection needs at least 2 columns, got {}",
            columns.len()
        )));
    }
    let graph = DependencyGraph::build(view, columns, &config.dependency)?;
    let m = graph.len();

    // Distance between columns = 1 − dependency.
    let matrix = DistanceMatrix::from_fn(m, |i, j| (1.0 - graph.weight(i, j)).clamp(0.0, 1.0));

    // Choose the number of themes.
    let (labels, silhouette) = match config.fixed_themes {
        Some(k) => {
            let r = pam(&matrix, k.clamp(1, m), &config.pam);
            let s = silhouette_score(&matrix, &r.labels);
            (r.labels, s)
        }
        None => {
            let k_min = config.min_themes.max(2).min(m.saturating_sub(1).max(1));
            let k_max = config.max_themes.max(k_min).min(m.saturating_sub(1).max(1));
            let mut best: Option<(Vec<usize>, f64)> = None;
            for k in k_min..=k_max {
                let r = pam(&matrix, k, &config.pam);
                let s = silhouette_score(&matrix, &r.labels);
                if best.as_ref().is_none_or(|&(_, bs)| s > bs + 1e-12) {
                    best = Some((r.labels, s));
                }
            }
            best.ok_or_else(|| BlaeuError::Invalid("empty k range".to_owned()))?
        }
    };

    // Materialize themes: medoid = member with the highest mean dependency
    // to the rest of its theme.
    let nthemes = labels.iter().copied().max().unwrap_or(0) + 1;
    let mut themes = Vec::with_capacity(nthemes);
    for t in 0..nthemes {
        let members: Vec<usize> = (0..m).filter(|&i| labels[i] == t).collect();
        if members.is_empty() {
            continue;
        }
        let mean_dep = |i: usize| -> f64 {
            if members.len() <= 1 {
                return 1.0;
            }
            members
                .iter()
                .filter(|&&j| j != i)
                .map(|&j| graph.weight(i, j))
                .sum::<f64>()
                / (members.len() - 1) as f64
        };
        let medoid = members
            .iter()
            .copied()
            .max_by(|&a, &b| mean_dep(a).total_cmp(&mean_dep(b)).then(b.cmp(&a)))
            .expect("nonempty");
        let mut ordered = members.clone();
        ordered.sort_by(|&a, &b| {
            if a == medoid {
                return std::cmp::Ordering::Less;
            }
            if b == medoid {
                return std::cmp::Ordering::Greater;
            }
            graph
                .weight(b, medoid)
                .total_cmp(&graph.weight(a, medoid))
                .then(a.cmp(&b))
        });
        let cohesion = if members.len() <= 1 {
            1.0
        } else {
            let mut sum = 0.0;
            let mut cnt = 0usize;
            for (x, &i) in members.iter().enumerate() {
                for &j in &members[x + 1..] {
                    sum += graph.weight(i, j);
                    cnt += 1;
                }
            }
            sum / cnt as f64
        };
        themes.push(Theme {
            name: graph.vertices()[medoid].clone(),
            columns: ordered
                .into_iter()
                .map(|i| graph.vertices()[i].clone())
                .collect(),
            cohesion,
        });
    }
    themes.sort_by(|a, b| {
        b.cohesion
            .total_cmp(&a.cohesion)
            .then_with(|| b.columns.len().cmp(&a.columns.len()))
            .then_with(|| a.name.cmp(&b.name))
    });

    Ok(ThemeSet {
        themes,
        silhouette,
        graph,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaeu_store::generate::{planted, PlantedConfig, ThemeSpec};
    use blaeu_store::{Column, TableBuilder};

    #[test]
    fn recovers_planted_themes() {
        let (table, truth) = planted(&PlantedConfig {
            nrows: 500,
            themes: vec![
                ThemeSpec::numeric("alpha", 4),
                ThemeSpec::numeric("beta", 4),
                ThemeSpec::numeric("gamma", 4),
            ],
            cluster_sep: 0.0, // pure column structure
            noise: 0.3,
            ..PlantedConfig::default()
        })
        .unwrap();
        let ts = detect_themes(&table.into(), &ThemeConfig::default()).unwrap();
        assert_eq!(ts.themes.len(), 3, "should find the 3 planted themes");
        // Every detected theme contains columns of exactly one planted theme.
        for theme in &ts.themes {
            let planted_ids: std::collections::HashSet<usize> = theme
                .columns
                .iter()
                .filter_map(|c| truth.theme_of(c))
                .collect();
            assert_eq!(
                planted_ids.len(),
                1,
                "theme {:?} mixes planted themes",
                theme.columns
            );
        }
        // NMI-space distances are compressed (within-theme NMI ≈ 0.5–0.7),
        // so the silhouette of even a perfect column partition is modest.
        assert!(ts.silhouette > 0.15, "silhouette {}", ts.silhouette);
    }

    #[test]
    fn fixed_theme_count_respected() {
        let (table, _) = planted(&PlantedConfig {
            nrows: 300,
            cluster_sep: 0.0,
            ..PlantedConfig::default()
        })
        .unwrap();
        let ts = detect_themes(
            &table.into(),
            &ThemeConfig {
                fixed_themes: Some(2),
                ..ThemeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(ts.themes.len(), 2);
    }

    #[test]
    fn theme_lookup_and_assignments() {
        let (table, _) = planted(&PlantedConfig {
            nrows: 300,
            cluster_sep: 0.0,
            ..PlantedConfig::default()
        })
        .unwrap();
        let ts = detect_themes(&table.into(), &ThemeConfig::default()).unwrap();
        let t = ts.theme_of("theme_a_0").expect("column is assigned");
        assert!(t.columns.contains(&"theme_a_0".to_owned()));
        let assignments = ts.column_assignments();
        assert_eq!(assignments.len(), 12);
        assert!(ts.theme_of("nonexistent").is_none());
    }

    #[test]
    fn medoid_leads_its_theme() {
        let (table, _) = planted(&PlantedConfig {
            nrows: 300,
            cluster_sep: 0.0,
            ..PlantedConfig::default()
        })
        .unwrap();
        let ts = detect_themes(&table.into(), &ThemeConfig::default()).unwrap();
        for theme in &ts.themes {
            assert_eq!(
                theme.columns[0], theme.name,
                "theme is named after its leading (medoid) column"
            );
            assert!((0.0..=1.0).contains(&theme.cohesion));
        }
    }

    #[test]
    fn too_few_columns_error() {
        let t = TableBuilder::new("t")
            .column("only", Column::dense_f64(vec![1.0, 2.0]))
            .unwrap()
            .build()
            .unwrap();
        assert!(matches!(
            detect_themes(&t.into(), &ThemeConfig::default()),
            Err(BlaeuError::Invalid(_))
        ));
    }

    #[test]
    fn themes_sorted_by_cohesion() {
        let (table, _) = planted(&PlantedConfig {
            nrows: 400,
            themes: vec![
                ThemeSpec::numeric("tight", 4),
                ThemeSpec::numeric("loose", 4),
            ],
            cluster_sep: 0.0,
            noise: 0.2,
            ..PlantedConfig::default()
        })
        .unwrap();
        let ts = detect_themes(&table.into(), &ThemeConfig::default()).unwrap();
        let cohesions: Vec<f64> = ts.themes.iter().map(|t| t.cohesion).collect();
        assert!(cohesions.windows(2).all(|w| w[0] >= w[1]));
    }
}
