//! Serializable sketch operations — the distributed execution tier's
//! unit of work.
//!
//! Hillview-style fan-out: the naturally mergeable analyses (dependency
//! matrix cells, describe/histogram summaries, CLARA assignment) are
//! expressed as a [`SketchOp`] whose shard layout is a *pure function*
//! of the op and row count, so a coordinator and N workers agree on
//! shard boundaries without exchanging data. Each worker plans the op
//! against its local table replica ([`SketchOp::plan`]), executes a
//! contiguous shard range ([`SketchPlan::run_range`]) and returns a
//! [`SketchPartial`]; partials merge **in shard order**
//! ([`SketchPartial::merge`]) and finalize data-free
//! ([`SketchOp::finalize`]).
//!
//! The invariant the whole tier hangs on: merging worker partials in
//! shard order replays the exact combine sequence of the in-process
//! `par_shards` path, so the finalized result — every float bit — is
//! identical to a single-node run. Float-carrying partials serialize
//! each `f64` as its 16-digit hex bit pattern, so the wire round-trip
//! preserves that identity exactly.

use serde_json::{json, Map, Value};

use blaeu_cluster::{assign_shard, AssignPartial, Points};
use blaeu_exec::{par_map_range_grained, ShardSpec};
use blaeu_stats::{
    dep_matrix_shard_spec, describe_kind, describe_shard, finalize_dep_cells, finalize_describe,
    finalize_histogram, histogram_prepare, histogram_shard, merge_dep_cells, row_shard_spec,
    ColumnSummary, DepMatrixSketch, DependencyMatrix, DependencyOptions, DescribeKind,
    DescribePartial, Histogram, HistogramMode, HistogramPartial, HistogramSketch,
};
use blaeu_store::TableView;

use crate::command::Command;
use crate::error::{BlaeuError, Result};
use crate::preprocess::{preprocess, MetricChoice, PreprocessConfig};

/// A mergeable analysis, as data: what to compute, not where.
///
/// Analysis parameters are pinned to the engine defaults (dependency
/// options, Gower preprocessing) so every node derives the identical
/// plan from its table replica.
#[derive(Debug, Clone, PartialEq)]
pub enum SketchOp {
    /// Pairwise dependency cells over the named columns
    /// ([`blaeu_stats::dependency_matrix`] with default options); shards
    /// carve the column-pair space.
    DepMatrix {
        /// Columns to sweep, in order.
        columns: Vec<String>,
    },
    /// Column summary ([`blaeu_stats::describe`]); shards carve the rows.
    Describe {
        /// Column to summarize.
        column: String,
        /// Categorical top-list cap.
        top_k: usize,
    },
    /// Column histogram ([`blaeu_stats::histogram`]); shards carve the
    /// rows.
    Histogram {
        /// Column to bin.
        column: String,
        /// Requested bin count.
        bins: usize,
    },
    /// CLARA assignment sweep: label every row with its nearest medoid
    /// over Gower-preprocessed points ([`blaeu_cluster::assign_points`]);
    /// shards carve the rows.
    ClaraAssign {
        /// Columns preprocessed into the point set.
        columns: Vec<String>,
        /// Medoid row indices (into the point set).
        medoids: Vec<usize>,
    },
}

fn hex_of(v: f64) -> Value {
    json!(format!("{:016x}", v.to_bits()))
}

fn f64_of_hex(v: &Value) -> Option<f64> {
    let s = v.as_str()?;
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

fn hex_list(vals: &[f64]) -> Value {
    Value::Array(vals.iter().map(|&v| hex_of(v)).collect())
}

fn parse_hex_list(value: Option<&Value>, what: &str) -> Result<Vec<f64>> {
    value
        .and_then(Value::as_array)
        .ok_or_else(|| BlaeuError::Invalid(format!("sketch partial needs {what} array")))?
        .iter()
        .map(|v| {
            f64_of_hex(v).ok_or_else(|| {
                BlaeuError::Invalid(format!("{what} entries must be 16-digit hex bit patterns"))
            })
        })
        .collect()
}

fn parse_usize(value: Option<&Value>, what: &str) -> Result<usize> {
    value
        .and_then(Value::as_u64)
        .and_then(|v| usize::try_from(v).ok())
        .ok_or_else(|| {
            BlaeuError::Invalid(format!("sketch partial needs non-negative integer {what}"))
        })
}

fn parse_count_map(
    value: Option<&Value>,
    what: &str,
) -> Result<std::collections::BTreeMap<String, usize>> {
    let obj = value
        .and_then(Value::as_object)
        .ok_or_else(|| BlaeuError::Invalid(format!("sketch partial needs {what} count object")))?;
    let mut counts = std::collections::BTreeMap::new();
    for (label, c) in obj.iter() {
        let c = c
            .as_u64()
            .and_then(|v| usize::try_from(v).ok())
            .ok_or_else(|| {
                BlaeuError::Invalid(format!("{what} counts must be non-negative integers"))
            })?;
        counts.insert(label.clone(), c);
    }
    Ok(counts)
}

fn count_map_json(counts: &std::collections::BTreeMap<String, usize>) -> Value {
    let mut obj = Map::new();
    for (label, &c) in counts {
        obj.insert(label.clone(), json!(c));
    }
    Value::Object(obj)
}

/// Parses a wire column list with the same bounds as `Command`'s
/// `project` list.
fn parse_columns(value: Option<&Value>, what: &str) -> Result<Vec<String>> {
    let entries = value
        .and_then(Value::as_array)
        .ok_or_else(|| BlaeuError::Invalid(format!("sketch op needs a {what:?} array")))?;
    if entries.len() > Command::MAX_WIRE_COLUMNS {
        return Err(BlaeuError::Invalid(format!(
            "{what:?} exceeds {} entries",
            Command::MAX_WIRE_COLUMNS
        )));
    }
    entries
        .iter()
        .map(|c| {
            c.as_str()
                .filter(|s| s.len() <= Command::MAX_WIRE_STRING)
                .map(str::to_owned)
                .ok_or_else(|| {
                    BlaeuError::Invalid(format!("{what:?} entries must be bounded strings"))
                })
        })
        .collect()
}

impl SketchOp {
    /// The canonical shard layout of this op over `nrows` local rows — a
    /// pure function (no data), so coordinator and workers agree on
    /// boundaries. Dependency sweeps shard the column-pair space
    /// (independent of `nrows`); the row sketches shard rows at the
    /// executor's reduce grain.
    pub fn shard_spec(&self, nrows: usize) -> ShardSpec {
        match self {
            SketchOp::DepMatrix { columns } => dep_matrix_shard_spec(columns.len()),
            SketchOp::Describe { .. }
            | SketchOp::Histogram { .. }
            | SketchOp::ClaraAssign { .. } => row_shard_spec(nrows),
        }
    }

    /// Plans the op against a local table replica: validates columns and
    /// runs the op's deterministic phase-1 (pair discretization, bin
    /// layout, point preprocessing). Every replica derives the identical
    /// plan.
    ///
    /// # Errors
    /// Unknown columns, empty views (for the point-based op) and
    /// out-of-range medoids surface as typed errors.
    pub fn plan(&self, view: &TableView) -> Result<SketchPlan> {
        match self {
            SketchOp::DepMatrix { columns } => {
                let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
                let sketch = DepMatrixSketch::prepare(view, &cols, &DependencyOptions::default())?;
                Ok(SketchPlan::Dep(sketch))
            }
            SketchOp::Describe { column, top_k } => {
                let col = view.col_by_name(column)?;
                let kind = describe_kind(&col);
                Ok(SketchPlan::Describe {
                    view: view.clone(),
                    column: column.clone(),
                    kind,
                    top_k: *top_k,
                })
            }
            SketchOp::Histogram { column, bins } => {
                let col = view.col_by_name(column)?;
                let sketch = histogram_prepare(&col, *bins);
                Ok(SketchPlan::Histogram {
                    view: view.clone(),
                    column: column.clone(),
                    sketch,
                })
            }
            SketchOp::ClaraAssign { columns, medoids } => {
                if medoids.is_empty() {
                    return Err(BlaeuError::Invalid(
                        "clara_assign needs at least one medoid".into(),
                    ));
                }
                let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
                let points = preprocess(view, &cols, &PreprocessConfig::default())?
                    .into_points(MetricChoice::Gower);
                if let Some(&bad) = medoids.iter().find(|&&m| m >= points.len()) {
                    return Err(BlaeuError::Invalid(format!(
                        "medoid {bad} out of range for {} rows",
                        points.len()
                    )));
                }
                Ok(SketchPlan::Assign {
                    points: Box::new(points),
                    medoids: medoids.clone(),
                })
            }
        }
    }

    /// Finalizes a fully merged partial into the analysis result. Needs
    /// no table data — this is the coordinator's half of the contract.
    ///
    /// # Errors
    /// A partial whose shape does not match the op (wrong kind, wrong
    /// cell count) is a typed error, never a panic: the coordinator
    /// feeds this remote data.
    pub fn finalize(&self, partial: SketchPartial) -> Result<SketchResult> {
        match (self, partial) {
            (SketchOp::DepMatrix { columns }, SketchPartial::Dep(cells)) => {
                let m = columns.len();
                if cells.len() != m * m.saturating_sub(1) / 2 {
                    return Err(BlaeuError::Invalid(format!(
                        "dependency partial has {} cells, expected {}",
                        cells.len(),
                        m * m.saturating_sub(1) / 2
                    )));
                }
                Ok(SketchResult::Dep(finalize_dep_cells(
                    columns.clone(),
                    &cells,
                )))
            }
            (SketchOp::Describe { top_k, .. }, SketchPartial::Describe(partial)) => {
                Ok(SketchResult::Describe(finalize_describe(partial, *top_k)))
            }
            (SketchOp::Histogram { bins, .. }, SketchPartial::Histogram(partial)) => {
                Ok(SketchResult::Histogram(finalize_histogram(partial, *bins)))
            }
            (SketchOp::ClaraAssign { .. }, SketchPartial::Assign(partial)) => {
                let (labels, total_deviation) = blaeu_cluster::finalize_assign(partial);
                Ok(SketchResult::Assign {
                    labels,
                    total_deviation,
                })
            }
            (op, partial) => Err(BlaeuError::Invalid(format!(
                "sketch partial kind does not match op: {} vs {}",
                partial.kind_tag(),
                op.tag()
            ))),
        }
    }

    fn tag(&self) -> &'static str {
        match self {
            SketchOp::DepMatrix { .. } => "dep_matrix",
            SketchOp::Describe { .. } => "describe",
            SketchOp::Histogram { .. } => "histogram",
            SketchOp::ClaraAssign { .. } => "clara_assign",
        }
    }

    /// Serializes the op to its wire object (nested inside the `sketch`
    /// command envelope).
    pub fn to_json(&self) -> Value {
        match self {
            SketchOp::DepMatrix { columns } => {
                json!({"op": "dep_matrix", "columns": columns.clone()})
            }
            SketchOp::Describe { column, top_k } => {
                json!({"op": "describe", "column": column.clone(), "top_k": *top_k})
            }
            SketchOp::Histogram { column, bins } => {
                json!({"op": "histogram", "column": column.clone(), "bins": *bins})
            }
            SketchOp::ClaraAssign { columns, medoids } => {
                json!({"op": "clara_assign", "columns": columns.clone(), "medoids": medoids.clone()})
            }
        }
    }

    /// Parses an op from its wire object with the same adversarial-input
    /// bounds as [`Command::from_json`].
    ///
    /// # Errors
    /// Returns [`BlaeuError::Invalid`] for unknown or malformed ops.
    pub fn from_json(value: &Value) -> Result<SketchOp> {
        let op = value
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| BlaeuError::Invalid("sketch op needs an \"op\" field".into()))?;
        let index = |field: &str| -> Result<usize> {
            value
                .get(field)
                .and_then(Value::as_u64)
                .and_then(|v| usize::try_from(v).ok())
                .ok_or_else(|| {
                    BlaeuError::Invalid(format!(
                        "sketch op {op:?} needs non-negative integer field {field:?}"
                    ))
                })
        };
        let text = |field: &str| -> Result<String> {
            let s = value.get(field).and_then(Value::as_str).ok_or_else(|| {
                BlaeuError::Invalid(format!("sketch op {op:?} needs string field {field:?}"))
            })?;
            if s.len() > Command::MAX_WIRE_STRING {
                return Err(BlaeuError::Invalid(format!(
                    "sketch op {op:?} field {field:?} exceeds {} bytes",
                    Command::MAX_WIRE_STRING
                )));
            }
            Ok(s.to_owned())
        };
        Ok(match op {
            "dep_matrix" => SketchOp::DepMatrix {
                columns: parse_columns(value.get("columns"), "columns")?,
            },
            "describe" => SketchOp::Describe {
                column: text("column")?,
                top_k: index("top_k")?,
            },
            "histogram" => SketchOp::Histogram {
                column: text("column")?,
                bins: index("bins")?,
            },
            "clara_assign" => {
                let entries = value
                    .get("medoids")
                    .and_then(Value::as_array)
                    .ok_or_else(|| {
                        BlaeuError::Invalid("sketch op needs a \"medoids\" array".into())
                    })?;
                if entries.len() > Command::MAX_WIRE_COLUMNS {
                    return Err(BlaeuError::Invalid(format!(
                        "\"medoids\" exceeds {} entries",
                        Command::MAX_WIRE_COLUMNS
                    )));
                }
                let medoids = entries
                    .iter()
                    .map(|m| {
                        m.as_u64()
                            .and_then(|v| usize::try_from(v).ok())
                            .ok_or_else(|| {
                                BlaeuError::Invalid(
                                    "\"medoids\" entries must be non-negative integers".into(),
                                )
                            })
                    })
                    .collect::<Result<Vec<usize>>>()?;
                SketchOp::ClaraAssign {
                    columns: parse_columns(value.get("columns"), "columns")?,
                    medoids,
                }
            }
            other => return Err(BlaeuError::Invalid(format!("unknown sketch op {other:?}"))),
        })
    }
}

/// A planned sketch op, bound to a local table replica: phase-1 state
/// plus everything `run_shard` needs. Workers cache plans across shard
/// requests of the same op.
#[derive(Debug, Clone)]
pub enum SketchPlan {
    /// Dependency sweep: discretized columns and the pair list.
    Dep(DepMatrixSketch),
    /// Describe sweep over one column of the view.
    Describe {
        /// The table replica.
        view: TableView,
        /// Column to summarize.
        column: String,
        /// Accumulator kind, from the column type.
        kind: DescribeKind,
        /// Categorical top-list cap (kept for symmetry; finalize re-reads
        /// it from the op).
        top_k: usize,
    },
    /// Histogram sweep over one column of the view.
    Histogram {
        /// The table replica.
        view: TableView,
        /// Column to bin.
        column: String,
        /// Settled bin layout and discretizer.
        sketch: HistogramSketch,
    },
    /// CLARA assignment sweep over preprocessed points.
    Assign {
        /// Gower-preprocessed point set (boxed: the flat matrix is large).
        points: Box<Points>,
        /// Medoid row indices.
        medoids: Vec<usize>,
    },
}

impl SketchPlan {
    /// The plan's canonical shard layout — identical to
    /// [`SketchOp::shard_spec`] for the replica's row count.
    pub fn spec(&self) -> ShardSpec {
        match self {
            SketchPlan::Dep(sketch) => sketch.shard_spec().clone(),
            SketchPlan::Describe { view, .. } | SketchPlan::Histogram { view, .. } => {
                row_shard_spec(view.nrows())
            }
            SketchPlan::Assign { points, .. } => row_shard_spec(points.len()),
        }
    }

    /// The identity partial — the merge seed, and what an empty shard
    /// range returns.
    pub fn empty_partial(&self) -> SketchPartial {
        match self {
            SketchPlan::Dep(_) => SketchPartial::Dep(Vec::new()),
            SketchPlan::Describe { kind, .. } => {
                SketchPartial::Describe(DescribePartial::empty(*kind))
            }
            SketchPlan::Histogram { sketch, .. } => {
                SketchPartial::Histogram(HistogramPartial::empty(sketch))
            }
            SketchPlan::Assign { .. } => SketchPartial::Assign(AssignPartial::empty()),
        }
    }

    /// Executes a contiguous range of canonical shards on `threads`
    /// workers (0 = all cores) and merges the per-shard partials in
    /// shard order — the worker's half of the contract. `run_range` over
    /// the full shard range is bit-identical to the in-process analysis.
    ///
    /// # Panics
    /// Panics if the range exceeds the plan's shard count.
    pub fn run_range(&self, shards: std::ops::Range<usize>, threads: usize) -> SketchPartial {
        let spec = self.spec();
        assert!(
            shards.end <= spec.shard_count(),
            "shard range {shards:?} exceeds {} shards",
            spec.shard_count()
        );
        let start = shards.start;
        match self {
            SketchPlan::Dep(sketch) => SketchPartial::Dep(sketch.run_range(shards, threads)),
            SketchPlan::Describe {
                view, column, kind, ..
            } => {
                let col = view.col_by_name(column).expect("validated at plan time");
                let parts = par_map_range_grained(shards.len(), threads, 1, |i| {
                    describe_shard(&col, spec.range(start + i))
                });
                let mut merged = DescribePartial::empty(*kind);
                for p in parts {
                    merged.merge(p);
                }
                SketchPartial::Describe(merged)
            }
            SketchPlan::Histogram {
                view,
                column,
                sketch,
            } => {
                let col = view.col_by_name(column).expect("validated at plan time");
                let parts = par_map_range_grained(shards.len(), threads, 1, |i| {
                    histogram_shard(&col, sketch, spec.range(start + i))
                });
                let mut merged = HistogramPartial::empty(sketch);
                for p in parts {
                    merged.merge(p);
                }
                SketchPartial::Histogram(merged)
            }
            SketchPlan::Assign { points, medoids } => {
                let kernel = points.block_kernel();
                let parts = par_map_range_grained(shards.len(), threads, 1, |i| {
                    let (labels, total) = assign_shard(&kernel, medoids, spec.range(start + i));
                    AssignPartial {
                        labels,
                        totals: vec![total],
                    }
                });
                let mut merged = AssignPartial::empty();
                for p in parts {
                    merged.merge(p);
                }
                SketchPartial::Assign(merged)
            }
        }
    }
}

/// A mergeable partial result of a sketch op over a contiguous shard
/// range.
#[derive(Debug, Clone)]
pub enum SketchPartial {
    /// Dependency cells in shard (pair) order.
    Dep(Vec<f64>),
    /// Describe accumulator.
    Describe(DescribePartial),
    /// Histogram accumulator.
    Histogram(HistogramPartial),
    /// Assignment labels and per-shard deviation sums.
    Assign(AssignPartial),
}

impl SketchPartial {
    fn kind_tag(&self) -> &'static str {
        match self {
            SketchPartial::Dep(_) => "dep",
            SketchPartial::Describe(_) => "describe",
            SketchPartial::Histogram(_) => "histogram",
            SketchPartial::Assign(_) => "assign",
        }
    }

    /// Merges the next shard range's partial into this one, in shard
    /// order. Fallible, never panicking: the coordinator merges partials
    /// that crossed the wire, so kind or layout mismatches (a divergent
    /// or hostile worker) surface as typed errors.
    ///
    /// # Errors
    /// Returns [`BlaeuError::Invalid`] when the partials cannot merge.
    pub fn merge(&mut self, other: SketchPartial) -> Result<()> {
        match (self, other) {
            (SketchPartial::Dep(a), SketchPartial::Dep(b)) => {
                merge_dep_cells(a, b);
                Ok(())
            }
            (SketchPartial::Describe(a), SketchPartial::Describe(b)) => {
                if a.kind() != b.kind() {
                    return Err(BlaeuError::Invalid(
                        "describe partials disagree on column kind".into(),
                    ));
                }
                a.merge(b);
                Ok(())
            }
            (SketchPartial::Histogram(a), SketchPartial::Histogram(b)) => {
                if !a.compatible(&b) {
                    return Err(BlaeuError::Invalid(
                        "histogram partials disagree on bin layout".into(),
                    ));
                }
                a.merge(b);
                Ok(())
            }
            (SketchPartial::Assign(a), SketchPartial::Assign(b)) => {
                a.merge(b);
                Ok(())
            }
            (a, b) => Err(BlaeuError::Invalid(format!(
                "cannot merge sketch partials of different kinds: {} vs {}",
                a.kind_tag(),
                b.kind_tag()
            ))),
        }
    }

    /// Serializes the partial for the wire. Floats travel as 16-digit
    /// hex bit patterns, so a JSON round-trip preserves every bit and
    /// coordinator-side merges stay identical to in-process merges.
    pub fn to_json(&self) -> Value {
        match self {
            SketchPartial::Dep(cells) => json!({"partial": "dep", "cells": hex_list(cells)}),
            SketchPartial::Describe(DescribePartial::Numeric { values, nulls }) => {
                json!({"partial": "describe_numeric", "values": hex_list(values), "nulls": *nulls})
            }
            SketchPartial::Describe(DescribePartial::Categorical { counts, nulls }) => {
                json!({"partial": "describe_categorical", "counts": count_map_json(counts), "nulls": *nulls})
            }
            SketchPartial::Histogram(HistogramPartial::Numeric {
                mode,
                counts,
                nulls,
            }) => {
                let mode = match mode {
                    HistogramMode::Empty => json!({"kind": "empty"}),
                    HistogramMode::Flat { lo, hi } => {
                        json!({"kind": "flat", "lo": hex_of(*lo), "hi": hex_of(*hi)})
                    }
                    HistogramMode::Binned { lo, hi, nbins } => {
                        json!({"kind": "binned", "lo": hex_of(*lo), "hi": hex_of(*hi), "nbins": *nbins})
                    }
                };
                json!({"partial": "histogram_numeric", "mode": mode, "counts": counts, "nulls": *nulls})
            }
            SketchPartial::Histogram(HistogramPartial::Categorical { counts, nulls }) => {
                json!({"partial": "histogram_categorical", "counts": count_map_json(counts), "nulls": *nulls})
            }
            SketchPartial::Assign(AssignPartial { labels, totals }) => {
                json!({"partial": "assign", "labels": labels, "totals": hex_list(totals)})
            }
        }
    }

    /// Parses a partial from its wire object, validating shape and
    /// bounds — this is the coordinator's trust boundary with workers.
    ///
    /// # Errors
    /// Returns [`BlaeuError::Invalid`] for unknown or malformed partials.
    pub fn from_json(value: &Value) -> Result<SketchPartial> {
        let tag = value
            .get("partial")
            .and_then(Value::as_str)
            .ok_or_else(|| {
                BlaeuError::Invalid("sketch partial needs a \"partial\" field".into())
            })?;
        Ok(match tag {
            "dep" => SketchPartial::Dep(parse_hex_list(value.get("cells"), "cells")?),
            "describe_numeric" => SketchPartial::Describe(DescribePartial::Numeric {
                values: parse_hex_list(value.get("values"), "values")?,
                nulls: parse_usize(value.get("nulls"), "nulls")?,
            }),
            "describe_categorical" => SketchPartial::Describe(DescribePartial::Categorical {
                counts: parse_count_map(value.get("counts"), "describe")?,
                nulls: parse_usize(value.get("nulls"), "nulls")?,
            }),
            "histogram_numeric" => {
                let mode_value = value.get("mode").ok_or_else(|| {
                    BlaeuError::Invalid("histogram partial needs a \"mode\" object".into())
                })?;
                let kind = mode_value
                    .get("kind")
                    .and_then(Value::as_str)
                    .ok_or_else(|| {
                        BlaeuError::Invalid("histogram mode needs a \"kind\" field".into())
                    })?;
                let edge = |field: &str| -> Result<f64> {
                    f64_of_hex(mode_value.get(field).unwrap_or(&Value::Null)).ok_or_else(|| {
                        BlaeuError::Invalid(format!(
                            "histogram mode field {field:?} must be a hex bit pattern"
                        ))
                    })
                };
                let mode = match kind {
                    "empty" => HistogramMode::Empty,
                    "flat" => HistogramMode::Flat {
                        lo: edge("lo")?,
                        hi: edge("hi")?,
                    },
                    "binned" => HistogramMode::Binned {
                        lo: edge("lo")?,
                        hi: edge("hi")?,
                        nbins: parse_usize(mode_value.get("nbins"), "nbins")?,
                    },
                    other => {
                        return Err(BlaeuError::Invalid(format!(
                            "unknown histogram mode {other:?}"
                        )))
                    }
                };
                let counts = value
                    .get("counts")
                    .and_then(Value::as_array)
                    .ok_or_else(|| {
                        BlaeuError::Invalid("histogram partial needs a counts array".into())
                    })?
                    .iter()
                    .map(|c| {
                        c.as_u64()
                            .and_then(|v| usize::try_from(v).ok())
                            .ok_or_else(|| {
                                BlaeuError::Invalid("histogram counts must be integers".into())
                            })
                    })
                    .collect::<Result<Vec<usize>>>()?;
                if counts.len() != mode.bin_count() {
                    return Err(BlaeuError::Invalid(format!(
                        "histogram partial has {} counts for a {}-bin layout",
                        counts.len(),
                        mode.bin_count()
                    )));
                }
                SketchPartial::Histogram(HistogramPartial::Numeric {
                    mode,
                    counts,
                    nulls: parse_usize(value.get("nulls"), "nulls")?,
                })
            }
            "histogram_categorical" => SketchPartial::Histogram(HistogramPartial::Categorical {
                counts: parse_count_map(value.get("counts"), "histogram")?,
                nulls: parse_usize(value.get("nulls"), "nulls")?,
            }),
            "assign" => {
                let labels = value
                    .get("labels")
                    .and_then(Value::as_array)
                    .ok_or_else(|| {
                        BlaeuError::Invalid("assign partial needs a labels array".into())
                    })?
                    .iter()
                    .map(|l| {
                        l.as_u64()
                            .and_then(|v| usize::try_from(v).ok())
                            .ok_or_else(|| {
                                BlaeuError::Invalid("assign labels must be integers".into())
                            })
                    })
                    .collect::<Result<Vec<usize>>>()?;
                SketchPartial::Assign(AssignPartial {
                    labels,
                    totals: parse_hex_list(value.get("totals"), "totals")?,
                })
            }
            other => {
                return Err(BlaeuError::Invalid(format!(
                    "unknown sketch partial {other:?}"
                )))
            }
        })
    }
}

/// The finalized result of a sketch op — what a coordinator (or the
/// in-process engine) hands back once every partial has merged.
#[derive(Debug, Clone)]
pub enum SketchResult {
    /// The dependency matrix.
    Dep(DependencyMatrix),
    /// The column summary.
    Describe(ColumnSummary),
    /// The histogram.
    Histogram(Histogram),
    /// Assignment labels and the total deviation.
    Assign {
        /// Nearest-medoid slot per row.
        labels: Vec<usize>,
        /// Shard-order-folded total deviation.
        total_deviation: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaeu_store::{Column, TableBuilder};

    fn view() -> TableView {
        let n = 400;
        let xs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let ys: Vec<f64> = xs.iter().map(|v| v * 2.0 + 1.0).collect();
        let labels: Vec<String> = (0..n).map(|i| format!("g{}", i % 7)).collect();
        TableBuilder::new("t")
            .column("x", Column::dense_f64(xs))
            .unwrap()
            .column("y", Column::dense_f64(ys))
            .unwrap()
            .column(
                "g",
                Column::from_strs(labels.iter().map(|s| Some(s.as_str()))),
            )
            .unwrap()
            .build()
            .unwrap()
            .into()
    }

    fn ops() -> Vec<SketchOp> {
        vec![
            SketchOp::DepMatrix {
                columns: vec!["x".into(), "y".into(), "g".into()],
            },
            SketchOp::Describe {
                column: "x".into(),
                top_k: 5,
            },
            SketchOp::Describe {
                column: "g".into(),
                top_k: 3,
            },
            SketchOp::Histogram {
                column: "y".into(),
                bins: 8,
            },
            SketchOp::Histogram {
                column: "g".into(),
                bins: 4,
            },
            SketchOp::ClaraAssign {
                columns: vec!["x".into(), "y".into(), "g".into()],
                medoids: vec![3, 170, 390],
            },
        ]
    }

    #[test]
    fn ops_round_trip_through_json() {
        for op in ops() {
            let wire = op.to_json();
            assert_eq!(SketchOp::from_json(&wire).unwrap(), op, "wire {wire:?}");
        }
    }

    #[test]
    fn malformed_ops_rejected() {
        for bad in [
            json!({}),
            json!({"op": "warp"}),
            json!({"op": "describe", "column": "x"}),
            json!({"op": "describe", "column": 7, "top_k": 1}),
            json!({"op": "histogram", "column": "x", "bins": -1i64}),
            json!({"op": "dep_matrix", "columns": [1]}),
            json!({"op": "clara_assign", "columns": ["x"], "medoids": [-1i64]}),
            json!({"op": "clara_assign", "columns": ["x"]}),
        ] {
            assert!(SketchOp::from_json(&bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn split_ranges_merge_bit_identical_to_full_run() {
        let view = view();
        for op in ops() {
            let plan = op.plan(&view).unwrap();
            let spec = plan.spec();
            let full = plan.run_range(0..spec.shard_count(), 0);
            let reference = op.finalize(full).unwrap();
            // Split the shard space at every boundary; merged halves must
            // finalize to the same bits.
            for cut in 0..=spec.shard_count() {
                let mut left = plan.run_range(0..cut, 1);
                let right = plan.run_range(cut..spec.shard_count(), 1);
                left.merge(right).unwrap();
                let split = op.finalize(left).unwrap();
                assert_eq!(
                    format!("{reference:?}"),
                    format!("{split:?}"),
                    "op {op:?} cut {cut}"
                );
            }
        }
    }

    #[test]
    fn partials_round_trip_through_json() {
        let view = view();
        for op in ops() {
            let plan = op.plan(&view).unwrap();
            let spec = plan.spec();
            let partial = plan.run_range(0..spec.shard_count(), 0);
            let wire = partial.to_json();
            let back = SketchPartial::from_json(&wire).unwrap();
            assert_eq!(
                format!("{:?}", op.finalize(partial).unwrap()),
                format!("{:?}", op.finalize(back).unwrap()),
                "wire round-trip changed bits for {op:?}"
            );
        }
    }

    #[test]
    fn sketch_results_match_direct_analyses() {
        let view = view();

        let op = SketchOp::Describe {
            column: "x".into(),
            top_k: 5,
        };
        let plan = op.plan(&view).unwrap();
        let partial = plan.run_range(0..plan.spec().shard_count(), 0);
        let SketchResult::Describe(summary) = op.finalize(partial).unwrap() else {
            panic!("wrong result kind");
        };
        let col = view.col_by_name("x").unwrap();
        assert_eq!(
            format!("{summary:?}"),
            format!("{:?}", blaeu_stats::describe(&col, 5))
        );

        let op = SketchOp::Histogram {
            column: "y".into(),
            bins: 8,
        };
        let plan = op.plan(&view).unwrap();
        let partial = plan.run_range(0..plan.spec().shard_count(), 0);
        let SketchResult::Histogram(hist) = op.finalize(partial).unwrap() else {
            panic!("wrong result kind");
        };
        let col = view.col_by_name("y").unwrap();
        assert_eq!(hist, blaeu_stats::histogram(&col, 8));

        let op = SketchOp::ClaraAssign {
            columns: vec!["x".into(), "y".into(), "g".into()],
            medoids: vec![3, 170, 390],
        };
        let plan = op.plan(&view).unwrap();
        let partial = plan.run_range(0..plan.spec().shard_count(), 0);
        let SketchResult::Assign {
            labels,
            total_deviation,
        } = op.finalize(partial).unwrap()
        else {
            panic!("wrong result kind");
        };
        let points = preprocess(&view, &["x", "y", "g"], &PreprocessConfig::default())
            .unwrap()
            .into_points(MetricChoice::Gower);
        let (direct_labels, direct_total) = blaeu_cluster::assign_points(&points, &[3, 170, 390]);
        assert_eq!(labels, direct_labels);
        assert_eq!(total_deviation.to_bits(), direct_total.to_bits());
    }

    #[test]
    fn mismatched_partials_are_typed_errors() {
        let mut dep = SketchPartial::Dep(vec![0.5]);
        let assign = SketchPartial::Assign(AssignPartial::empty());
        assert!(dep.merge(assign).is_err());
        let op = SketchOp::DepMatrix {
            columns: vec!["a".into(), "b".into()],
        };
        assert!(op.finalize(SketchPartial::Dep(vec![0.1, 0.2])).is_err());
        assert!(op
            .finalize(SketchPartial::Assign(AssignPartial::empty()))
            .is_err());
    }

    #[test]
    fn hostile_partial_json_rejected() {
        for bad in [
            json!({}),
            json!({"partial": "dep", "cells": ["zz"]}),
            json!({"partial": "dep", "cells": [1.5]}),
            json!({"partial": "describe_numeric", "values": Vec::<Value>::new(), "nulls": -1i64}),
            json!({"partial": "histogram_numeric", "mode": json!({"kind": "binned", "lo": "0000000000000000", "hi": "3ff0000000000000", "nbins": 4}), "counts": [1, 2], "nulls": 0}),
            json!({"partial": "assign", "labels": [0], "totals": "nope"}),
        ] {
            assert!(SketchPartial::from_json(&bad).is_err(), "accepted {bad:?}");
        }
    }
}
