//! The explorer: navigational actions over themes and maps (Section 2).
//!
//! An [`Explorer`] owns a base table, its detected themes, and a stack of
//! exploration states. The four actions of the paper map to methods:
//!
//! * **zoom** — [`Explorer::zoom`] drills into a region and re-maps it;
//! * **highlight** — [`Explorer::highlight`] inspects a column's
//!   distribution inside every region (read-only);
//! * **project** — [`Explorer::project`] / [`Explorer::project_theme`]
//!   re-map the same rows under different columns;
//! * **rollback** — [`Explorer::rollback`] returns to the previous state
//!   (every state is immutable, so rollback is exact).
//!
//! Every state carries the implicit Select-Project query the user has
//! built so far; [`Explorer::sql`] renders it.

use std::sync::Arc;

use blaeu_stats::{describe, histogram, ColumnSummary, Histogram};
use blaeu_store::{ColumnRole, Predicate, SelectProject, Table, TableView};

use crate::cache::{AnalysisMemo, MapKey, ThemesKey};
use crate::command::{Command, Response};
use crate::error::{BlaeuError, Result};
use crate::map::DataMap;
use crate::mapper::{build_map, MapperConfig};
use crate::progressive::ProgressiveMap;
use crate::themes::{detect_themes, Theme, ThemeConfig, ThemeSet};

/// Explorer configuration.
#[derive(Debug, Clone, Default)]
pub struct ExplorerConfig {
    /// Theme-detection settings.
    pub themes: ThemeConfig,
    /// Map-construction settings.
    pub mapper: MapperConfig,
}

/// One immutable exploration state.
#[derive(Debug, Clone)]
pub struct ExplorerState {
    /// The active selection as a zero-copy view: the shared base table
    /// plus the row indices this state covers. Zooming re-maps indices;
    /// no column payload is ever copied on the navigation path.
    pub view: TableView,
    /// The active columns (empty until a theme is selected).
    pub columns: Vec<String>,
    /// The current map, if one was built.
    pub map: Option<Arc<DataMap>>,
    /// The implicit Select-Project query accumulated so far, expressed
    /// against the base table.
    pub query: SelectProject,
    /// Human-readable action trail.
    pub breadcrumbs: Vec<String>,
}

impl ExplorerState {
    /// Gathers up to `cap` of the given view-relative rows as an owned
    /// example table — the single materialization helper for tuples shown
    /// to the user. Analysis never materializes; only examples do.
    pub fn example_rows(&self, rows: &[u32], cap: usize) -> Result<Table> {
        let shown: Vec<u32> = rows.iter().copied().take(cap).collect();
        Ok(self.view.gather(&shown)?)
    }
}

/// Highlight of one column inside one region.
#[derive(Debug, Clone)]
pub struct RegionHighlight {
    /// Region id in the current map.
    pub region: usize,
    /// Rows in the region.
    pub count: usize,
    /// Summary statistics of the highlighted column within the region.
    pub summary: ColumnSummary,
    /// Histogram of the highlighted column within the region.
    pub histogram: Histogram,
    /// Example values (most frequent for categoricals, extremes for
    /// numerics), for the paper's "Switzerland, Norway, Canada…" effect.
    pub examples: Vec<String>,
}

/// Result of a highlight action.
#[derive(Debug, Clone)]
pub struct Highlight {
    /// The highlighted column.
    pub column: String,
    /// Per-leaf-region views, in leaf order.
    pub regions: Vec<RegionHighlight>,
}

/// Detailed view of one region (the paper's left info panel).
#[derive(Debug, Clone)]
pub struct RegionDetail {
    /// The region's metadata (predicate, counts, cluster).
    pub region: crate::map::Region,
    /// Up to `sample_rows` example tuples from the region.
    pub examples: Table,
    /// The cluster's representative (medoid) tuple, when available.
    pub medoid: Option<Vec<blaeu_store::Value>>,
}

/// An interactive exploration session over one table.
#[derive(Debug, Clone)]
pub struct Explorer {
    base: Arc<Table>,
    themes: Arc<ThemeSet>,
    config: ExplorerConfig,
    stack: Vec<ExplorerState>,
    /// Optional analysis memoizer (the server tier's cache); `None`
    /// builds every analysis directly — observationally identical.
    memo: Option<Arc<dyn AnalysisMemo>>,
    /// The in-flight progressive ladder, if a [`Command::MapProgressive`]
    /// is mid-refinement. Any other command invalidates it: the ladder
    /// was planned for a state the session has since navigated away from.
    ladder: Option<ProgressiveMap>,
}

impl Explorer {
    /// Opens an explorer on a table: detects themes and initializes the
    /// root state (all rows, no active columns).
    ///
    /// # Errors
    /// Propagates theme-detection failures (e.g. too few columns).
    // lint: allow(view-discipline) — ownership transfer at the session boundary: the table moves into an Arc once, here
    pub fn open(table: Table, config: ExplorerConfig) -> Result<Self> {
        Explorer::open_shared(Arc::new(table), config)
    }

    /// Opens an explorer on an already-shared table without copying it —
    /// many concurrent sessions can explore one big table through their
    /// own views of the same column payloads.
    ///
    /// # Errors
    /// Propagates theme-detection failures (e.g. too few columns).
    pub fn open_shared(base: Arc<Table>, config: ExplorerConfig) -> Result<Self> {
        Explorer::open_shared_memoized(base, config, None)
    }

    /// [`Explorer::open_shared`] with an analysis memoizer: theme
    /// detection and every subsequent map build go through `memo`, so
    /// sessions sharing one memoizer share their cluster analyses. A hit
    /// returns the identical `Arc` a previous build produced — caching is
    /// invisible to results by construction.
    ///
    /// # Errors
    /// Propagates theme-detection failures (e.g. too few columns).
    pub fn open_shared_memoized(
        base: Arc<Table>,
        config: ExplorerConfig,
        memo: Option<Arc<dyn AnalysisMemo>>,
    ) -> Result<Self> {
        let view = TableView::new(Arc::clone(&base));
        let themes = match &memo {
            Some(memo) => memo.memo_themes(ThemesKey::new(&view, &config.themes), &mut || {
                detect_themes(&view, &config.themes)
            })?,
            None => Arc::new(detect_themes(&view, &config.themes)?),
        };
        let initial = ExplorerState {
            view,
            columns: Vec::new(),
            map: None,
            query: SelectProject::all(),
            breadcrumbs: vec![format!(
                "open {} ({} rows, {} cols)",
                base.name(),
                base.nrows(),
                base.ncols()
            )],
        };
        Ok(Explorer {
            base,
            themes,
            config,
            stack: vec![initial],
            memo,
            ladder: None,
        })
    }

    /// Builds (or memo-fetches) the map of `columns` over `view`.
    fn map_for(&self, view: &TableView, columns: &[&str]) -> Result<Arc<DataMap>> {
        self.map_for_config(view, columns, &self.config.mapper)
    }

    /// [`Explorer::map_for`] under an explicit mapper configuration — the
    /// progressive ladder's per-level entry point. Each level's config
    /// renders a distinct `Debug`, hence its own [`MapKey`]; the final
    /// level passes the session config verbatim and therefore shares the
    /// plain `Command::Map` cache entry.
    fn map_for_config(
        &self,
        view: &TableView,
        columns: &[&str],
        config: &MapperConfig,
    ) -> Result<Arc<DataMap>> {
        match &self.memo {
            Some(memo) => memo.memo_map(MapKey::new(view, columns, config), &mut || {
                build_map(view, columns, config)
            }),
            None => Ok(Arc::new(build_map(view, columns, config)?)),
        }
    }

    /// The detected themes, most cohesive first.
    pub fn themes(&self) -> &[Theme] {
        &self.themes.themes
    }

    /// The full theme-detection result (incl. the dependency graph).
    pub fn theme_set(&self) -> &ThemeSet {
        self.themes.as_ref()
    }

    /// The shared theme-detection result — handed to responses without
    /// copying (many queued clients share one `Arc`).
    pub fn theme_set_shared(&self) -> Arc<ThemeSet> {
        Arc::clone(&self.themes)
    }

    /// The base table.
    pub fn base(&self) -> &Table {
        &self.base
    }

    /// The current state.
    pub fn current(&self) -> &ExplorerState {
        self.stack.last().expect("stack never empty")
    }

    /// The current map.
    ///
    /// # Errors
    /// Returns [`BlaeuError::NoActiveMap`] before any theme is selected.
    pub fn map(&self) -> Result<&DataMap> {
        self.current().map.as_deref().ok_or(BlaeuError::NoActiveMap)
    }

    /// Number of states on the history stack.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    fn push_state(
        &mut self,
        view: TableView,
        columns: Vec<String>,
        map: Arc<DataMap>,
        query: SelectProject,
        crumb: String,
    ) {
        let mut breadcrumbs = self.current().breadcrumbs.clone();
        breadcrumbs.push(crumb);
        self.stack.push(ExplorerState {
            view,
            columns,
            map: Some(map),
            query,
            breadcrumbs,
        });
    }

    /// Selects a theme: builds a map of the current selection under the
    /// theme's columns.
    ///
    /// # Errors
    /// Returns [`BlaeuError::UnknownTheme`] for bad indices and propagates
    /// mapping failures.
    pub fn select_theme(&mut self, idx: usize) -> Result<&DataMap> {
        let theme = self
            .themes
            .themes
            .get(idx)
            .ok_or(BlaeuError::UnknownTheme(idx))?
            .clone();
        let columns: Vec<&str> = theme.columns.iter().map(String::as_str).collect();
        let view = self.current().view.clone();
        let map = self.map_for(&view, &columns)?;
        let query = self.current().query.clone().project(theme.columns.clone());
        self.push_state(
            view,
            theme.columns.clone(),
            map,
            query,
            format!("theme \"{}\" ({} columns)", theme.name, theme.columns.len()),
        );
        Ok(self.map().expect("just built"))
    }

    /// Zooms into a region of the current map: the selection narrows to
    /// the region's rows — an index re-map over the shared table, no
    /// gathering — and a fresh map is built on the same columns.
    ///
    /// # Errors
    /// Needs an active map and a valid region; zooming into an empty
    /// region yields [`BlaeuError::EmptySelection`].
    pub fn zoom(&mut self, region_id: usize) -> Result<&DataMap> {
        let state = self.current();
        let map = state.map.as_deref().ok_or(BlaeuError::NoActiveMap)?;
        let region = map.region(region_id)?.clone();
        // Zoom narrows the data itself, so a preview map (mid-ladder) must
        // not leak its routed subset into the new selection: resolve the
        // region's rows exactly through the tree.
        let rows = map.exact_rows_of(&state.view, region_id)?;
        if rows.is_empty() {
            return Err(BlaeuError::EmptySelection);
        }
        let new_view = state.view.select(&rows)?;
        let columns = state.columns.clone();
        let cols_ref: Vec<&str> = columns.iter().map(String::as_str).collect();
        let new_map = self.map_for(&new_view, &cols_ref)?;
        let query = state.query.clone().and_where(region.predicate.clone());
        let label = if region.description.is_empty() {
            format!("region #{region_id}")
        } else {
            region.description.join(" and ")
        };
        self.push_state(
            new_view,
            columns,
            new_map,
            query,
            format!("zoom into {label} ({} rows)", rows.len()),
        );
        Ok(self.map().expect("just built"))
    }

    /// Projects the current selection onto different columns (e.g. another
    /// theme): same rows, new map.
    ///
    /// # Errors
    /// Propagates mapping failures; unknown columns error out.
    pub fn project(&mut self, columns: &[&str]) -> Result<&DataMap> {
        if columns.is_empty() {
            return Err(BlaeuError::Invalid(
                "projection needs at least one column".to_owned(),
            ));
        }
        let view = self.current().view.clone();
        let map = self.map_for(&view, columns)?;
        let owned: Vec<String> = columns.iter().map(|&s| s.to_owned()).collect();
        let query = self.current().query.clone().project(owned.clone());
        self.push_state(
            view,
            owned.clone(),
            map,
            query,
            format!("project onto [{}]", owned.join(", ")),
        );
        Ok(self.map().expect("just built"))
    }

    /// Rebuilds the map of the current selection on the current columns,
    /// replacing the current state's map in place (depth unchanged) —
    /// the explicit "map this" request of the async protocol. The
    /// rebuild is deterministic, so the refreshed map equals the one it
    /// replaces; with a memoizer attached the request is the canonical
    /// cache hit.
    ///
    /// # Errors
    /// Returns [`BlaeuError::NoActiveMap`] before any theme is selected.
    pub fn remap(&mut self) -> Result<&DataMap> {
        let state = self.current();
        if state.columns.is_empty() {
            return Err(BlaeuError::NoActiveMap);
        }
        let view = state.view.clone();
        let columns = state.columns.clone();
        let cols_ref: Vec<&str> = columns.iter().map(String::as_str).collect();
        let map = self.map_for(&view, &cols_ref)?;
        self.stack.last_mut().expect("stack never empty").map = Some(map);
        Ok(self.map().expect("just rebuilt"))
    }

    /// Starts a progressive re-map of the current selection: plans the
    /// deterministic sample ladder for the current row count, builds
    /// level 0 (sized to resolve in milliseconds), replaces the current
    /// state's map in place and returns the level-0
    /// [`Response::MapDelta`]. When the schedule has further rungs the
    /// ladder stays armed and [`Explorer::map_refine`] runs them; the
    /// final rung rebuilds under the session configuration verbatim, so
    /// its map — and digest — equal a plain [`Explorer::remap`].
    ///
    /// # Errors
    /// Returns [`BlaeuError::NoActiveMap`] before any theme is selected.
    pub fn map_progressive(&mut self) -> Result<Response> {
        if self.current().columns.is_empty() {
            return Err(BlaeuError::NoActiveMap);
        }
        let mut ladder = ProgressiveMap::new(self.current().view.nrows(), &self.config.mapper);
        let level = ladder.next_level().expect("schedule never empty");
        self.run_rung(&mut ladder, level)
    }

    /// Runs one pending rung of the in-flight progressive ladder
    /// (level `level` must be the next scheduled one). The session
    /// server re-enqueues these between other work; any non-refine
    /// command executed in between disarms the ladder.
    ///
    /// # Errors
    /// Returns [`BlaeuError::Invalid`] when no ladder is armed or the
    /// level is out of order.
    pub fn map_refine(&mut self, level: usize) -> Result<Response> {
        let mut ladder = self.ladder.take().ok_or_else(|| {
            BlaeuError::Invalid(format!(
                "refinement level {level} without an in-flight progressive map"
            ))
        })?;
        self.run_rung(&mut ladder, level)
    }

    /// Builds one ladder level, folds it into the delta stream, and
    /// replaces the current map in place (depth unchanged, like remap).
    fn run_rung(&mut self, ladder: &mut ProgressiveMap, level: usize) -> Result<Response> {
        if ladder.next_level() != Some(level) {
            return Err(BlaeuError::Invalid(format!(
                "refinement level {level} out of order (expected {:?})",
                ladder.next_level()
            )));
        }
        let state = self.current();
        let view = state.view.clone();
        let columns = state.columns.clone();
        let cols_ref: Vec<&str> = columns.iter().map(String::as_str).collect();
        let config = ladder.config_for(level)?;
        let map = self.map_for_config(&view, &cols_ref, &config)?;
        let delta = ladder.complete(level, &map)?;
        self.stack.last_mut().expect("stack never empty").map = Some(Arc::clone(&map));
        if !ladder.is_finished() {
            self.ladder = Some(ladder.clone());
        }
        Ok(Response::MapDelta { map, delta })
    }

    /// Projects onto the columns of theme `idx`.
    ///
    /// # Errors
    /// Returns [`BlaeuError::UnknownTheme`] for bad indices.
    pub fn project_theme(&mut self, idx: usize) -> Result<&DataMap> {
        let columns: Vec<String> = self
            .themes
            .themes
            .get(idx)
            .ok_or(BlaeuError::UnknownTheme(idx))?
            .columns
            .clone();
        let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
        self.project(&cols)
    }

    /// Highlights a column: summaries, histograms and example values per
    /// leaf region of the current map. Read-only (no state change).
    ///
    /// # Errors
    /// Needs an active map and an existing column.
    pub fn highlight(&self, column: &str) -> Result<Highlight> {
        let state = self.current();
        let map = state.map.as_deref().ok_or(BlaeuError::NoActiveMap)?;
        state.view.col_by_name(column)?;
        let mut regions = Vec::new();
        for leaf in map.leaves() {
            let rows = map.rows_of(leaf.id)?;
            let sub = state.view.select(&rows)?;
            let col = sub.col_by_name(column)?;
            let summary = describe(&col, 5);
            let hist = histogram(&col, 8);
            let examples = match &summary {
                ColumnSummary::Categorical(s) => {
                    s.top.iter().map(|(label, _)| label.clone()).collect()
                }
                ColumnSummary::Numeric(s) => {
                    if s.count == 0 {
                        Vec::new()
                    } else {
                        vec![
                            format!("min {:.2}", s.min),
                            format!("median {:.2}", s.median),
                            format!("max {:.2}", s.max),
                        ]
                    }
                }
            };
            regions.push(RegionHighlight {
                region: leaf.id,
                count: rows.len(),
                summary,
                histogram: hist,
                examples,
            });
        }
        Ok(Highlight {
            column: column.to_owned(),
            regions,
        })
    }

    /// Bivariate highlight: a scatter density of two numeric columns per
    /// leaf region (the paper's "classic … bivariate visualization
    /// methods, such as … scatter-plots"). Read-only.
    ///
    /// # Errors
    /// Needs an active map, existing numeric columns.
    pub fn scatter(
        &self,
        x_column: &str,
        y_column: &str,
        bins: usize,
    ) -> Result<Vec<(usize, blaeu_stats::ScatterGrid)>> {
        let state = self.current();
        let map = state.map.as_deref().ok_or(BlaeuError::NoActiveMap)?;
        for col in [x_column, y_column] {
            let c = state.view.col_by_name(col)?;
            if !c.data_type().is_numeric() {
                return Err(BlaeuError::Invalid(format!(
                    "scatter needs numeric columns; {col:?} is {}",
                    c.data_type()
                )));
            }
        }
        let bins = bins.clamp(2, 64);
        let mut out = Vec::new();
        for leaf in map.leaves() {
            let rows = map.rows_of(leaf.id)?;
            let sub = state.view.select(&rows)?;
            let x = sub.col_by_name(x_column)?;
            let y = sub.col_by_name(y_column)?;
            out.push((leaf.id, blaeu_stats::ScatterGrid::build(&x, &y, bins, bins)));
        }
        Ok(out)
    }

    /// Rolls back to the previous state.
    ///
    /// # Errors
    /// Returns [`BlaeuError::HistoryEmpty`] at the initial state.
    pub fn rollback(&mut self) -> Result<()> {
        if self.stack.len() <= 1 {
            return Err(BlaeuError::HistoryEmpty);
        }
        self.stack.pop();
        Ok(())
    }

    /// Rolls back to history position `depth` (1 = the initial state), so
    /// the whole trail is addressable, not just the last step.
    ///
    /// # Errors
    /// Returns [`BlaeuError::Invalid`] for positions outside the history.
    pub fn rollback_to(&mut self, depth: usize) -> Result<()> {
        if depth == 0 || depth > self.stack.len() {
            return Err(BlaeuError::Invalid(format!(
                "history position {depth} outside 1..={}",
                self.stack.len()
            )));
        }
        self.stack.truncate(depth);
        Ok(())
    }

    /// Detailed view of one region: its metadata, up to `sample_rows`
    /// example tuples, and the representative (medoid) tuple when the
    /// region's cluster has one — the paper's left info panel (Figure 6).
    ///
    /// # Errors
    /// Needs an active map and a valid region id.
    pub fn region_detail(&self, region_id: usize, sample_rows: usize) -> Result<RegionDetail> {
        let state = self.current();
        let map = state.map.as_deref().ok_or(BlaeuError::NoActiveMap)?;
        let region = map.region(region_id)?.clone();
        let rows = map.rows_of(region_id)?;
        let examples = state.example_rows(&rows, sample_rows)?;
        let medoid = map
            .medoid_rows
            .get(region.cluster)
            .map(|&m| state.view.row(m as usize))
            .transpose()?;
        Ok(RegionDetail {
            region,
            examples,
            medoid,
        })
    }

    /// Writes the current selection (all rows and columns of the active
    /// view) as CSV — so an exploration result can leave the tool. Rows
    /// stream straight from the shared columns through the view's index
    /// map; no sub-table is materialized for the export.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn export_view_csv<W: std::io::Write>(&self, writer: W) -> Result<()> {
        blaeu_store::write_csv_view(
            &self.current().view,
            writer,
            &blaeu_store::CsvOptions::default(),
        )?;
        Ok(())
    }

    /// Renders the accumulated implicit query as SQL against the base
    /// table.
    pub fn sql(&self) -> String {
        self.current().query.to_sql(self.base.name())
    }

    /// Label columns of the base table (handy highlight targets).
    pub fn label_columns(&self) -> Vec<&str> {
        self.base
            .schema()
            .fields()
            .iter()
            .filter(|f| f.role == ColumnRole::Label)
            .map(|f| f.name.as_str())
            .collect()
    }

    /// The action trail of the current state.
    pub fn breadcrumbs(&self) -> &[String] {
        &self.current().breadcrumbs
    }

    /// The shared map of the current state.
    fn current_map_shared(&self) -> Result<Arc<DataMap>> {
        self.current().map.clone().ok_or(BlaeuError::NoActiveMap)
    }

    /// Executes one queued [`Command`] against this session — the async
    /// session tier's single entry point. Every navigational method maps
    /// to exactly one command, so a session is fully drivable as a FIFO
    /// command pipeline.
    ///
    /// # Errors
    /// Exactly the errors of the underlying method (unknown theme/region,
    /// no active map, empty history, …).
    pub fn execute(&mut self, command: &Command) -> Result<Response> {
        // Any command but a refine supersedes an in-flight ladder: its
        // remaining rungs were planned for a state this command may
        // navigate away from. (`MapProgressive` re-arms a fresh one.)
        if !matches!(command, Command::MapRefine { .. }) {
            self.ladder = None;
        }
        match command {
            Command::SelectTheme(idx) => {
                self.select_theme(*idx)?;
                Ok(Response::Map(self.current_map_shared()?))
            }
            Command::Zoom(region) => {
                self.zoom(*region)?;
                Ok(Response::Map(self.current_map_shared()?))
            }
            Command::Map => {
                self.remap()?;
                Ok(Response::Map(self.current_map_shared()?))
            }
            Command::MapProgressive => self.map_progressive(),
            Command::MapRefine { level } => self.map_refine(*level),
            Command::Project(columns) => {
                let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
                self.project(&cols)?;
                Ok(Response::Map(self.current_map_shared()?))
            }
            Command::ProjectTheme(idx) => {
                self.project_theme(*idx)?;
                Ok(Response::Map(self.current_map_shared()?))
            }
            Command::Highlight(column) => {
                Ok(Response::Highlight(Box::new(self.highlight(column)?)))
            }
            Command::Scatter { x, y, bins } => Ok(Response::Scatter(self.scatter(x, y, *bins)?)),
            Command::RegionDetail {
                region,
                sample_rows,
            } => Ok(Response::RegionDetail(Box::new(
                self.region_detail(*region, *sample_rows)?,
            ))),
            Command::Rollback => {
                self.rollback()?;
                Ok(Response::Depth(self.depth()))
            }
            Command::RollbackTo(depth) => {
                self.rollback_to(*depth)?;
                Ok(Response::Depth(self.depth()))
            }
            Command::Themes => Ok(Response::Themes(self.theme_set_shared())),
            Command::Sql => Ok(Response::Sql(self.sql())),
            Command::Breadcrumbs => Ok(Response::Breadcrumbs(self.breadcrumbs().to_vec())),
            Command::Depth => Ok(Response::Depth(self.depth())),
            Command::Sketch(op) => {
                // In-process fan-out: plan locally, run every canonical
                // shard, finalize — the exact sequence a coordinator
                // replays across workers, so digests agree by
                // construction.
                let plan = op.plan(&self.current().view)?;
                let partial = plan.run_range(0..plan.spec().shard_count(), 0);
                Ok(Response::Sketch(Box::new(op.finalize(partial)?)))
            }
        }
    }
}

/// Convenience: does this predicate mention the given column?
pub fn predicate_mentions(predicate: &Predicate, column: &str) -> bool {
    predicate.columns().iter().any(|c| c == column)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaeu_store::generate::{oecd, OecdConfig};

    fn small_explorer() -> Explorer {
        let (table, _) = oecd(&OecdConfig {
            nrows: 400,
            ncols: 24,
            missing_rate: 0.0,
            ..OecdConfig::default()
        })
        .unwrap();
        Explorer::open(table, ExplorerConfig::default()).unwrap()
    }

    #[test]
    fn open_detects_themes() {
        let ex = small_explorer();
        assert!(ex.themes().len() >= 2, "got {} themes", ex.themes().len());
        assert!(ex.map().is_err(), "no map before theme selection");
        assert_eq!(ex.depth(), 1);
        assert_eq!(ex.label_columns(), vec!["region", "country"]);
    }

    #[test]
    fn full_navigation_cycle() {
        let mut ex = small_explorer();

        // Select the theme containing the labor headline column.
        let labor_idx = ex
            .themes()
            .iter()
            .position(|t| t.columns.iter().any(|c| c == "pct_employees_long_hours"))
            .expect("labor theme detected");
        let map = ex.select_theme(labor_idx).unwrap();
        assert!(map.leaves().len() >= 2);
        let biggest = map
            .leaves()
            .iter()
            .max_by_key(|r| r.count)
            .map(|r| r.id)
            .unwrap();
        assert_eq!(ex.depth(), 2);

        // Zoom into the largest leaf.
        let before_rows = ex.current().view.nrows();
        ex.zoom(biggest).unwrap();
        let after_rows = ex.current().view.nrows();
        assert!(after_rows < before_rows);
        assert_eq!(ex.depth(), 3);

        // Highlight the country label.
        let hl = ex.highlight("country").unwrap();
        assert_eq!(hl.column, "country");
        assert!(!hl.regions.is_empty());
        for r in &hl.regions {
            assert!(r.count > 0);
            assert!(!r.examples.is_empty());
        }

        // Project onto another theme.
        let other = (0..ex.themes().len()).find(|&i| i != labor_idx).unwrap();
        ex.project_theme(other).unwrap();
        assert_eq!(ex.depth(), 4);
        assert_eq!(ex.current().view.nrows(), after_rows, "same rows");

        // Roll all the way back.
        ex.rollback().unwrap();
        ex.rollback().unwrap();
        ex.rollback().unwrap();
        assert_eq!(ex.depth(), 1);
        assert!(matches!(ex.rollback(), Err(BlaeuError::HistoryEmpty)));
    }

    #[test]
    fn rollback_restores_exact_state() {
        let mut ex = small_explorer();
        let crumbs_before = ex.breadcrumbs().to_vec();
        let rows_before = ex.current().view.nrows();
        let sql_before = ex.sql();

        ex.select_theme(0).unwrap();
        let map = ex.map().unwrap();
        let some_leaf = map.leaves()[0].id;
        ex.zoom(some_leaf).unwrap();
        ex.rollback().unwrap();
        ex.rollback().unwrap();

        assert_eq!(ex.breadcrumbs(), crumbs_before.as_slice());
        assert_eq!(ex.current().view.nrows(), rows_before);
        assert_eq!(ex.sql(), sql_before);
    }

    #[test]
    fn sql_accumulates_selections() {
        let mut ex = small_explorer();
        assert!(ex.sql().starts_with("SELECT * FROM"));
        ex.select_theme(0).unwrap();
        assert!(ex.sql().contains("SELECT \""), "projection rendered");
        let map = ex.map().unwrap();
        // Zoom into a non-root leaf to gain a WHERE clause.
        let leaf = map.leaves()[0].id;
        ex.zoom(leaf).unwrap();
        assert!(ex.sql().contains("WHERE"), "{}", ex.sql());
    }

    #[test]
    fn errors_for_bad_indices() {
        let mut ex = small_explorer();
        assert!(matches!(
            ex.select_theme(999),
            Err(BlaeuError::UnknownTheme(999))
        ));
        assert!(matches!(ex.zoom(0), Err(BlaeuError::NoActiveMap)));
        ex.select_theme(0).unwrap();
        assert!(matches!(ex.zoom(9999), Err(BlaeuError::UnknownRegion(_))));
        assert!(ex.highlight("no_such_column").is_err());
        assert!(ex.project(&[]).is_err());
    }

    #[test]
    fn highlight_numeric_column() {
        let mut ex = small_explorer();
        ex.select_theme(0).unwrap();
        let col = ex.current().columns[0].clone();
        let hl = ex.highlight(&col).unwrap();
        for r in &hl.regions {
            assert!(matches!(r.summary, ColumnSummary::Numeric(_)));
            assert_eq!(r.examples.len(), 3);
        }
    }

    #[test]
    fn predicate_mentions_helper() {
        let p = Predicate::lt("x", 3.0);
        assert!(predicate_mentions(&p, "x"));
        assert!(!predicate_mentions(&p, "y"));
    }

    #[test]
    fn rollback_to_jumps_through_history() {
        let mut ex = small_explorer();
        ex.select_theme(0).unwrap();
        let leaf = ex.map().unwrap().leaves()[0].id;
        ex.zoom(leaf).unwrap();
        assert_eq!(ex.depth(), 3);
        ex.rollback_to(1).unwrap();
        assert_eq!(ex.depth(), 1);
        assert!(ex.map().is_err());
        assert!(ex.rollback_to(0).is_err());
        assert!(ex.rollback_to(5).is_err());
        // rollback_to the current position is a no-op.
        ex.rollback_to(1).unwrap();
        assert_eq!(ex.depth(), 1);
    }

    #[test]
    fn progressive_execute_refines_to_exact() {
        let mut ex = small_explorer();
        ex.select_theme(0).unwrap();
        let exact = ex.execute(&Command::Map).unwrap().digest();

        let first = ex.execute(&Command::MapProgressive).unwrap();
        let Response::MapDelta { delta, .. } = &first else {
            panic!("expected a delta, got {first:?}");
        };
        assert_eq!(delta.level, 0);
        // 400 rows under the default 2000-row target: a real ladder.
        assert!(delta.levels >= 2, "schedule {:?}", delta.levels);
        let mut final_level = delta.final_level;
        let mut final_digest = delta.map_digest;
        let mut level = 1;
        while !final_level {
            let next = ex.execute(&Command::MapRefine { level }).unwrap();
            let Response::MapDelta { delta, .. } = &next else {
                panic!("expected a delta, got {next:?}");
            };
            assert_eq!(delta.level, level);
            final_level = delta.final_level;
            final_digest = delta.map_digest;
            level += 1;
        }
        // The final rung is byte-identical to the exact Command::Map.
        assert_eq!(final_digest, exact);
        // The current state's map IS the exact map now.
        assert_eq!(
            Response::Map(ex.current().map.clone().unwrap()).digest(),
            exact
        );
        // Refining past the end errors: the ladder is spent.
        assert!(ex.execute(&Command::MapRefine { level }).is_err());
    }

    #[test]
    fn superseding_command_disarms_the_ladder() {
        let mut ex = small_explorer();
        ex.select_theme(0).unwrap();
        let first = ex.execute(&Command::MapProgressive).unwrap();
        let Response::MapDelta { delta, .. } = &first else {
            panic!("expected a delta");
        };
        assert!(!delta.final_level, "need a pending rung for this test");
        // Any non-refine command invalidates the pending rungs…
        ex.execute(&Command::Sql).unwrap();
        assert!(matches!(
            ex.execute(&Command::MapRefine { level: 1 }),
            Err(BlaeuError::Invalid(_))
        ));
        // …and refining without ever starting a ladder errors too.
        assert!(ex.execute(&Command::MapRefine { level: 0 }).is_err());
        // Progressive before any theme: typed NoActiveMap.
        let mut fresh = small_explorer();
        assert!(matches!(
            fresh.execute(&Command::MapProgressive),
            Err(BlaeuError::NoActiveMap)
        ));
    }

    #[test]
    fn region_detail_shows_examples_and_medoid() {
        let mut ex = small_explorer();
        ex.select_theme(0).unwrap();
        let leaf = ex.map().unwrap().leaves()[0].clone();
        let detail = ex.region_detail(leaf.id, 5).unwrap();
        assert_eq!(detail.region.id, leaf.id);
        assert!(detail.examples.nrows() <= 5);
        assert!(detail.examples.nrows() > 0);
        assert_eq!(detail.examples.ncols(), ex.base().ncols());
        if let Some(medoid) = &detail.medoid {
            assert_eq!(medoid.len(), ex.base().ncols());
        }
        assert!(ex.region_detail(9999, 5).is_err());
    }

    #[test]
    fn scatter_per_region() {
        let mut ex = small_explorer();
        ex.select_theme(0).unwrap();
        let cols = ex.current().columns.clone();
        let grids = ex.scatter(&cols[0], &cols[1], 10).unwrap();
        assert_eq!(grids.len(), ex.map().unwrap().leaves().len());
        let total: usize = grids.iter().map(|(_, g)| g.total()).sum();
        assert_eq!(total, ex.current().view.nrows());
        // Errors for categorical or missing columns.
        assert!(ex.scatter("country", &cols[0], 10).is_err());
        assert!(ex.scatter("ghost", &cols[0], 10).is_err());
    }

    #[test]
    fn export_view_csv_roundtrips() {
        let mut ex = small_explorer();
        ex.select_theme(0).unwrap();
        let leaf = ex.map().unwrap().leaves()[0].id;
        ex.zoom(leaf).unwrap();
        let mut buf = Vec::new();
        ex.export_view_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed =
            blaeu_store::read_csv_str("export", &text, &blaeu_store::CsvOptions::default())
                .unwrap();
        assert_eq!(parsed.nrows(), ex.current().view.nrows());
        assert_eq!(parsed.ncols(), ex.current().view.ncols());
    }
}
