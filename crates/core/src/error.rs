//! Error type for the Blaeu core.

use std::fmt;

use blaeu_store::StoreError;

/// Errors raised by the exploration engine.
#[derive(Debug, Clone, PartialEq)]
pub enum BlaeuError {
    /// A storage-layer error.
    Store(StoreError),
    /// The requested theme index does not exist.
    UnknownTheme(usize),
    /// The requested region id does not exist in the current map.
    UnknownRegion(usize),
    /// An action needs a map, but none has been built yet.
    NoActiveMap,
    /// The current selection has no rows (or too few for the operation).
    EmptySelection,
    /// Nothing to roll back to.
    HistoryEmpty,
    /// The requested session does not exist (or was closed).
    UnknownSession(u64),
    /// The session's command queue is full — backpressure: the client
    /// must wait for in-flight commands before submitting more. Carries
    /// the queue's observed occupancy so clients can back off
    /// intelligently (e.g. wait for `pending - capacity + 1` responses
    /// before retrying).
    QueueFull {
        /// The session whose queue rejected the command.
        session: u64,
        /// Commands pending in the queue at rejection time.
        pending: usize,
        /// The queue's *effective* capacity — after the server clamps
        /// a zero-configured capacity up to 1, so clients always see
        /// the bound actually enforced.
        capacity: usize,
    },
    /// Invalid parameter or state, with an explanation.
    Invalid(String),
}

impl fmt::Display for BlaeuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlaeuError::Store(e) => write!(f, "storage error: {e}"),
            BlaeuError::UnknownTheme(i) => write!(f, "unknown theme index: {i}"),
            BlaeuError::UnknownRegion(i) => write!(f, "unknown region id: {i}"),
            BlaeuError::NoActiveMap => f.write_str("no active map (select a theme first)"),
            BlaeuError::EmptySelection => f.write_str("the current selection holds no rows"),
            BlaeuError::HistoryEmpty => f.write_str("nothing to roll back to"),
            BlaeuError::UnknownSession(id) => write!(f, "unknown session: {id}"),
            BlaeuError::QueueFull {
                session,
                pending,
                capacity,
            } => write!(
                f,
                "session {session} command queue is full ({pending} pending of {capacity})"
            ),
            BlaeuError::Invalid(msg) => write!(f, "invalid operation: {msg}"),
        }
    }
}

impl std::error::Error for BlaeuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BlaeuError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for BlaeuError {
    fn from(e: StoreError) -> Self {
        BlaeuError::Store(e)
    }
}

impl BlaeuError {
    /// Wraps an I/O error (for callers writing exports).
    pub fn from_io(e: std::io::Error) -> Self {
        BlaeuError::Store(StoreError::from(e))
    }

    /// Stable machine-readable tag for this error variant — the `code`
    /// the wire tier puts in its error bodies and the journal records in
    /// replay-verified error outcomes. One tag per variant, never reused.
    pub fn kind(&self) -> &'static str {
        match self {
            BlaeuError::Store(_) => "store",
            BlaeuError::UnknownTheme(_) => "unknown_theme",
            BlaeuError::UnknownRegion(_) => "unknown_region",
            BlaeuError::NoActiveMap => "no_active_map",
            BlaeuError::EmptySelection => "empty_selection",
            BlaeuError::HistoryEmpty => "history_empty",
            BlaeuError::UnknownSession(_) => "unknown_session",
            BlaeuError::QueueFull { .. } => "queue_full",
            BlaeuError::Invalid(_) => "invalid",
        }
    }
}

/// Result alias for the core crate.
pub type Result<T> = std::result::Result<T, BlaeuError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(BlaeuError::NoActiveMap.to_string().contains("theme"));
        assert!(BlaeuError::UnknownRegion(3).to_string().contains('3'));
        let full = BlaeuError::QueueFull {
            session: 7,
            pending: 16,
            capacity: 16,
        };
        assert!(full.to_string().contains('7'));
        assert!(full.to_string().contains("16 pending of 16"));
        let e: BlaeuError = StoreError::ColumnNotFound("x".into()).into();
        assert!(e.to_string().contains("storage error"));
    }

    #[test]
    fn kinds_are_distinct_per_variant() {
        let variants = [
            BlaeuError::Store(StoreError::ColumnNotFound("x".into())),
            BlaeuError::UnknownTheme(0),
            BlaeuError::UnknownRegion(0),
            BlaeuError::NoActiveMap,
            BlaeuError::EmptySelection,
            BlaeuError::HistoryEmpty,
            BlaeuError::UnknownSession(0),
            BlaeuError::QueueFull {
                session: 0,
                pending: 1,
                capacity: 1,
            },
            BlaeuError::Invalid("x".into()),
        ];
        let kinds: std::collections::HashSet<&str> =
            variants.iter().map(BlaeuError::kind).collect();
        assert_eq!(kinds.len(), variants.len(), "kind tags must be unique");
        assert_eq!(BlaeuError::NoActiveMap.kind(), "no_active_map");
    }

    #[test]
    fn source_chains_store_errors() {
        use std::error::Error;
        let e: BlaeuError = StoreError::ColumnNotFound("x".into()).into();
        assert!(e.source().is_some());
        assert!(BlaeuError::HistoryEmpty.source().is_none());
    }
}
