//! The dependency graph (Figure 2 of the paper).
//!
//! "Blaeu generates a dependency graph, a weighted undirected graph in
//! which each vertex represents a column and each edge the statistical
//! dependency between two columns." This module wraps the pairwise
//! dependency matrix from `blaeu-stats` with graph-flavored accessors,
//! a Graphviz export and a terminal rendering.

use blaeu_stats::{dependency_matrix, DependencyMatrix, DependencyOptions};
use blaeu_store::TableView;

use crate::error::Result;

/// A weighted, undirected column-dependency graph.
#[derive(Debug, Clone)]
pub struct DependencyGraph {
    matrix: DependencyMatrix,
}

impl DependencyGraph {
    /// Builds the graph over the given columns of a view.
    ///
    /// # Errors
    /// Propagates unknown-column errors.
    pub fn build(view: &TableView, columns: &[&str], opts: &DependencyOptions) -> Result<Self> {
        Ok(DependencyGraph {
            matrix: dependency_matrix(view, columns, opts)?,
        })
    }

    /// Wraps an existing dependency matrix.
    pub fn from_matrix(matrix: DependencyMatrix) -> Self {
        DependencyGraph { matrix }
    }

    /// Vertex names.
    pub fn vertices(&self) -> &[String] {
        self.matrix.names()
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.matrix.len()
    }

    /// True when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.matrix.is_empty()
    }

    /// Edge weight between vertices `i` and `j`.
    pub fn weight(&self, i: usize, j: usize) -> f64 {
        self.matrix.get(i, j)
    }

    /// The underlying matrix (for clustering into themes).
    pub fn matrix(&self) -> &DependencyMatrix {
        &self.matrix
    }

    /// Edges with weight ≥ `threshold`, as `(i, j, weight)`, strongest first.
    pub fn edges_above(&self, threshold: f64) -> Vec<(usize, usize, f64)> {
        let n = self.matrix.len();
        let mut edges: Vec<(usize, usize, f64)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .map(|(i, j)| (i, j, self.matrix.get(i, j)))
            .filter(|&(_, _, w)| w >= threshold)
            .collect();
        edges.sort_by(|a, b| b.2.total_cmp(&a.2));
        edges
    }

    /// Graphviz DOT rendering (edges above `threshold`, weight as label).
    pub fn to_dot(&self, threshold: f64) -> String {
        let mut out = String::from("graph dependencies {\n");
        for name in self.vertices() {
            out.push_str(&format!("  \"{name}\";\n"));
        }
        for (i, j, w) in self.edges_above(threshold) {
            out.push_str(&format!(
                "  \"{}\" -- \"{}\" [label=\"{:.2}\", penwidth={:.1}];\n",
                self.vertices()[i],
                self.vertices()[j],
                w,
                1.0 + 4.0 * w
            ));
        }
        out.push_str("}\n");
        out
    }

    /// Terminal rendering: strongest edges as an adjacency list.
    pub fn render_text(&self, threshold: f64, max_edges: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Dependency graph: {} columns, threshold {threshold:.2}\n",
            self.len()
        ));
        for (i, j, w) in self.edges_above(threshold).into_iter().take(max_edges) {
            let bar = "─".repeat(1 + (w * 20.0) as usize);
            out.push_str(&format!(
                "  {:<28} {bar} {:.2} ─ {}\n",
                self.vertices()[i],
                w,
                self.vertices()[j]
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaeu_store::{Column, TableBuilder};

    fn table() -> TableView {
        // Two dependent pairs: (a, b) and (c, d); e independent.
        let a: Vec<f64> = (0..400).map(|i| i as f64 / 40.0).collect();
        let b: Vec<f64> = a.iter().map(|v| 3.0 * v - 1.0).collect();
        let c: Vec<f64> = (0..400).map(|i| ((i * 13 + 7) % 400) as f64).collect();
        let d: Vec<f64> = c.iter().map(|v| v * 0.5).collect();
        let e: Vec<f64> = (0..400).map(|i| ((i * 29 + 3) % 101) as f64).collect();
        TableBuilder::new("t")
            .column("a", Column::dense_f64(a))
            .unwrap()
            .column("b", Column::dense_f64(b))
            .unwrap()
            .column("c", Column::dense_f64(c))
            .unwrap()
            .column("d", Column::dense_f64(d))
            .unwrap()
            .column("e", Column::dense_f64(e))
            .unwrap()
            .build()
            .unwrap()
            .into()
    }

    #[test]
    fn builds_and_exposes_weights() {
        let t = table();
        let g = DependencyGraph::build(
            &t,
            &["a", "b", "c", "d", "e"],
            &DependencyOptions::default(),
        )
        .unwrap();
        assert_eq!(g.len(), 5);
        assert!(g.weight(0, 1) > 0.8, "a~b strong: {}", g.weight(0, 1));
        assert!(g.weight(2, 3) > 0.8, "c~d strong: {}", g.weight(2, 3));
        assert!(g.weight(0, 4) < 0.4, "a~e weak: {}", g.weight(0, 4));
    }

    #[test]
    fn edges_above_sorted_and_filtered() {
        let t = table();
        let g = DependencyGraph::build(
            &t,
            &["a", "b", "c", "d", "e"],
            &DependencyOptions::default(),
        )
        .unwrap();
        let edges = g.edges_above(0.7);
        assert!(edges.len() >= 2);
        assert!(edges.windows(2).all(|w| w[0].2 >= w[1].2));
        let pairs: Vec<(usize, usize)> = edges.iter().map(|&(i, j, _)| (i, j)).collect();
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(2, 3)));
    }

    #[test]
    fn dot_export_contains_vertices_and_edges() {
        let t = table();
        let g =
            DependencyGraph::build(&t, &["a", "b", "e"], &DependencyOptions::default()).unwrap();
        let dot = g.to_dot(0.5);
        assert!(dot.starts_with("graph dependencies {"));
        assert!(dot.contains("\"a\";"));
        assert!(dot.contains("\"a\" -- \"b\""));
        assert!(!dot.contains("\"a\" -- \"e\""), "weak edge filtered");
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn text_render_lists_strong_edges() {
        let t = table();
        let g = DependencyGraph::build(
            &t,
            &["a", "b", "c", "d", "e"],
            &DependencyOptions::default(),
        )
        .unwrap();
        let text = g.render_text(0.7, 10);
        assert!(text.contains('a') && text.contains('b'));
        assert!(text.contains("columns"));
    }
}
