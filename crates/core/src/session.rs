//! Session management — the NodeJS tier of the paper's architecture
//! (Figure 4), reduced to its essence: a thread-safe registry of
//! concurrently usable exploration sessions.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use blaeu_store::Table;

use crate::cache::AnalysisMemo;
use crate::error::{BlaeuError, Result};
use crate::explorer::{Explorer, ExplorerConfig};

/// Opaque session identifier.
pub type SessionId = u64;

/// A registry of live exploration sessions.
///
/// Sessions are independently lockable, so concurrent clients exploring
/// different sessions never contend; the registry lock is held only for
/// lookup and bookkeeping.
#[derive(Debug, Default)]
pub struct SessionManager {
    next_id: AtomicU64,
    sessions: RwLock<HashMap<SessionId, Arc<Mutex<Explorer>>>>,
}

impl SessionManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        SessionManager::default()
    }

    /// Opens a new session over `table`, returning its id.
    ///
    /// # Errors
    /// Propagates [`Explorer::open`] failures (e.g. too few columns).
    // lint: allow(view-discipline) — ownership transfer at the session boundary: the table moves into an Arc once, here
    pub fn create(&self, table: Table, config: ExplorerConfig) -> Result<SessionId> {
        self.create_shared(Arc::new(table), config)
    }

    /// Opens a new session over an already-shared table — the zero-copy
    /// path for many concurrent sessions over one big table: every session
    /// navigates its own views of the same column payloads, nothing is
    /// cloned per session.
    ///
    /// # Errors
    /// Propagates [`Explorer::open_shared`] failures (e.g. too few
    /// columns).
    pub fn create_shared(&self, table: Arc<Table>, config: ExplorerConfig) -> Result<SessionId> {
        self.register(Explorer::open_shared(table, config)?)
    }

    /// [`SessionManager::create_shared`] with an analysis memoizer: the
    /// session's theme detection and map builds go through `memo`, so
    /// sessions sharing one memoizer (the server tier's cache) share
    /// their cluster analyses.
    ///
    /// # Errors
    /// Propagates [`Explorer::open_shared_memoized`] failures.
    pub fn create_shared_memoized(
        &self,
        table: Arc<Table>,
        config: ExplorerConfig,
        memo: Arc<dyn AnalysisMemo>,
    ) -> Result<SessionId> {
        self.register(Explorer::open_shared_memoized(table, config, Some(memo))?)
    }

    fn register(&self, explorer: Explorer) -> Result<SessionId> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.sessions
            .write()
            .insert(id, Arc::new(Mutex::new(explorer)));
        Ok(id)
    }

    /// Re-opens a session under an *explicit* id — the journal-recovery
    /// path: a restarted server re-creates each journaled session under
    /// the id its clients already hold. Future [`SessionManager::create*`]
    /// ids are bumped past `id`, so restored and fresh sessions never
    /// collide.
    ///
    /// # Errors
    /// [`BlaeuError::Invalid`] when `id` is already live;
    /// explorer-open failures as [`SessionManager::create_shared_memoized`].
    pub fn restore_shared_memoized(
        &self,
        id: SessionId,
        table: Arc<Table>,
        config: ExplorerConfig,
        memo: Option<Arc<dyn AnalysisMemo>>,
    ) -> Result<()> {
        let explorer = Explorer::open_shared_memoized(table, config, memo)?;
        let mut sessions = self.sessions.write();
        if sessions.contains_key(&id) {
            return Err(BlaeuError::Invalid(format!(
                "cannot restore session {id}: the id is already live"
            )));
        }
        sessions.insert(id, Arc::new(Mutex::new(explorer)));
        self.next_id.fetch_max(id + 1, Ordering::Relaxed);
        Ok(())
    }

    /// Runs `f` with exclusive access to the session's explorer.
    ///
    /// # Errors
    /// Returns [`BlaeuError::UnknownSession`] for closed or bogus ids.
    pub fn with<R>(&self, id: SessionId, f: impl FnOnce(&mut Explorer) -> R) -> Result<R> {
        let handle = self
            .sessions
            .read()
            .get(&id)
            .cloned()
            .ok_or(BlaeuError::UnknownSession(id))?;
        let mut guard = handle.lock();
        Ok(f(&mut guard))
    }

    /// Runs `f` over several sessions in parallel on the shared executor,
    /// returning one result per id **in input order**.
    ///
    /// This is the session tier's fan-out primitive (the paper's NodeJS
    /// layer serving many clients at once). Each worker is flagged as an
    /// executor worker, so any parallel work a session triggers inside `f`
    /// — CLARA replicates, distance-matrix builds, dependency sweeps —
    /// degrades to sequential instead of multiplying thread counts.
    ///
    /// Sessions fan out with a steal grain of 1: one session's request is
    /// far too coarse to batch, and per-session latency varies (a slow map
    /// next to a fast highlight), so idle workers steal waiting sessions
    /// instead of being pinned to a pre-assigned block of ids.
    ///
    /// Unknown ids yield [`BlaeuError::UnknownSession`] in their slot
    /// without affecting the other sessions.
    pub fn par_with<R, F>(&self, ids: &[SessionId], f: F) -> Vec<Result<R>>
    where
        R: Send,
        F: Fn(SessionId, &mut Explorer) -> R + Sync,
    {
        blaeu_exec::par_map_grained(ids, 0, 1, |_, &id| self.with(id, |ex| f(id, ex)))
    }

    /// Closes a session.
    ///
    /// # Errors
    /// Returns [`BlaeuError::UnknownSession`] when absent.
    pub fn close(&self, id: SessionId) -> Result<()> {
        self.sessions
            .write()
            .remove(&id)
            .map(|_| ())
            .ok_or(BlaeuError::UnknownSession(id))
    }

    /// Ids of all live sessions, ascending — callers can rely on the
    /// order (no call-site sorting needed).
    pub fn ids(&self) -> Vec<SessionId> {
        // lint: allow(digest-determinism) — hash order cannot leak: the ids are sorted on the next line before return
        let mut ids: Vec<SessionId> = self.sessions.read().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.read().len()
    }

    /// True when no session is live.
    pub fn is_empty(&self) -> bool {
        self.sessions.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaeu_store::generate::{oecd, OecdConfig};

    fn table() -> Table {
        oecd(&OecdConfig {
            nrows: 250,
            ncols: 24,
            missing_rate: 0.0,
            ..OecdConfig::default()
        })
        .unwrap()
        .0
    }

    #[test]
    fn create_use_close() {
        let mgr = SessionManager::new();
        assert!(mgr.is_empty());
        let id = mgr.create(table(), ExplorerConfig::default()).unwrap();
        assert_eq!(mgr.len(), 1);

        let n_themes = mgr.with(id, |ex| ex.themes().len()).unwrap();
        assert!(n_themes >= 2);

        mgr.close(id).unwrap();
        assert!(mgr.is_empty());
        assert!(matches!(
            mgr.with(id, |_| ()),
            Err(BlaeuError::UnknownSession(_))
        ));
        assert!(matches!(mgr.close(id), Err(BlaeuError::UnknownSession(_))));
    }

    #[test]
    fn sessions_are_isolated() {
        let mgr = SessionManager::new();
        let a = mgr.create(table(), ExplorerConfig::default()).unwrap();
        let b = mgr.create(table(), ExplorerConfig::default()).unwrap();
        assert_ne!(a, b);

        mgr.with(a, |ex| {
            ex.select_theme(0).unwrap();
        })
        .unwrap();

        let depth_a = mgr.with(a, |ex| ex.depth()).unwrap();
        let depth_b = mgr.with(b, |ex| ex.depth()).unwrap();
        assert_eq!(depth_a, 2);
        assert_eq!(depth_b, 1, "session b untouched");
    }

    #[test]
    fn concurrent_sessions() {
        let mgr = Arc::new(SessionManager::new());
        // One shared table allocation serves every session.
        let base = Arc::new(table());
        let mut ids = Vec::new();
        for _ in 0..4 {
            ids.push(
                mgr.create_shared(Arc::clone(&base), ExplorerConfig::default())
                    .unwrap(),
            );
        }
        let results = mgr.par_with(&ids, |_, ex| {
            for _ in 0..3 {
                ex.select_theme(0).unwrap();
                ex.rollback().unwrap();
            }
        });
        assert!(results.iter().all(std::result::Result::is_ok));
        assert_eq!(mgr.len(), 4);
        for &id in &ids {
            assert_eq!(mgr.with(id, |ex| ex.depth()).unwrap(), 1);
        }
    }

    #[test]
    fn par_with_reports_unknown_ids_in_order() {
        let mgr = SessionManager::new();
        let a = mgr.create(table(), ExplorerConfig::default()).unwrap();
        let bogus = a + 1000;
        let results = mgr.par_with(&[a, bogus], |id, _| id);
        assert_eq!(results.len(), 2);
        assert_eq!(*results[0].as_ref().unwrap(), a);
        assert!(matches!(results[1], Err(BlaeuError::UnknownSession(_))));
    }

    /// Regression test for nested-parallelism oversubscription: session
    /// workers must not multiply thread counts when the work they run is
    /// itself parallel (CLARA, matrix builds, dependency sweeps). The
    /// executor's nesting guard forces such inner calls sequential.
    ///
    /// The process budget is pinned to 4 for the duration of the test so
    /// the outer fan-out actually happens even on single-core machines.
    #[test]
    fn par_with_workers_run_inner_parallelism_sequentially() {
        blaeu_exec::set_thread_budget(4);
        // Restore auto-detection even if an assertion unwinds.
        struct ResetBudget;
        impl Drop for ResetBudget {
            fn drop(&mut self) {
                blaeu_exec::set_thread_budget(0);
            }
        }
        let _reset = ResetBudget;

        let mgr = SessionManager::new();
        let base = table();
        let ids: Vec<_> = (0..3)
            .map(|_| mgr.create(base.clone(), ExplorerConfig::default()).unwrap())
            .collect();
        let results = mgr.par_with(&ids, |_, ex| {
            assert!(
                blaeu_exec::in_parallel_region(),
                "session work must be flagged as executor-worker context"
            );
            // Anything parallel the explorer does from here (select_theme
            // runs CLARA + matrix builds underneath) must stay on this
            // worker's thread. Probe the executor directly:
            let inner_threads: std::collections::HashSet<std::thread::ThreadId> =
                blaeu_exec::par_map_range(32, 0, |_| std::thread::current().id())
                    .into_iter()
                    .collect();
            assert_eq!(inner_threads.len(), 1, "inner call must be sequential");
            ex.select_theme(0).unwrap();
            ex.depth()
        });
        for depth in results {
            assert_eq!(depth.unwrap(), 2);
        }
        assert!(!blaeu_exec::in_parallel_region());
    }

    #[test]
    fn restore_pins_id_and_bumps_allocator() {
        let mgr = SessionManager::new();
        let base = Arc::new(table());
        mgr.restore_shared_memoized(7, Arc::clone(&base), ExplorerConfig::default(), None)
            .unwrap();
        assert_eq!(mgr.ids(), vec![7]);
        // Restoring over a live id is a typed error, not an overwrite.
        assert!(matches!(
            mgr.restore_shared_memoized(7, Arc::clone(&base), ExplorerConfig::default(), None),
            Err(BlaeuError::Invalid(_))
        ));
        // Fresh sessions allocate past every restored id.
        let fresh = mgr
            .create_shared(Arc::clone(&base), ExplorerConfig::default())
            .unwrap();
        assert!(fresh > 7, "fresh id {fresh} must not collide with restored");
        // Restoring below the allocator is fine as long as the id is free.
        mgr.restore_shared_memoized(3, base, ExplorerConfig::default(), None)
            .unwrap();
        assert_eq!(mgr.ids(), vec![3, 7, fresh]);
    }

    #[test]
    fn ids_lists_sessions_sorted() {
        let mgr = SessionManager::new();
        let a = mgr.create(table(), ExplorerConfig::default()).unwrap();
        let b = mgr.create(table(), ExplorerConfig::default()).unwrap();
        // Ascending straight from the manager — no call-site sort.
        assert_eq!(mgr.ids(), vec![a.min(b), a.max(b)]);
    }
}
