//! Session management — the NodeJS tier of the paper's architecture
//! (Figure 4), reduced to its essence: a thread-safe registry of
//! concurrently usable exploration sessions.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use blaeu_store::Table;

use crate::error::{BlaeuError, Result};
use crate::explorer::{Explorer, ExplorerConfig};

/// Opaque session identifier.
pub type SessionId = u64;

/// A registry of live exploration sessions.
///
/// Sessions are independently lockable, so concurrent clients exploring
/// different sessions never contend; the registry lock is held only for
/// lookup and bookkeeping.
#[derive(Debug, Default)]
pub struct SessionManager {
    next_id: AtomicU64,
    sessions: RwLock<HashMap<SessionId, Arc<Mutex<Explorer>>>>,
}

impl SessionManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        SessionManager::default()
    }

    /// Opens a new session over `table`, returning its id.
    ///
    /// # Errors
    /// Propagates [`Explorer::open`] failures (e.g. too few columns).
    pub fn create(&self, table: Table, config: ExplorerConfig) -> Result<SessionId> {
        let explorer = Explorer::open(table, config)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.sessions
            .write()
            .insert(id, Arc::new(Mutex::new(explorer)));
        Ok(id)
    }

    /// Runs `f` with exclusive access to the session's explorer.
    ///
    /// # Errors
    /// Returns [`BlaeuError::UnknownSession`] for closed or bogus ids.
    pub fn with<R>(&self, id: SessionId, f: impl FnOnce(&mut Explorer) -> R) -> Result<R> {
        let handle = self
            .sessions
            .read()
            .get(&id)
            .cloned()
            .ok_or(BlaeuError::UnknownSession(id))?;
        let mut guard = handle.lock();
        Ok(f(&mut guard))
    }

    /// Closes a session.
    ///
    /// # Errors
    /// Returns [`BlaeuError::UnknownSession`] when absent.
    pub fn close(&self, id: SessionId) -> Result<()> {
        self.sessions
            .write()
            .remove(&id)
            .map(|_| ())
            .ok_or(BlaeuError::UnknownSession(id))
    }

    /// Ids of all live sessions (unordered).
    pub fn ids(&self) -> Vec<SessionId> {
        self.sessions.read().keys().copied().collect()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.read().len()
    }

    /// True when no session is live.
    pub fn is_empty(&self) -> bool {
        self.sessions.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaeu_store::generate::{oecd, OecdConfig};

    fn table() -> Table {
        oecd(&OecdConfig {
            nrows: 250,
            ncols: 24,
            missing_rate: 0.0,
            ..OecdConfig::default()
        })
        .unwrap()
        .0
    }

    #[test]
    fn create_use_close() {
        let mgr = SessionManager::new();
        assert!(mgr.is_empty());
        let id = mgr.create(table(), ExplorerConfig::default()).unwrap();
        assert_eq!(mgr.len(), 1);

        let n_themes = mgr.with(id, |ex| ex.themes().len()).unwrap();
        assert!(n_themes >= 2);

        mgr.close(id).unwrap();
        assert!(mgr.is_empty());
        assert!(matches!(
            mgr.with(id, |_| ()),
            Err(BlaeuError::UnknownSession(_))
        ));
        assert!(matches!(mgr.close(id), Err(BlaeuError::UnknownSession(_))));
    }

    #[test]
    fn sessions_are_isolated() {
        let mgr = SessionManager::new();
        let a = mgr.create(table(), ExplorerConfig::default()).unwrap();
        let b = mgr.create(table(), ExplorerConfig::default()).unwrap();
        assert_ne!(a, b);

        mgr.with(a, |ex| {
            ex.select_theme(0).unwrap();
        })
        .unwrap();

        let depth_a = mgr.with(a, |ex| ex.depth()).unwrap();
        let depth_b = mgr.with(b, |ex| ex.depth()).unwrap();
        assert_eq!(depth_a, 2);
        assert_eq!(depth_b, 1, "session b untouched");
    }

    #[test]
    fn concurrent_sessions() {
        let mgr = Arc::new(SessionManager::new());
        let base = table();
        let mut ids = Vec::new();
        for _ in 0..4 {
            ids.push(mgr.create(base.clone(), ExplorerConfig::default()).unwrap());
        }
        crossbeam::scope(|scope| {
            for &id in &ids {
                let mgr = Arc::clone(&mgr);
                scope.spawn(move |_| {
                    for _ in 0..3 {
                        mgr.with(id, |ex| {
                            ex.select_theme(0).unwrap();
                            ex.rollback().unwrap();
                        })
                        .unwrap();
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(mgr.len(), 4);
        for &id in &ids {
            assert_eq!(mgr.with(id, |ex| ex.depth()).unwrap(), 1);
        }
    }

    #[test]
    fn ids_lists_sessions() {
        let mgr = SessionManager::new();
        let a = mgr.create(table(), ExplorerConfig::default()).unwrap();
        let b = mgr.create(table(), ExplorerConfig::default()).unwrap();
        let mut ids = mgr.ids();
        ids.sort_unstable();
        assert_eq!(ids, vec![a, b]);
    }
}
