//! The mapping engine — Blaeu's three-stage pipeline (Figure 3).
//!
//! `sample → preprocess → cluster (PAM/CLARA, k by silhouette) → describe
//! (CART) → data map`. Each zoom re-runs the pipeline on the rows of the
//! zoomed region; sampling keeps every stage at interactive latency
//! regardless of the size of the underlying selection.

use blaeu_cluster::{
    clara, pam, select_k, silhouette_score, ClaraConfig, DistanceMatrix, KSelectConfig,
    McSilhouetteConfig, PamConfig, PamResult, Points,
};
use blaeu_store::{prefix_sample, TableView};
use blaeu_tree::{accuracy, CartConfig, DecisionTree, Node, PathConstraints};

use crate::error::{BlaeuError, Result};
use crate::map::{DataMap, Region};
use crate::preprocess::{preprocess, MetricChoice, PreprocessConfig};

/// How the number of clusters is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KChoice {
    /// Sweep `min..=max` and keep the best silhouette (the paper's method).
    Auto {
        /// Smallest k tried.
        min: usize,
        /// Largest k tried.
        max: usize,
    },
    /// Fixed k.
    Fixed(usize),
}

/// Configuration for [`build_map`].
#[derive(Debug, Clone)]
pub struct MapperConfig {
    /// Rows sampled from the view before clustering ("a few thousand
    /// samples" in the paper).
    pub sample_size: usize,
    /// Cluster-count policy.
    pub k: KChoice,
    /// Preprocessing settings.
    pub preprocess: PreprocessConfig,
    /// Distance metric for clustering.
    pub metric: MetricChoice,
    /// Above this many sampled rows, CLARA replaces exact PAM.
    pub clara_threshold: usize,
    /// CLARA settings (when used).
    pub clara: ClaraConfig,
    /// PAM settings.
    pub pam: PamConfig,
    /// Monte-Carlo silhouette settings (`None` = exact scoring).
    pub mc: Option<McSilhouetteConfig>,
    /// Decision-tree settings (depth bounds map readability).
    pub cart: CartConfig,
    /// Seed for sampling.
    pub seed: u64,
    /// When non-zero and smaller than the view, route only this many
    /// sampled rows through the fitted tree (instead of the full view) and
    /// scale region counts up from them. Produces a *preview* map
    /// ([`DataMap::is_preview`]): counts are estimates and stored
    /// memberships cover the preview rows only. Used by the intermediate
    /// rungs of the progressive ladder, where paying a full-view pass per
    /// rung would defeat the point of answering early. `0` = exact.
    pub assign_preview: usize,
}

impl Default for MapperConfig {
    fn default() -> Self {
        MapperConfig {
            sample_size: 2000,
            k: KChoice::Auto { min: 2, max: 6 },
            preprocess: PreprocessConfig::default(),
            metric: MetricChoice::Gower,
            clara_threshold: 1000,
            clara: ClaraConfig::default(),
            pam: PamConfig::default(),
            mc: Some(McSilhouetteConfig::default()),
            cart: CartConfig::default(),
            seed: 42,
            assign_preview: 0,
        }
    }
}

impl MapperConfig {
    /// This configuration with only `sample_size` replaced — how the
    /// progressive ladder derives its intermediate rungs (which then also
    /// set `assign_preview`). Because every other field is untouched,
    /// rung configs render distinct `Debug` forms (distinct cache keys),
    /// and the final rung (which uses the base config verbatim) shares
    /// its analysis-cache key with a plain `Command::Map`.
    pub fn with_sample_size(&self, sample_size: usize) -> MapperConfig {
        MapperConfig {
            sample_size,
            ..self.clone()
        }
    }
}

/// Clusters the sampled points per the configuration.
fn cluster_sample(points: &Points, config: &MapperConfig) -> (PamResult, f64, usize) {
    match config.k {
        KChoice::Fixed(k) => {
            let k = k.clamp(1, points.len());
            let result = if points.len() > config.clara_threshold {
                clara(points, k, &config.clara)
            } else {
                let matrix = DistanceMatrix::from_points(points);
                let r = pam(&matrix, k, &config.pam);
                let sil = silhouette_score(&matrix, &r.labels);
                return (r, sil, k);
            };
            let sil = match &config.mc {
                Some(mc) => blaeu_cluster::mc_silhouette(points, &result.labels, mc),
                None => {
                    let matrix = DistanceMatrix::from_points(points);
                    silhouette_score(&matrix, &result.labels)
                }
            };
            (result, sil, k)
        }
        KChoice::Auto { min, max } => {
            let selection = select_k(
                points,
                &KSelectConfig {
                    k_min: min,
                    k_max: max,
                    clara_threshold: config.clara_threshold,
                    pam: config.pam.clone(),
                    clara: config.clara.clone(),
                    mc: config.mc.clone(),
                },
            );
            let k = selection.k;
            (selection.result, selection.silhouette, k)
        }
    }
}

/// Walks the fitted tree, emitting one [`Region`] per node in depth-first
/// pre-order, with counts from the full-view leaf assignment.
fn build_regions(tree: &DecisionTree, leaf_counts: &[usize], view_rows: usize) -> Vec<Region> {
    struct Walker<'a> {
        regions: Vec<Region>,
        leaf_counts: &'a [usize],
        view_rows: usize,
        next_leaf: usize,
    }

    impl Walker<'_> {
        /// Returns (region id, count).
        fn visit(
            &mut self,
            node: &Node,
            parent: Option<usize>,
            depth: usize,
            edge_label: String,
            constraints: &PathConstraints,
        ) -> (usize, usize) {
            let id = self.regions.len();
            // Reserve the slot so children get higher ids (pre-order).
            self.regions.push(Region {
                id,
                parent,
                children: Vec::new(),
                depth,
                edge_label,
                predicate: constraints.predicate(),
                description: constraints.describe(),
                count: 0,
                fraction: 0.0,
                cluster: node.majority_class(),
                leaf: None,
            });
            match node {
                Node::Leaf { .. } => {
                    let leaf = self.next_leaf;
                    self.next_leaf += 1;
                    let count = self.leaf_counts[leaf];
                    self.regions[id].leaf = Some(leaf);
                    self.regions[id].count = count;
                    self.regions[id].fraction = if self.view_rows > 0 {
                        count as f64 / self.view_rows as f64
                    } else {
                        0.0
                    };
                    (id, count)
                }
                Node::Internal {
                    rule, left, right, ..
                } => {
                    let mut count = 0usize;
                    let mut children = Vec::with_capacity(2);
                    for (child, went_left) in [(left, true), (right, false)] {
                        let mut next = constraints.clone();
                        next.apply(rule, went_left);
                        let label = if went_left {
                            rule.describe_left()
                        } else {
                            rule.describe_right()
                        };
                        let (cid, ccount) = self.visit(child, Some(id), depth + 1, label, &next);
                        children.push(cid);
                        count += ccount;
                    }
                    self.regions[id].children = children;
                    self.regions[id].count = count;
                    self.regions[id].fraction = if self.view_rows > 0 {
                        count as f64 / self.view_rows as f64
                    } else {
                        0.0
                    };
                    (id, count)
                }
            }
        }
    }

    let mut walker = Walker {
        regions: Vec::new(),
        leaf_counts,
        view_rows,
        next_leaf: 0,
    };
    walker.visit(tree.root(), None, 0, String::new(), &PathConstraints::new());
    walker.regions
}

/// Builds a data map for the given columns of the (already filtered) view.
///
/// # Errors
/// Fails on empty views, unknown columns, or degenerate inputs the
/// pipeline cannot cluster.
pub fn build_map(view: &TableView, columns: &[&str], config: &MapperConfig) -> Result<DataMap> {
    if view.nrows() == 0 {
        return Err(BlaeuError::EmptySelection);
    }
    if columns.is_empty() {
        return Err(BlaeuError::Invalid(
            "a map needs at least one column".to_owned(),
        ));
    }
    for &c in columns {
        view.col_by_name(c)?;
    }
    let n = view.nrows();

    // Stage 0: multi-scale sample of the view — a selection re-map, not a
    // gathered copy: the sampled rows are read through the index map.
    // Samples are nested (a k-sample is a prefix of one seeded shuffle
    // stream), so the progressive ladder's coarse maps preview the exact
    // one, and the O(k) prefix draw keeps small rungs from paying an
    // O(n) shuffle of the whole view.
    let sample_rows = prefix_sample(n, config.sample_size.max(1), config.seed);
    let sample = view.select(&sample_rows)?;

    // Stage 1: preprocess into vectors.
    let features = preprocess(&sample, columns, &config.preprocess)?;
    let points = features.into_points(config.metric);

    // Degenerate micro-selections: one cluster, single-region map.
    if points.len() < 4 {
        let labels = vec![0usize; sample.nrows()];
        let tree = DecisionTree::fit(&sample, columns, &labels, &config.cart)?;
        let assignments = tree.leaf_assignments(view)?;
        let leaf_rows = split_rows(&assignments, tree.n_leaves());
        let leaf_counts: Vec<usize> = leaf_rows.iter().map(Vec::len).collect();
        let regions = build_regions(&tree, &leaf_counts, n);
        return Ok(DataMap::new(
            columns.iter().map(|&s| s.to_owned()).collect(),
            1,
            0.0,
            sample.nrows(),
            n,
            n,
            1.0,
            Vec::new(),
            regions,
            leaf_rows,
            tree,
        ));
    }

    // Stage 2: cluster the sample; k by silhouette.
    let (clustering, silhouette, k) = cluster_sample(&points, config);

    // Stage 3: describe with a decision tree trained on the ORIGINAL
    // sampled tuples, cluster ids as classes.
    let tree = DecisionTree::fit(&sample, columns, &clustering.labels, &config.cart)?;
    let tree_fidelity = accuracy(&tree.predict(&sample)?, &clustering.labels);

    // Route rows through the tree: the whole view for exact maps, or a
    // larger prefix of the same sample stream for preview maps (so the
    // preview is a superset of the training sample and region counts are
    // scaled estimates rather than exact tallies).
    let preview = config.assign_preview;
    let (leaf_rows, leaf_counts, assigned_rows) = if preview > 0 && preview < n {
        let preview_rows = prefix_sample(n, preview.max(sample_rows.len()), config.seed);
        let preview_view = view.select(&preview_rows)?;
        let assignments = tree.leaf_assignments(&preview_view)?;
        let mut leaf_rows = vec![Vec::new(); tree.n_leaves()];
        for (i, &leaf) in assignments.iter().enumerate() {
            leaf_rows[leaf].push(preview_rows[i]);
        }
        let routed: Vec<usize> = leaf_rows.iter().map(Vec::len).collect();
        let counts = scale_counts(&routed, preview_rows.len(), n);
        (leaf_rows, counts, preview_rows.len())
    } else {
        let assignments = tree.leaf_assignments(view)?;
        let leaf_rows = split_rows(&assignments, tree.n_leaves());
        let counts: Vec<usize> = leaf_rows.iter().map(Vec::len).collect();
        (leaf_rows, counts, n)
    };
    let regions = build_regions(&tree, &leaf_counts, n);

    // Medoids: sample-local indices → view rows.
    let medoid_rows: Vec<u32> = clustering.medoids.iter().map(|&m| sample_rows[m]).collect();

    Ok(DataMap::new(
        columns.iter().map(|&s| s.to_owned()).collect(),
        k,
        silhouette,
        sample.nrows(),
        n,
        assigned_rows,
        tree_fidelity,
        medoid_rows,
        regions,
        leaf_rows,
        tree,
    ))
}

/// Scales per-leaf routed counts from `assigned` rows up to `total` view
/// rows so they still sum to exactly `total`: integer floor shares first,
/// then the shortfall goes to the largest remainders (ties toward the
/// lower leaf index — deterministic).
fn scale_counts(routed: &[usize], assigned: usize, total: usize) -> Vec<usize> {
    if assigned == 0 || assigned == total {
        return routed.to_vec();
    }
    let mut out: Vec<usize> = routed.iter().map(|&c| c * total / assigned).collect();
    let shortfall = total - out.iter().sum::<usize>();
    let mut by_remainder: Vec<(usize, usize)> = routed
        .iter()
        .enumerate()
        .map(|(leaf, &c)| (leaf, (c * total) % assigned))
        .collect();
    by_remainder.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for &(leaf, _) in by_remainder.iter().take(shortfall) {
        out[leaf] += 1;
    }
    out
}

fn split_rows(assignments: &[usize], n_leaves: usize) -> Vec<Vec<u32>> {
    let mut out = vec![Vec::new(); n_leaves];
    for (row, &leaf) in assignments.iter().enumerate() {
        out[leaf].push(row as u32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaeu_store::generate::{planted, PlantedConfig};
    use blaeu_store::{Column, TableBuilder};

    fn blob_table(n_per: usize) -> TableView {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for c in 0..3 {
            for i in 0..n_per {
                let jitter = ((i * 2654435761usize) % 100) as f64 / 100.0;
                x.push(c as f64 * 50.0 + jitter);
                y.push(c as f64 * -20.0 + jitter * 2.0);
            }
        }
        TableBuilder::new("blobs")
            .column("x", Column::dense_f64(x))
            .unwrap()
            .column("y", Column::dense_f64(y))
            .unwrap()
            .build()
            .unwrap()
            .into()
    }

    #[test]
    fn finds_three_blob_regions() {
        let t = blob_table(80);
        let map = build_map(&t, &["x", "y"], &MapperConfig::default()).unwrap();
        assert_eq!(map.k, 3, "silhouette should pick k=3");
        assert_eq!(map.leaves().len(), 3);
        assert!(map.silhouette > 0.7, "silhouette {}", map.silhouette);
        assert!(map.tree_fidelity > 0.98, "fidelity {}", map.tree_fidelity);
        let total: usize = map.leaves().iter().map(|r| r.count).sum();
        assert_eq!(total, t.nrows());
    }

    #[test]
    fn fixed_k_respected() {
        let t = blob_table(50);
        let map = build_map(
            &t,
            &["x", "y"],
            &MapperConfig {
                k: KChoice::Fixed(2),
                ..MapperConfig::default()
            },
        )
        .unwrap();
        assert_eq!(map.k, 2);
        assert!(map.leaves().len() <= 2);
    }

    #[test]
    fn sampling_still_covers_full_view() {
        let t = blob_table(300); // 900 rows, sample 200
        let map = build_map(
            &t,
            &["x", "y"],
            &MapperConfig {
                sample_size: 200,
                ..MapperConfig::default()
            },
        )
        .unwrap();
        assert_eq!(map.sample_size, 200);
        assert_eq!(map.view_rows, 900);
        let total: usize = map.leaves().iter().map(|r| r.count).sum();
        assert_eq!(total, 900, "every view row lands in exactly one leaf");
    }

    #[test]
    fn medoids_are_view_rows() {
        let t = blob_table(60);
        let map = build_map(&t, &["x", "y"], &MapperConfig::default()).unwrap();
        assert_eq!(map.medoid_rows.len(), map.k);
        for &m in &map.medoid_rows {
            assert!((m as usize) < t.nrows());
        }
    }

    #[test]
    fn tiny_view_single_region() {
        let t = blob_table(1); // 3 rows
        let map = build_map(&t, &["x", "y"], &MapperConfig::default()).unwrap();
        assert_eq!(map.k, 1);
        assert_eq!(map.root().count, 3);
    }

    #[test]
    fn empty_view_errors() {
        let t: TableView = TableBuilder::new("e")
            .column("x", Column::dense_f64(vec![]))
            .unwrap()
            .build()
            .unwrap()
            .into();
        assert!(matches!(
            build_map(&t, &["x"], &MapperConfig::default()),
            Err(BlaeuError::EmptySelection)
        ));
    }

    #[test]
    fn no_columns_errors() {
        let t = blob_table(10);
        assert!(build_map(&t, &[], &MapperConfig::default()).is_err());
        assert!(build_map(&t, &["ghost"], &MapperConfig::default()).is_err());
    }

    #[test]
    fn recovers_planted_clusters_on_generated_data() {
        let (table, truth) = planted(&PlantedConfig {
            nrows: 600,
            clusters: 3,
            cluster_sep: 5.0,
            ..PlantedConfig::default()
        })
        .unwrap();
        let columns: Vec<&str> = truth
            .theme_of_column
            .iter()
            .filter(|(_, t)| *t == 0)
            .map(|(c, _)| c.as_str())
            .collect();
        let table: TableView = table.into();
        let map = build_map(&table, &columns, &MapperConfig::default()).unwrap();
        // Region assignment should align with the planted labels.
        let mut region_labels = vec![0usize; table.nrows()];
        for leaf in map.leaves() {
            for row in map.rows_of(leaf.id).unwrap() {
                region_labels[row as usize] = leaf.cluster;
            }
        }
        let ari = blaeu_cluster::adjusted_rand_index(&region_labels, &truth.labels);
        assert!(ari > 0.8, "map should recover planted clusters, ARI {ari}");
    }

    #[test]
    fn deterministic() {
        let t = blob_table(40);
        let a = build_map(&t, &["x", "y"], &MapperConfig::default()).unwrap();
        let b = build_map(&t, &["x", "y"], &MapperConfig::default()).unwrap();
        assert_eq!(a.k, b.k);
        assert_eq!(a.silhouette, b.silhouette);
        assert_eq!(a.regions().len(), b.regions().len());
    }

    #[test]
    fn map_on_mixed_types() {
        let n = 200;
        let nums: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 1.0 } else { 100.0 })
            .collect();
        let cats: Vec<&str> = (0..n).map(|i| if i % 2 == 0 { "a" } else { "b" }).collect();
        let t: TableView = TableBuilder::new("mix")
            .column("num", Column::dense_f64(nums))
            .unwrap()
            .column("cat", Column::from_strs(cats.into_iter().map(Some)))
            .unwrap()
            .build()
            .unwrap()
            .into();
        let map = build_map(&t, &["num", "cat"], &MapperConfig::default()).unwrap();
        assert_eq!(map.k, 2);
        assert_eq!(map.leaves().len(), 2);
    }
}
