//! The session wire protocol: explorer actions as data.
//!
//! The async session tier turns every explorer interaction into a queued
//! [`Command`] answered by a typed [`Response`], so a session is a FIFO
//! command pipeline instead of a closure under a mutex. Commands are
//! plain serializable values ([`Command::to_json`] /
//! [`Command::from_json`] round-trip through the wire format a web
//! client would speak); responses carry shared handles to the heavy
//! results (maps, theme sets) so queueing never copies an analysis.
//!
//! [`Response::digest`] condenses a response to 64 bits with floats
//! compared *bit-exactly* (via `Debug`'s shortest-round-trip float
//! rendering), which is how the tests pin the invariants "per-session
//! response streams are identical across thread budgets" and "a cache
//! hit is identical to a miss".

use std::sync::Arc;

use serde_json::{json, Value};

use crate::error::{BlaeuError, Result};
use crate::explorer::{Highlight, RegionDetail};
use crate::map::DataMap;
use crate::render::json::{highlight_to_json, map_to_json, themes_to_json};
use crate::sketch::{SketchOp, SketchPartial, SketchResult};
use crate::themes::ThemeSet;

/// One queued explorer action.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Select theme `idx` and build its map (slow: full cluster
    /// analysis).
    SelectTheme(usize),
    /// Zoom into region `id` of the current map (slow: re-maps the
    /// region's rows).
    Zoom(usize),
    /// Re-map the current selection on the current columns (slow; the
    /// canonical cacheable request — repeated `Map`s of the same state
    /// hit the analysis cache).
    Map,
    /// Progressive re-map: build level 0 of the deterministic sample
    /// ladder and answer immediately with its [`Response::MapDelta`];
    /// the remaining rungs run as [`Command::MapRefine`] follow-ups
    /// (re-enqueued by the session server) until the final level equals
    /// the exact [`Command::Map`] result bit-for-bit.
    MapProgressive,
    /// Run one pending rung of an in-flight progressive ladder. Issued
    /// by the session server's drain loop (and by journal replay), not
    /// normally by clients; refining out of order or without an active
    /// ladder is a typed error.
    MapRefine {
        /// The ladder level to build (must be the next pending rung).
        level: usize,
    },
    /// Project the current rows onto explicit columns (slow).
    Project(Vec<String>),
    /// Project onto the columns of theme `idx` (slow).
    ProjectTheme(usize),
    /// Column distributions per region (fast, read-only).
    Highlight(String),
    /// Scatter densities of two numeric columns per region (fast,
    /// read-only).
    Scatter {
        /// X-axis column.
        x: String,
        /// Y-axis column.
        y: String,
        /// Bins per axis (clamped to 2..=64).
        bins: usize,
    },
    /// Region metadata, example tuples and the medoid (fast, read-only).
    RegionDetail {
        /// Region id in the current map.
        region: usize,
        /// Example-tuple cap.
        sample_rows: usize,
    },
    /// Return to the previous state (fast).
    Rollback,
    /// Jump to history position `depth` (1 = initial state; fast).
    RollbackTo(usize),
    /// The detected themes (fast, read-only).
    Themes,
    /// The accumulated implicit query as SQL (fast, read-only).
    Sql,
    /// The action trail of the current state (fast, read-only).
    Breadcrumbs,
    /// Current history depth (fast, read-only).
    Depth,
    /// Run a mergeable sketch analysis over the current view (slow:
    /// sweeps the data). In-process sessions run every shard locally; a
    /// worker node runs only the shard range its coordinator assigned.
    Sketch(SketchOp),
}

/// Stamps `"v": WIRE_VERSION` onto an object — the versioned envelope
/// every wire and journal record carries, so the on-disk and on-wire
/// contracts are one schema and can evolve without guesswork.
fn with_envelope(mut value: Value) -> Value {
    if let Value::Object(map) = &mut value {
        map.insert("v".to_owned(), json!(Command::WIRE_VERSION));
    }
    value
}

impl Command {
    /// Version of the wire schema this build emits and accepts. Objects
    /// without a `"v"` field are legacy v1 bodies; objects with any
    /// other version are rejected with a typed error instead of being
    /// half-parsed.
    pub const WIRE_VERSION: u64 = 1;

    /// Longest string any wire field may carry (column names in practice
    /// are tens of bytes; anything bigger is hostile or broken input).
    pub const MAX_WIRE_STRING: usize = 4096;

    /// Most entries a wire `project` column list may carry.
    pub const MAX_WIRE_COLUMNS: usize = 1024;

    /// Parses a command from JSON *text* — the convenience the network
    /// transport and tests use. Parse errors (malformed JSON, absurd
    /// nesting depth, non-finite numbers) and shape errors both surface
    /// as [`BlaeuError::Invalid`] with the parser's line/column context.
    ///
    /// # Errors
    /// As [`Command::from_json`], plus positioned JSON parse errors.
    pub fn from_json_str(text: &str) -> Result<Command> {
        let value = serde_json::from_str(text)
            .map_err(|e| BlaeuError::Invalid(format!("malformed command JSON: {e}")))?;
        Command::from_json(&value)
    }

    /// True for commands that run a cluster analysis (map construction);
    /// everything else answers at interactive latency from session state.
    pub fn is_slow(&self) -> bool {
        matches!(
            self,
            Command::SelectTheme(_)
                | Command::Zoom(_)
                | Command::Map
                | Command::MapProgressive
                | Command::MapRefine { .. }
                | Command::Project(_)
                | Command::ProjectTheme(_)
                | Command::Sketch(_)
        )
    }

    /// Serializes the command to its wire form (a v1 envelope: the
    /// command object plus `"v": 1`).
    pub fn to_json(&self) -> Value {
        with_envelope(match self {
            Command::SelectTheme(idx) => json!({"cmd": "select_theme", "theme": *idx}),
            Command::Zoom(region) => json!({"cmd": "zoom", "region": *region}),
            Command::Map => json!({"cmd": "map"}),
            Command::MapProgressive => json!({"cmd": "map_progressive"}),
            Command::MapRefine { level } => json!({"cmd": "map_refine", "level": *level}),
            Command::Project(columns) => json!({"cmd": "project", "columns": columns.clone()}),
            Command::ProjectTheme(idx) => json!({"cmd": "project_theme", "theme": *idx}),
            Command::Highlight(column) => json!({"cmd": "highlight", "column": column.clone()}),
            Command::Scatter { x, y, bins } => {
                json!({"cmd": "scatter", "x": x.clone(), "y": y.clone(), "bins": *bins})
            }
            Command::RegionDetail {
                region,
                sample_rows,
            } => json!({"cmd": "region_detail", "region": *region, "sample_rows": *sample_rows}),
            Command::Rollback => json!({"cmd": "rollback"}),
            Command::RollbackTo(depth) => json!({"cmd": "rollback_to", "depth": *depth}),
            Command::Themes => json!({"cmd": "themes"}),
            Command::Sql => json!({"cmd": "sql"}),
            Command::Breadcrumbs => json!({"cmd": "breadcrumbs"}),
            Command::Depth => json!({"cmd": "depth"}),
            Command::Sketch(op) => json!({"cmd": "sketch", "op": op.to_json()}),
        })
    }

    /// Parses a command from its wire form.
    ///
    /// Wire input is adversarial: besides shape errors (unknown tags,
    /// missing fields), every field is type- and bounds-checked —
    /// indices must be non-negative integers that fit `usize` (floats,
    /// non-finite numbers and negatives are mistyped, not truncated),
    /// strings are capped at [`Command::MAX_WIRE_STRING`] bytes and the
    /// `project` column list at [`Command::MAX_WIRE_COLUMNS`] entries, so
    /// a hostile body cannot make the engine chase absurd allocations.
    ///
    /// # Errors
    /// Returns [`BlaeuError::Invalid`] for unknown or malformed commands;
    /// never panics, whatever the input.
    pub fn from_json(value: &Value) -> Result<Command> {
        if !value.is_object() {
            return Err(BlaeuError::Invalid(
                "a command must be a JSON object".into(),
            ));
        }
        // Envelope check first: a bare object (no "v") is a legacy v1
        // body; anything claiming a different — or mistyped — version is
        // rejected before its fields are looked at.
        if let Some(v) = value.get("v") {
            if v.as_u64() != Some(Self::WIRE_VERSION) {
                return Err(BlaeuError::Invalid(format!(
                    "unsupported wire version {v:?} (this build speaks v{})",
                    Self::WIRE_VERSION
                )));
            }
        }
        let cmd = value
            .get("cmd")
            .and_then(Value::as_str)
            .ok_or_else(|| BlaeuError::Invalid("command object needs a \"cmd\" field".into()))?;
        let index = |field: &str| -> Result<usize> {
            value
                .get(field)
                .and_then(Value::as_u64)
                .and_then(|v| usize::try_from(v).ok())
                .ok_or_else(|| {
                    BlaeuError::Invalid(format!(
                        "command {cmd:?} needs non-negative integer field {field:?}"
                    ))
                })
        };
        let text = |field: &str| -> Result<String> {
            let s = value.get(field).and_then(Value::as_str).ok_or_else(|| {
                BlaeuError::Invalid(format!("command {cmd:?} needs string field {field:?}"))
            })?;
            if s.len() > Self::MAX_WIRE_STRING {
                return Err(BlaeuError::Invalid(format!(
                    "command {cmd:?} field {field:?} exceeds {} bytes",
                    Self::MAX_WIRE_STRING
                )));
            }
            Ok(s.to_owned())
        };
        Ok(match cmd {
            "select_theme" => Command::SelectTheme(index("theme")?),
            "zoom" => Command::Zoom(index("region")?),
            "map" => Command::Map,
            "map_progressive" => Command::MapProgressive,
            "map_refine" => Command::MapRefine {
                level: index("level")?,
            },
            "project" => {
                let entries = value
                    .get("columns")
                    .and_then(Value::as_array)
                    .ok_or_else(|| {
                        BlaeuError::Invalid("command \"project\" needs a \"columns\" array".into())
                    })?;
                if entries.len() > Self::MAX_WIRE_COLUMNS {
                    return Err(BlaeuError::Invalid(format!(
                        "\"columns\" exceeds {} entries",
                        Self::MAX_WIRE_COLUMNS
                    )));
                }
                let columns = entries
                    .iter()
                    .map(|c| {
                        c.as_str()
                            .filter(|s| s.len() <= Self::MAX_WIRE_STRING)
                            .map(str::to_owned)
                            .ok_or_else(|| {
                                BlaeuError::Invalid(
                                    "\"columns\" entries must be bounded strings".into(),
                                )
                            })
                    })
                    .collect::<Result<Vec<String>>>()?;
                Command::Project(columns)
            }
            "project_theme" => Command::ProjectTheme(index("theme")?),
            "highlight" => Command::Highlight(text("column")?),
            "scatter" => Command::Scatter {
                x: text("x")?,
                y: text("y")?,
                bins: index("bins")?,
            },
            "region_detail" => Command::RegionDetail {
                region: index("region")?,
                sample_rows: index("sample_rows")?,
            },
            "rollback" => Command::Rollback,
            "rollback_to" => Command::RollbackTo(index("depth")?),
            "themes" => Command::Themes,
            "sql" => Command::Sql,
            "breadcrumbs" => Command::Breadcrumbs,
            "depth" => Command::Depth,
            "sketch" => {
                let op = value.get("op").ok_or_else(|| {
                    BlaeuError::Invalid("command \"sketch\" needs an \"op\" object".into())
                })?;
                Command::Sketch(SketchOp::from_json(op)?)
            }
            other => return Err(BlaeuError::Invalid(format!("unknown command {other:?}"))),
        })
    }
}

/// The typed answer to one [`Command`].
#[derive(Debug, Clone)]
pub enum Response {
    /// A (re)built map — shared, never copied per client.
    Map(Arc<DataMap>),
    /// One completed level of a progressive ladder: the level's full map
    /// (shared) plus the typed delta against the previous level. The
    /// final level's `delta.map_digest` equals the exact
    /// [`Response::Map`] digest verbatim.
    MapDelta {
        /// The map as of this level.
        map: Arc<DataMap>,
        /// What changed, which level, whether this is the exact one.
        delta: crate::progressive::RefinementDelta,
    },
    /// The detected themes.
    Themes(Arc<ThemeSet>),
    /// Per-region distributions of one column (boxed: the payload is an
    /// order of magnitude bigger than the other variants).
    Highlight(Box<Highlight>),
    /// Per-region scatter densities.
    Scatter(Vec<(usize, blaeu_stats::ScatterGrid)>),
    /// One region's metadata, examples and medoid (boxed, as above).
    RegionDetail(Box<RegionDetail>),
    /// The implicit query as SQL.
    Sql(String),
    /// The action trail.
    Breadcrumbs(Vec<String>),
    /// History depth after the action.
    Depth(usize),
    /// A finalized sketch analysis (boxed: assignment labels and
    /// dependency matrices are large).
    Sketch(Box<SketchResult>),
    /// A worker's partial sketch over its assigned shard range — merged
    /// by a coordinator, never shown to an end client.
    SketchPartial(Box<SketchPartial>),
}

impl Response {
    /// 64-bit FNV-1a digest of the full response content, with floats
    /// compared bit-exactly: `Debug` renders `f64` as its shortest
    /// round-trip decimal, so two responses digest equally iff every
    /// field — including every float — is identical. This is the anchor
    /// for the cache-purity and cross-thread-budget determinism tests.
    pub fn digest(&self) -> u64 {
        use std::fmt::Write as _;
        // Fold the Debug rendering into the hash as it is produced —
        // no materialized string, even for multi-megabyte map payloads.
        struct Fnv(u64);
        impl std::fmt::Write for Fnv {
            fn write_str(&mut self, s: &str) -> std::fmt::Result {
                for byte in s.bytes() {
                    self.0 ^= u64::from(byte);
                    self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
                }
                Ok(())
            }
        }
        let mut fnv = Fnv(0xcbf2_9ce4_8422_2325);
        write!(fnv, "{self:?}").expect("hashing writer never fails");
        fnv.0
    }

    /// Serializes the response to the JSON a web client would render
    /// (same v1 envelope as [`Command::to_json`]).
    pub fn to_json(&self) -> Value {
        with_envelope(match self {
            Response::Map(map) => json!({"response": "map", "map": map_to_json(map)}),
            Response::MapDelta { map, delta } => json!({
                // `kind: delta` is the stream discriminator the NDJSON
                // batch channel documents; clients patch the listed
                // regions in place instead of re-rendering the map.
                "response": "map_delta",
                "kind": "delta",
                "level": delta.level,
                "levels": delta.levels,
                "final": delta.final_level,
                "sample_size": delta.sample_size,
                "assigned_rows": map.assigned_rows,
                "n_regions": delta.n_regions,
                "map_digest": format!("{:016x}", delta.map_digest),
                "changed": delta.changed_regions.iter().map(|&id| {
                    match map.region(id) {
                        Ok(region) => crate::render::json::region_flat_json(region),
                        // A removed region: present in the previous
                        // level, absent now — the id alone tells the
                        // client to drop it.
                        Err(_) => json!({"id": id, "removed": true}),
                    }
                }).collect::<Vec<_>>(),
            }),
            Response::Themes(themes) => {
                json!({"response": "themes", "themes": themes_to_json(themes)})
            }
            Response::Highlight(hl) => {
                json!({"response": "highlight", "highlight": highlight_to_json(hl)})
            }
            Response::Scatter(grids) => json!({
                "response": "scatter",
                "regions": grids.iter().map(|(region, grid)| json!({
                    "region": *region,
                    "total": grid.total(),
                    "dropped": grid.dropped,
                })).collect::<Vec<_>>(),
            }),
            Response::RegionDetail(detail) => json!({
                "response": "region_detail",
                "region": detail.region.id,
                "count": detail.region.count,
                "description": detail.region.description.clone(),
                "examples": detail.examples.nrows(),
                "has_medoid": detail.medoid.is_some(),
            }),
            Response::Sql(sql) => json!({"response": "sql", "sql": sql.clone()}),
            Response::Breadcrumbs(crumbs) => {
                json!({"response": "breadcrumbs", "breadcrumbs": crumbs.clone()})
            }
            Response::Depth(depth) => json!({"response": "depth", "depth": *depth}),
            Response::Sketch(result) => {
                // A compact client-facing summary; the bit-exact payload
                // lives in the partial form coordinators exchange.
                let summary = match result.as_ref() {
                    SketchResult::Dep(dm) => json!({"kind": "dep", "columns": dm.len()}),
                    SketchResult::Describe(s) => json!({"kind": "describe", "count": s.count()}),
                    SketchResult::Histogram(h) => json!({"kind": "histogram", "total": h.total()}),
                    SketchResult::Assign { labels, .. } => {
                        json!({"kind": "assign", "rows": labels.len()})
                    }
                };
                json!({"response": "sketch", "sketch": summary})
            }
            Response::SketchPartial(partial) => {
                json!({"response": "sketch_partial", "sketch_partial": partial.to_json()})
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_commands() -> Vec<Command> {
        vec![
            Command::SelectTheme(2),
            Command::Zoom(5),
            Command::Map,
            Command::MapProgressive,
            Command::MapRefine { level: 2 },
            Command::Project(vec!["a".into(), "b".into()]),
            Command::ProjectTheme(1),
            Command::Highlight("country".into()),
            Command::Scatter {
                x: "x".into(),
                y: "y".into(),
                bins: 12,
            },
            Command::RegionDetail {
                region: 3,
                sample_rows: 7,
            },
            Command::Rollback,
            Command::RollbackTo(1),
            Command::Themes,
            Command::Sql,
            Command::Breadcrumbs,
            Command::Depth,
            Command::Sketch(SketchOp::DepMatrix {
                columns: vec!["a".into(), "b".into()],
            }),
            Command::Sketch(SketchOp::Describe {
                column: "c".into(),
                top_k: 5,
            }),
            Command::Sketch(SketchOp::Histogram {
                column: "c".into(),
                bins: 8,
            }),
            Command::Sketch(SketchOp::ClaraAssign {
                columns: vec!["a".into()],
                medoids: vec![0, 9],
            }),
        ]
    }

    #[test]
    fn commands_round_trip_through_json() {
        for cmd in all_commands() {
            let wire = cmd.to_json();
            let back = Command::from_json(&wire).unwrap();
            assert_eq!(cmd, back, "wire {wire:?}");
        }
    }

    #[test]
    fn wire_envelope_versioned_and_legacy_accepted() {
        // Every emitted object carries the envelope.
        for cmd in all_commands() {
            let wire = cmd.to_json();
            assert_eq!(
                wire.get("v").and_then(Value::as_u64),
                Some(Command::WIRE_VERSION),
                "missing envelope on {wire:?}"
            );
        }
        let depth = Response::Depth(3).to_json();
        assert_eq!(
            depth.get("v").and_then(Value::as_u64),
            Some(Command::WIRE_VERSION)
        );
        // Bare legacy objects (no "v") parse as v1.
        assert_eq!(
            Command::from_json(&json!({"cmd": "depth"})).unwrap(),
            Command::Depth
        );
        // Explicit v1 parses; unknown and mistyped versions are typed
        // Invalid errors, not half-parsed commands.
        assert_eq!(
            Command::from_json(&json!({"v": 1, "cmd": "depth"})).unwrap(),
            Command::Depth
        );
        for bad in [
            json!({"v": 2, "cmd": "depth"}),
            json!({"v": 0, "cmd": "depth"}),
            json!({"v": -1i64, "cmd": "depth"}),
            json!({"v": "1", "cmd": "depth"}),
            json!({"v": 1.5, "cmd": "depth"}),
            json!({"v": Value::Null, "cmd": "depth"}),
        ] {
            let err = Command::from_json(&bad).unwrap_err();
            match err {
                BlaeuError::Invalid(message) => {
                    assert!(message.contains("wire version"), "{message}")
                }
                other => panic!("wrong error for {bad:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_commands_rejected() {
        for bad in [
            json!({"theme": 1}),
            json!({"cmd": "warp"}),
            json!({"cmd": "zoom"}),
            json!({"cmd": "highlight", "column": 3}),
            json!({"cmd": "project", "columns": [1, 2]}),
            json!({"cmd": "project"}),
            // Mistyped indices must be rejected, not truncated: floats,
            // non-finite floats, negatives, and nested junk.
            json!({"cmd": "zoom", "region": 1.5}),
            json!({"cmd": "zoom", "region": f64::NAN}),
            json!({"cmd": "zoom", "region": f64::INFINITY}),
            json!({"cmd": "zoom", "region": -3i64}),
            json!({"cmd": "zoom", "region": json!([0])}),
            json!({"cmd": "select_theme", "theme": "0"}),
            json!({"cmd": 7}),
            json!(["cmd", "depth"]),
            json!("depth"),
            json!(null),
            json!({"cmd": "scatter", "x": "a", "y": "b", "bins": -1i64}),
            json!({"cmd": "sketch"}),
            json!({"cmd": "sketch", "op": json!({"op": "warp"})}),
            json!({"cmd": "sketch", "op": json!({"op": "describe", "column": "c"})}),
        ] {
            assert!(
                matches!(Command::from_json(&bad), Err(BlaeuError::Invalid(_))),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn oversized_wire_fields_rejected() {
        let huge = "x".repeat(Command::MAX_WIRE_STRING + 1);
        for bad in [
            json!({"cmd": "highlight", "column": huge.clone()}),
            json!({"cmd": "project", "columns": std::slice::from_ref(&huge)}),
            json!({"cmd": "project", "columns": vec!["c"; Command::MAX_WIRE_COLUMNS + 1]}),
        ] {
            assert!(
                matches!(Command::from_json(&bad), Err(BlaeuError::Invalid(_))),
                "accepted oversized field"
            );
        }
        // The bound itself is legal.
        let at_cap = json!({"cmd": "highlight", "column": "x".repeat(Command::MAX_WIRE_STRING)});
        assert!(Command::from_json(&at_cap).is_ok());
    }

    #[test]
    fn from_json_str_round_trips_and_reports_parse_errors() {
        for cmd in all_commands() {
            let text = serde_json::to_string(&cmd.to_json()).unwrap();
            assert_eq!(Command::from_json_str(&text).unwrap(), cmd);
        }
        for bad in [
            "",
            "{",
            "{\"cmd\": \"depth\"",
            "[1, 2",
            "depth",
            "{\"cmd\": }",
        ] {
            assert!(
                matches!(Command::from_json_str(bad), Err(BlaeuError::Invalid(_))),
                "accepted {bad:?}"
            );
        }
        // Hostile nesting depth errors instead of overflowing the stack.
        let mut deep = String::from("{\"cmd\": ");
        for _ in 0..50_000 {
            deep.push('[');
        }
        assert!(matches!(
            Command::from_json_str(&deep),
            Err(BlaeuError::Invalid(_))
        ));
    }

    #[test]
    fn slow_commands_classified() {
        assert!(Command::SelectTheme(0).is_slow());
        assert!(Command::Map.is_slow());
        assert!(Command::MapProgressive.is_slow());
        assert!(Command::MapRefine { level: 0 }.is_slow());
        assert!(Command::Zoom(0).is_slow());
        assert!(Command::Sketch(SketchOp::Describe {
            column: "c".into(),
            top_k: 1,
        })
        .is_slow());
        assert!(!Command::Highlight("c".into()).is_slow());
        assert!(!Command::Rollback.is_slow());
        assert!(!Command::Depth.is_slow());
    }

    #[test]
    fn digests_separate_distinct_responses() {
        let a = Response::Sql("SELECT 1".into());
        let b = Response::Sql("SELECT 2".into());
        assert_eq!(a.digest(), Response::Sql("SELECT 1".into()).digest());
        assert_ne!(a.digest(), b.digest());
        assert_ne!(Response::Depth(1).digest(), Response::Depth(2).digest());
    }
}
