//! Preprocessing — stage one of the mapping pipeline (Figure 3).
//!
//! "Blaeu removes the primary keys, it normalizes the continuous variables,
//! and it introduces dummy binary variables to represent the categorical
//! data. The result of this operation is a set of vectors, where each
//! vector represents a tuple in the database."
//!
//! Key columns are detected by role and by an all-distinct heuristic;
//! continuous columns are z-scored; categorical columns are one-hot encoded
//! (capped to the most frequent levels); missing values either propagate as
//! `NaN` (the distance metrics average over observed dimensions) or are
//! imputed with mean / mode.

use blaeu_cluster::{CatBlock, Metric, Points, CODE_NULL};
use blaeu_store::{ColumnRead, ColumnRole, DataType, TableView};

use crate::error::{BlaeuError, Result};

/// How missing cells reach the feature matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissingPolicy {
    /// Keep missing as `NaN`; metrics average over observed dims.
    Propagate,
    /// Replace with the column mean (numeric) or mode (categorical).
    Impute,
}

/// Which metric the produced [`Points`] carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricChoice {
    /// Gower dissimilarity (mixed data; the sensible default).
    Gower,
    /// Euclidean on the normalized features.
    Euclidean,
    /// Manhattan on the normalized features.
    Manhattan,
}

/// Configuration for [`preprocess`].
#[derive(Debug, Clone)]
pub struct PreprocessConfig {
    /// Missing-value policy.
    pub missing: MissingPolicy,
    /// Metric attached to the output points.
    pub metric: MetricChoice,
    /// Keep at most this many levels per categorical column (most frequent
    /// first); remaining levels collapse into one overflow dummy.
    pub max_categories: usize,
    /// Drop columns whose distinct count equals the row count (key
    /// heuristic) even when their role is `Attribute`.
    pub drop_unique_columns: bool,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            missing: MissingPolicy::Propagate,
            metric: MetricChoice::Gower,
            max_categories: 12,
            drop_unique_columns: true,
        }
    }
}

/// One output feature's provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureInfo {
    /// Feature name (e.g. `income` or `country=NL`).
    pub name: String,
    /// Source column in the table.
    pub source: String,
    /// True for dummy features born from categorical levels.
    pub categorical: bool,
}

/// The vector form of a table sample: `n × dims` features plus provenance.
///
/// Categorical source columns additionally keep their dictionary codes
/// beside the dummy-coded floats (`cat_blocks` / `cat_codes`), so the
/// distance kernels compare one `u32` per block instead of round-tripping
/// through the dummy floats.
#[derive(Debug, Clone)]
pub struct FeatureMatrix {
    /// Per-feature metadata, in dimension order.
    pub features: Vec<FeatureInfo>,
    /// Row-major data (`nrows × features.len()`).
    pub data: Vec<f64>,
    /// Number of rows.
    pub nrows: usize,
    /// Dummy-dimension blocks of the categorical source columns, in
    /// dimension order.
    pub cat_blocks: Vec<CatBlock>,
    /// `nrows × cat_blocks.len()` row-major mapped codes (position among
    /// the block's dummies; [`CODE_NULL`] for propagated missing values).
    pub cat_codes: Vec<u32>,
}

impl FeatureMatrix {
    /// Number of feature dimensions.
    pub fn dims(&self) -> usize {
        self.features.len()
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dims()..(i + 1) * self.dims()]
    }

    /// Converts into a clusterable point set with the configured metric.
    pub fn into_points(self, metric: MetricChoice) -> Points {
        let categorical: Vec<bool> = self.features.iter().map(|f| f.categorical).collect();
        let dims = self.features.len();
        let nrows = self.nrows;
        let metric = match metric {
            MetricChoice::Euclidean => Metric::Euclidean,
            MetricChoice::Manhattan => Metric::Manhattan,
            // Fit ranges straight from the flat matrix.
            MetricChoice::Gower => Metric::fit_gower_flat(&self.data, nrows, dims, categorical),
        };
        Points::from_flat_coded(
            self.data,
            nrows,
            dims,
            metric,
            self.cat_blocks,
            self.cat_codes,
        )
    }
}

/// Columns selected for analysis: attributes that are neither keys nor
/// labels, minus all-distinct pseudo-keys when configured.
pub fn analyzable_columns<'t>(view: &'t TableView, config: &PreprocessConfig) -> Vec<&'t str> {
    view.schema()
        .fields()
        .iter()
        .filter(|f| f.role == ColumnRole::Attribute)
        .filter(|f| {
            if !config.drop_unique_columns {
                return true;
            }
            let col = view.col_by_name(&f.name).expect("schema-listed");
            let n = view.nrows();
            // All-distinct integer or categorical columns are keys in
            // disguise; all-distinct floats are usually measures, keep them.
            !(n > 1
                && matches!(f.dtype, DataType::Int64 | DataType::Categorical)
                && col.null_count() == 0
                && col.distinct_count() == n)
        })
        .map(|f| f.name.as_str())
        .collect()
}

/// Mean and population standard deviation of a column's observed values,
/// streamed straight off the column — no intermediate `Vec<f64>` collect.
/// The sum and the centered second moment are accumulated in separate
/// sweeps (row order) so the result is bit-identical to the textbook
/// two-pass formula whatever the selection behind `col`.
fn numeric_stats<C: ColumnRead>(col: &C) -> (f64, f64) {
    let mut count = 0usize;
    let mut sum = 0.0f64;
    for i in 0..col.len() {
        if let Some(v) = col.numeric_at(i) {
            count += 1;
            sum += v;
        }
    }
    if count == 0 {
        return (0.0, 1.0);
    }
    let mean = sum / count as f64;
    let mut m2 = 0.0f64;
    for i in 0..col.len() {
        if let Some(v) = col.numeric_at(i) {
            m2 += (v - mean).powi(2);
        }
    }
    let std = (m2 / count as f64).sqrt();
    (mean, if std > 1e-12 { std } else { 1.0 })
}

/// Per-column encoding plan, resolved before any cell is written so the
/// output matrix can be filled row-major in place (no per-feature
/// staging vectors).
enum ColumnPlan {
    Numeric {
        mean: f64,
        std: f64,
    },
    Categorical {
        kept: Vec<usize>,
        overflow: bool,
        mode: Option<usize>,
    },
}

/// Runs the preprocessing pipeline over the named columns of a view.
///
/// Cells stream from the (possibly selection-backed) columns directly into
/// the row-major feature matrix: nothing is materialized per feature, and
/// zoomed selections are read through their index map in place.
///
/// # Errors
/// Returns an error for unknown columns or an empty view.
pub fn preprocess(
    view: &TableView,
    columns: &[&str],
    config: &PreprocessConfig,
) -> Result<FeatureMatrix> {
    if view.nrows() == 0 {
        return Err(BlaeuError::EmptySelection);
    }
    let n = view.nrows();

    // Pass 1: resolve every feature and its encoding parameters.
    let mut features: Vec<FeatureInfo> = Vec::new();
    let mut plans: Vec<ColumnPlan> = Vec::with_capacity(columns.len());
    for &name in columns {
        let col = view.col_by_name(name)?;
        match col.data_type() {
            DataType::Float64 | DataType::Int64 | DataType::Bool => {
                let (mean, std) = numeric_stats(&col);
                features.push(FeatureInfo {
                    name: name.to_owned(),
                    source: name.to_owned(),
                    categorical: false,
                });
                plans.push(ColumnPlan::Numeric { mean, std });
            }
            DataType::Categorical => {
                let dict = col.dictionary();
                // Rank levels by frequency, keep the top `max_categories`.
                let mut counts = vec![0usize; dict.len()];
                for i in 0..n {
                    if let Some(c) = col.code_at(i) {
                        counts[c as usize] += 1;
                    }
                }
                let mut order: Vec<usize> = (0..dict.len()).collect();
                order.sort_by(|&a, &b| counts[b].cmp(&counts[a]).then(a.cmp(&b)));
                let kept: Vec<usize> = order
                    .into_iter()
                    .filter(|&c| counts[c] > 0)
                    .take(config.max_categories.max(1))
                    .collect();
                let overflow =
                    kept.iter().map(|&c| counts[c]).sum::<usize>() < counts.iter().sum::<usize>();

                // Mode for imputation = most frequent kept level.
                let mode = kept.first().copied();

                for &cat in &kept {
                    features.push(FeatureInfo {
                        name: format!("{name}={}", dict[cat]),
                        source: name.to_owned(),
                        categorical: true,
                    });
                }
                if overflow {
                    features.push(FeatureInfo {
                        name: format!("{name}=<other>"),
                        source: name.to_owned(),
                        categorical: true,
                    });
                }
                plans.push(ColumnPlan::Categorical {
                    kept,
                    overflow,
                    mode,
                });
            }
        }
    }

    // Pass 2: stream cells straight into the row-major matrix. Categorical
    // columns also emit one mapped code per row (position among the
    // block's dummies), collected block-major first and interleaved into
    // the row-major `cat_codes` sidecar below.
    let dims = features.len();
    let mut data = vec![0.0f64; n * dims];
    let mut cat_blocks: Vec<CatBlock> = Vec::new();
    let mut block_codes: Vec<Vec<u32>> = Vec::new();
    let mut d = 0usize;
    for (&name, plan) in columns.iter().zip(&plans) {
        let col = view.col_by_name(name).expect("validated in pass 1");
        match plan {
            ColumnPlan::Numeric { mean, std } => {
                for i in 0..n {
                    data[i * dims + d] = match col.numeric_at(i) {
                        Some(v) => (v - mean) / std,
                        None => match config.missing {
                            MissingPolicy::Propagate => f64::NAN,
                            MissingPolicy::Impute => 0.0, // z-scored mean
                        },
                    };
                }
                d += 1;
            }
            ColumnPlan::Categorical {
                kept,
                overflow,
                mode,
            } => {
                let start = d;
                for &cat in kept {
                    for i in 0..n {
                        data[i * dims + d] = match col.code_at(i) {
                            Some(c) => f64::from(c as usize == cat),
                            None => match config.missing {
                                MissingPolicy::Propagate => f64::NAN,
                                MissingPolicy::Impute => f64::from(*mode == Some(cat)),
                            },
                        };
                    }
                    d += 1;
                }
                if *overflow {
                    for i in 0..n {
                        data[i * dims + d] = match col.code_at(i) {
                            Some(c) => f64::from(!kept.contains(&(c as usize))),
                            None => match config.missing {
                                MissingPolicy::Propagate => f64::NAN,
                                MissingPolicy::Impute => 0.0,
                            },
                        };
                    }
                    d += 1;
                }
                let len = d - start;
                if len > 0 {
                    // Dictionary code → position among this block's dummies
                    // (kept levels in order, overflow collapsing to one
                    // trailing slot). Equal mapped codes ⟺ equal dummy
                    // sub-vectors, the invariant the coded kernels need.
                    let overflow_slot = kept.len() as u32;
                    let mut code_map = vec![overflow_slot; col.dictionary().len()];
                    for (pos, &c) in kept.iter().enumerate() {
                        code_map[c] = pos as u32;
                    }
                    let codes: Vec<u32> = (0..n)
                        .map(|i| match col.code_at(i) {
                            Some(c) => code_map[c as usize],
                            None => match config.missing {
                                MissingPolicy::Propagate => CODE_NULL,
                                // Imputation writes the mode's dummy, which
                                // is the most frequent kept level: slot 0.
                                MissingPolicy::Impute => 0,
                            },
                        })
                        .collect();
                    cat_blocks.push(CatBlock { start, len });
                    block_codes.push(codes);
                }
            }
        }
    }
    debug_assert_eq!(d, dims, "every feature dimension filled");

    let nblocks = cat_blocks.len();
    let mut cat_codes = vec![0u32; n * nblocks];
    for (b, codes) in block_codes.iter().enumerate() {
        for (i, &c) in codes.iter().enumerate() {
            cat_codes[i * nblocks + b] = c;
        }
    }

    Ok(FeatureMatrix {
        features,
        data,
        nrows: n,
        cat_blocks,
        cat_codes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaeu_store::{Column, TableBuilder};

    fn table() -> TableView {
        TableBuilder::new("t")
            .column_with_role(
                "id",
                Column::dense_i64(vec![1, 2, 3, 4, 5, 6]),
                ColumnRole::Key,
            )
            .unwrap()
            .column_with_role(
                "name",
                Column::from_strs(["a", "b", "c", "d", "e", "f"].map(Some)),
                ColumnRole::Label,
            )
            .unwrap()
            .column(
                "income",
                Column::from_f64s([
                    Some(10.0),
                    Some(20.0),
                    Some(30.0),
                    Some(40.0),
                    None,
                    Some(50.0),
                ]),
            )
            .unwrap()
            .column(
                "city",
                Column::from_strs([
                    Some("ams"),
                    Some("ams"),
                    Some("nyc"),
                    Some("ams"),
                    Some("nyc"),
                    None,
                ]),
            )
            .unwrap()
            .column(
                "code",
                Column::dense_i64(vec![101, 102, 103, 104, 105, 106]), // pseudo-key
            )
            .unwrap()
            .build()
            .unwrap()
            .into()
    }

    #[test]
    fn analyzable_excludes_keys_labels_and_pseudokeys() {
        let t = table();
        let cols = analyzable_columns(&t, &PreprocessConfig::default());
        assert_eq!(cols, vec!["income", "city"]);
        // Without the heuristic, the pseudo-key survives.
        let loose = analyzable_columns(
            &t,
            &PreprocessConfig {
                drop_unique_columns: false,
                ..PreprocessConfig::default()
            },
        );
        assert_eq!(loose, vec!["income", "city", "code"]);
    }

    #[test]
    fn zscore_normalization() {
        let t = table();
        let fm = preprocess(&t, &["income"], &PreprocessConfig::default()).unwrap();
        assert_eq!(fm.dims(), 1);
        // Observed values {10,20,30,40,50}: mean 30, population std sqrt(200).
        let std = 200f64.sqrt();
        assert!((fm.row(0)[0] - (10.0 - 30.0) / std).abs() < 1e-12);
        assert!((fm.row(3)[0] - (40.0 - 30.0) / std).abs() < 1e-12);
        assert!(fm.row(4)[0].is_nan(), "missing propagates as NaN");
    }

    #[test]
    fn imputation_fills_mean_and_mode() {
        let t = table();
        let config = PreprocessConfig {
            missing: MissingPolicy::Impute,
            ..PreprocessConfig::default()
        };
        let fm = preprocess(&t, &["income", "city"], &config).unwrap();
        // Income NaN → z-scored mean = 0.
        assert_eq!(fm.row(4)[0], 0.0);
        // City NULL (row 5) → mode "ams" dummy = 1.
        let ams_dim = fm
            .features
            .iter()
            .position(|f| f.name == "city=ams")
            .unwrap();
        assert_eq!(fm.row(5)[ams_dim], 1.0);
        assert!(fm.data.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn one_hot_encoding() {
        let t = table();
        let fm = preprocess(&t, &["city"], &PreprocessConfig::default()).unwrap();
        let names: Vec<&str> = fm.features.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["city=ams", "city=nyc"]);
        assert!(fm.features.iter().all(|f| f.categorical));
        assert_eq!(fm.row(0), &[1.0, 0.0]);
        assert_eq!(fm.row(2), &[0.0, 1.0]);
        assert!(fm.row(5)[0].is_nan());
    }

    #[test]
    fn category_cap_creates_overflow_dummy() {
        let labels: Vec<String> = (0..20).map(|i| format!("c{}", i % 6)).collect();
        let t: TableView = TableBuilder::new("t")
            .column(
                "cat",
                Column::from_strs(labels.iter().map(|s| Some(s.as_str()))),
            )
            .unwrap()
            .build()
            .unwrap()
            .into();
        let config = PreprocessConfig {
            max_categories: 3,
            ..PreprocessConfig::default()
        };
        let fm = preprocess(&t, &["cat"], &config).unwrap();
        assert_eq!(fm.dims(), 4, "3 kept + overflow");
        assert!(fm.features.last().unwrap().name.ends_with("<other>"));
        // Every row has exactly one dummy set.
        for r in 0..fm.nrows {
            let ones: f64 = fm.row(r).iter().sum();
            assert_eq!(ones, 1.0);
        }
    }

    #[test]
    fn constant_column_does_not_blow_up() {
        let t: TableView = TableBuilder::new("t")
            .column("c", Column::dense_f64(vec![5.0; 10]))
            .unwrap()
            .build()
            .unwrap()
            .into();
        let fm = preprocess(&t, &["c"], &PreprocessConfig::default()).unwrap();
        assert!(fm.data.iter().all(|v| v.is_finite()));
        assert!(fm.data.iter().all(|&v| v == 0.0), "constant → all zeros");
    }

    #[test]
    fn into_points_gower_ranges() {
        let t = table();
        let config = PreprocessConfig {
            missing: MissingPolicy::Impute,
            ..PreprocessConfig::default()
        };
        let fm = preprocess(&t, &["income", "city"], &config).unwrap();
        let points = fm.into_points(MetricChoice::Gower);
        assert_eq!(points.len(), 6);
        assert_eq!(points.dims(), 3);
        // Gower distances live in [0, 1].
        for i in 0..6 {
            for j in 0..6 {
                let d = points.dist(i, j);
                assert!((0.0..=1.0 + 1e-12).contains(&d), "d({i},{j}) = {d}");
            }
        }
    }

    #[test]
    fn categorical_codes_mirror_dummies() {
        let t = table();
        let fm = preprocess(&t, &["income", "city"], &PreprocessConfig::default()).unwrap();
        // One categorical source: block covers the two city dummies.
        assert_eq!(fm.cat_blocks, vec![CatBlock { start: 1, len: 2 }]);
        assert_eq!(fm.cat_codes.len(), 6);
        // ams → slot 0, nyc → slot 1, NULL → sentinel.
        assert_eq!(fm.cat_codes[0], 0);
        assert_eq!(fm.cat_codes[2], 1);
        assert_eq!(fm.cat_codes[5], CODE_NULL);
        // Imputation replaces the sentinel with the mode's slot.
        let config = PreprocessConfig {
            missing: MissingPolicy::Impute,
            ..PreprocessConfig::default()
        };
        let fm = preprocess(&t, &["income", "city"], &config).unwrap();
        assert_eq!(fm.cat_codes[5], 0, "mode 'ams' sits at slot 0");
        // Coded distances agree with evaluating the raw dummy floats.
        let points = fm.into_points(MetricChoice::Gower);
        for i in 0..points.len() {
            for j in 0..points.len() {
                let coded = points.dist(i, j);
                let dummy = points.metric().dist(points.row(i), points.row(j));
                assert!((coded - dummy).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn empty_table_errors() {
        let t: TableView = TableBuilder::new("e").build().unwrap().into();
        assert!(matches!(
            preprocess(&t, &[], &PreprocessConfig::default()),
            Err(BlaeuError::EmptySelection)
        ));
    }

    #[test]
    fn unknown_column_errors() {
        let t = table();
        assert!(preprocess(&t, &["ghost"], &PreprocessConfig::default()).is_err());
    }

    #[test]
    fn bool_treated_as_numeric_feature() {
        let t: TableView = TableBuilder::new("t")
            .column(
                "flag",
                Column::from_bools([Some(true), Some(false), Some(true)]),
            )
            .unwrap()
            .build()
            .unwrap()
            .into();
        let fm = preprocess(&t, &["flag"], &PreprocessConfig::default()).unwrap();
        assert_eq!(fm.dims(), 1);
        assert!(!fm.features[0].categorical);
    }
}
