//! Contingency tables over pairs of discrete columns.

use crate::binning::DiscreteColumn;

/// A two-way contingency table of joint symbol counts.
///
/// Built from two [`DiscreteColumn`]s; rows where either side is NULL are
/// dropped (pairwise-complete observations).
#[derive(Debug, Clone)]
pub struct ContingencyTable {
    counts: Vec<u64>,
    nx: usize,
    ny: usize,
    total: u64,
}

impl ContingencyTable {
    /// Cross-tabulates two discrete columns of equal length.
    ///
    /// The pairwise-complete row set is the word-wise AND of the two
    /// validity bitmaps; counting then walks only its set bits, reading
    /// the dense code slices directly.
    ///
    /// # Panics
    /// Panics if lengths differ or a code exceeds its declared cardinality.
    pub fn from_codes(x: &DiscreteColumn, y: &DiscreteColumn) -> Self {
        assert_eq!(x.codes.len(), y.codes.len(), "column length mismatch");
        let nx = x.cardinality.max(1);
        let ny = y.cardinality.max(1);
        let mut counts = vec![0u64; nx * ny];
        let both = x.validity.and(&y.validity);
        for row in both.iter_ones() {
            let (a, b) = (x.codes[row] as usize, y.codes[row] as usize);
            assert!(a < nx && b < ny, "code out of declared cardinality");
            counts[a * ny + b] += 1;
        }
        ContingencyTable {
            counts,
            nx,
            ny,
            total: both.count_ones() as u64,
        }
    }

    /// Number of rows counted (pairwise-complete).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Dimensions `(x cardinality, y cardinality)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Joint count for `(x, y)`.
    pub fn count(&self, x: usize, y: usize) -> u64 {
        self.counts[x * self.ny + y]
    }

    /// Marginal counts of the x side.
    pub fn x_marginals(&self) -> Vec<u64> {
        let mut m = vec![0u64; self.nx];
        for (x, out) in m.iter_mut().enumerate() {
            for y in 0..self.ny {
                *out += self.count(x, y);
            }
        }
        m
    }

    /// Marginal counts of the y side.
    pub fn y_marginals(&self) -> Vec<u64> {
        let mut m = vec![0u64; self.ny];
        for x in 0..self.nx {
            for (y, out) in m.iter_mut().enumerate() {
                *out += self.count(x, y);
            }
        }
        m
    }

    /// Iterates over non-zero joint cells as `(x, y, count)`.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter_map(move |(i, &c)| (c > 0).then_some((i / self.ny, i % self.ny, c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc(codes: Vec<Option<u32>>, cardinality: usize) -> DiscreteColumn {
        DiscreteColumn::from_options(codes, cardinality)
    }

    #[test]
    fn cross_tabulation() {
        let x = dc(vec![Some(0), Some(0), Some(1), Some(1), None], 2);
        let y = dc(vec![Some(0), Some(1), Some(1), Some(1), Some(0)], 2);
        let ct = ContingencyTable::from_codes(&x, &y);
        assert_eq!(ct.total(), 4, "NULL row dropped");
        assert_eq!(ct.shape(), (2, 2));
        assert_eq!(ct.count(0, 0), 1);
        assert_eq!(ct.count(0, 1), 1);
        assert_eq!(ct.count(1, 1), 2);
        assert_eq!(ct.count(1, 0), 0);
    }

    #[test]
    fn marginals_sum_to_total() {
        let x = dc(vec![Some(0), Some(1), Some(2), Some(1)], 3);
        let y = dc(vec![Some(1), Some(0), Some(1), Some(1)], 2);
        let ct = ContingencyTable::from_codes(&x, &y);
        assert_eq!(ct.x_marginals(), vec![1, 2, 1]);
        assert_eq!(ct.y_marginals(), vec![1, 3]);
        assert_eq!(ct.x_marginals().iter().sum::<u64>(), ct.total());
        assert_eq!(ct.y_marginals().iter().sum::<u64>(), ct.total());
    }

    #[test]
    fn iter_nonzero_lists_cells() {
        let x = dc(vec![Some(0), Some(1)], 2);
        let y = dc(vec![Some(0), Some(1)], 2);
        let ct = ContingencyTable::from_codes(&x, &y);
        let cells: Vec<(usize, usize, u64)> = ct.iter_nonzero().collect();
        assert_eq!(cells, vec![(0, 0, 1), (1, 1, 1)]);
    }

    #[test]
    fn all_null_is_empty() {
        let x = dc(vec![None, None], 3);
        let y = dc(vec![Some(0), Some(1)], 2);
        let ct = ContingencyTable::from_codes(&x, &y);
        assert_eq!(ct.total(), 0);
        assert_eq!(ct.iter_nonzero().count(), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let x = dc(vec![Some(0)], 1);
        let y = dc(vec![Some(0), Some(0)], 1);
        let _ = ContingencyTable::from_codes(&x, &y);
    }
}
