//! Discretization of continuous columns.
//!
//! Mutual information over mixed data needs discrete symbols. Numeric
//! columns are discretized with equal-width or equal-frequency bins;
//! categorical and boolean columns already carry discrete codes.

use blaeu_store::{Bitmap, ColumnRead, DataType};

/// Rule for choosing the number of bins when the caller does not fix it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinRule {
    /// Fixed number of bins.
    Fixed(usize),
    /// Sturges' rule: `ceil(log2 n) + 1`.
    Sturges,
    /// Square-root rule capped at 32 bins (robust default for MI).
    SqrtCapped,
}

impl BinRule {
    /// Number of bins for `n` observations (always ≥ 2).
    pub fn bins(self, n: usize) -> usize {
        let b = match self {
            BinRule::Fixed(b) => b,
            BinRule::Sturges => (n.max(1) as f64).log2().ceil() as usize + 1,
            BinRule::SqrtCapped => ((n.max(1) as f64).sqrt() as usize).min(32),
        };
        b.max(2)
    }
}

/// Binning strategy for numeric data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinStrategy {
    /// Bins of equal value width between min and max.
    EqualWidth,
    /// Bins holding (approximately) equal numbers of observations.
    /// Robust to skew and outliers; the default for MI.
    EqualFrequency,
}

/// A fitted discretizer mapping `f64` values to bin codes `0..nbins`.
#[derive(Debug, Clone)]
pub struct Discretizer {
    /// Upper edge of each bin except the last (length `nbins - 1`),
    /// ascending. A value `v` lands in the first bin whose edge exceeds it.
    edges: Vec<f64>,
}

impl Discretizer {
    /// Fits a discretizer on the non-NULL values of a column sample.
    ///
    /// Degenerate inputs (constant or empty data) yield a single bin.
    pub fn fit(values: &[f64], strategy: BinStrategy, nbins: usize) -> Self {
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_by(f64::total_cmp);
        if sorted.is_empty() || sorted[0] == sorted[sorted.len() - 1] {
            return Discretizer { edges: Vec::new() };
        }
        let nbins = nbins.max(2);
        let mut edges = Vec::with_capacity(nbins - 1);
        match strategy {
            BinStrategy::EqualWidth => {
                let lo = sorted[0];
                let hi = sorted[sorted.len() - 1];
                let width = (hi - lo) / nbins as f64;
                for b in 1..nbins {
                    edges.push(lo + width * b as f64);
                }
            }
            BinStrategy::EqualFrequency => {
                let n = sorted.len();
                for b in 1..nbins {
                    let q = sorted[(b * n / nbins).min(n - 1)];
                    // Skip duplicate edges caused by heavy ties.
                    if edges.last().is_none_or(|&last| q > last) {
                        edges.push(q);
                    }
                }
            }
        }
        Discretizer { edges }
    }

    /// Number of bins this discretizer produces.
    pub fn nbins(&self) -> usize {
        self.edges.len() + 1
    }

    /// Bin code for a value.
    #[inline]
    pub fn code(&self, v: f64) -> u32 {
        // Binary search: first edge strictly greater than v.
        self.edges.partition_point(|&e| e <= v) as u32
    }
}

/// Discrete view of a column: a dense `u32` code per row plus a validity
/// bitmap (set = non-NULL), the layout the count-table kernels scan
/// directly. This is the common currency of the entropy/MI machinery.
#[derive(Debug, Clone)]
pub struct DiscreteColumn {
    /// Per-row code, meaningful only where `validity` is set (NULL rows
    /// carry 0).
    pub codes: Vec<u32>,
    /// Set bits mark non-NULL rows.
    pub validity: Bitmap,
    /// Number of distinct codes (`codes` values are `< cardinality`).
    pub cardinality: usize,
}

impl DiscreteColumn {
    /// Builds from per-row optional codes (the pre-kernel representation;
    /// handy in tests and for callers holding `Option<u32>` rows).
    pub fn from_options(
        codes: impl IntoIterator<Item = Option<u32>>,
        cardinality: usize,
    ) -> DiscreteColumn {
        let opts: Vec<Option<u32>> = codes.into_iter().collect();
        let mut validity = Bitmap::new_clear(opts.len());
        let mut dense = Vec::with_capacity(opts.len());
        for (i, c) in opts.iter().enumerate() {
            match c {
                Some(v) => {
                    validity.set(i);
                    dense.push(*v);
                }
                None => dense.push(0),
            }
        }
        DiscreteColumn {
            codes: dense,
            validity,
            cardinality,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Code at `row`, `None` where the source cell was NULL.
    pub fn get(&self, row: usize) -> Option<u32> {
        self.validity.get(row).then(|| self.codes[row])
    }
}

/// Discretizes any column (owned or view-selected — any [`ColumnRead`])
/// into symbol codes.
///
/// * Numeric columns are binned with `strategy` / `rule` (fitted on their
///   own non-NULL values).
/// * Categorical columns reuse their dictionary codes — columns exposing
///   [`ColumnRead::code_parts`] (owned columns, identity views) are
///   copied wholesale, no per-row accessor calls.
/// * Boolean columns map to codes {0, 1}.
pub fn discretize<C: ColumnRead>(
    column: &C,
    strategy: BinStrategy,
    rule: BinRule,
) -> DiscreteColumn {
    match column.data_type() {
        DataType::Categorical => {
            let cardinality = column.dictionary().len().max(1);
            if let Some((codes, validity)) = column.code_parts() {
                return DiscreteColumn {
                    codes: codes.to_vec(),
                    validity: validity.clone(),
                    cardinality,
                };
            }
            DiscreteColumn::from_options((0..column.len()).map(|i| column.code_at(i)), cardinality)
        }
        DataType::Bool => DiscreteColumn::from_options(
            (0..column.len()).map(|i| column.numeric_at(i).map(|v| v as u32)),
            2,
        ),
        DataType::Float64 | DataType::Int64 => {
            let valid: Vec<f64> = (0..column.len())
                .filter_map(|i| column.numeric_at(i))
                .collect();
            let disc = Discretizer::fit(&valid, strategy, rule.bins(valid.len()));
            DiscreteColumn::from_options(
                (0..column.len()).map(|i| column.numeric_at(i).map(|v| disc.code(v))),
                disc.nbins(),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaeu_store::Column;

    #[test]
    fn bin_rules() {
        assert_eq!(BinRule::Fixed(5).bins(1000), 5);
        assert_eq!(BinRule::Fixed(0).bins(1000), 2, "clamped to 2");
        assert_eq!(BinRule::Sturges.bins(1024), 11);
        assert_eq!(BinRule::SqrtCapped.bins(100), 10);
        assert_eq!(BinRule::SqrtCapped.bins(100_000), 32, "capped");
    }

    #[test]
    fn equal_width_splits_range() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = Discretizer::fit(&vals, BinStrategy::EqualWidth, 4);
        assert_eq!(d.nbins(), 4);
        assert_eq!(d.code(0.0), 0);
        assert_eq!(d.code(30.0), 1);
        assert_eq!(d.code(60.0), 2);
        assert_eq!(d.code(99.0), 3);
        // Out-of-range values clamp into the edge bins.
        assert_eq!(d.code(-100.0), 0);
        assert_eq!(d.code(1e9), 3);
    }

    #[test]
    fn equal_frequency_balances_counts() {
        // Heavily skewed data: equal-width would put nearly everything in
        // bin 0; equal-frequency must balance.
        let vals: Vec<f64> = (0..1000).map(|i| (i as f64 / 10.0).exp()).collect();
        let d = Discretizer::fit(&vals, BinStrategy::EqualFrequency, 4);
        let mut counts = vec![0usize; d.nbins()];
        for &v in &vals {
            counts[d.code(v) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (200..=300).contains(&c),
                "equal-frequency bins should hold ~250 each, got {counts:?}"
            );
        }
    }

    #[test]
    fn constant_data_single_bin() {
        let d = Discretizer::fit(&[5.0; 10], BinStrategy::EqualFrequency, 4);
        assert_eq!(d.nbins(), 1);
        assert_eq!(d.code(5.0), 0);
        let d = Discretizer::fit(&[], BinStrategy::EqualWidth, 4);
        assert_eq!(d.nbins(), 1);
    }

    #[test]
    fn ties_collapse_duplicate_edges() {
        // 90% of the data is the same value; equal-frequency quantiles tie.
        let mut vals = vec![1.0; 90];
        vals.extend((0..10).map(|i| 10.0 + i as f64));
        let d = Discretizer::fit(&vals, BinStrategy::EqualFrequency, 4);
        assert!(d.nbins() >= 2);
        assert!(d.nbins() <= 4);
        // All tied values land in one bin.
        assert_eq!(d.code(1.0), d.code(1.0));
    }

    #[test]
    fn discretize_numeric_column() {
        let col = Column::from_f64s((0..50).map(|i| Some(i as f64)).chain([None]));
        let dc = discretize(&col, BinStrategy::EqualFrequency, BinRule::Fixed(5));
        assert_eq!(dc.len(), 51);
        assert_eq!(dc.cardinality, 5);
        assert_eq!(dc.get(50), None);
        assert!((0..50).all(|i| dc.get(i).unwrap() < 5));
    }

    #[test]
    fn discretize_categorical_passthrough() {
        let col = Column::from_strs([Some("a"), Some("b"), None, Some("a")]);
        let dc = discretize(&col, BinStrategy::EqualFrequency, BinRule::Fixed(5));
        assert_eq!(dc.cardinality, 2);
        let got: Vec<Option<u32>> = (0..dc.len()).map(|i| dc.get(i)).collect();
        assert_eq!(got, vec![Some(0), Some(1), None, Some(0)]);
    }

    #[test]
    fn discretize_categorical_matches_per_row_on_views() {
        // The code_parts wholesale copy (identity) and the per-row mapped
        // path must agree on the same selection.
        use blaeu_store::{TableBuilder, TableView};
        let labels: Vec<Option<&str>> = (0..40)
            .map(|i| match i % 5 {
                0 => Some("a"),
                1 => Some("b"),
                2 => None,
                3 => Some("c"),
                _ => Some("a"),
            })
            .collect();
        let t = TableBuilder::new("t")
            .column("cat", Column::from_strs(labels))
            .unwrap()
            .build()
            .unwrap();
        let rows: Vec<u32> = (0..40u32).rev().collect();
        let taken = t.take(&rows).unwrap();
        let view = TableView::with_rows(std::sync::Arc::new(t), rows).unwrap();
        let from_identity = discretize(
            taken.column_by_name("cat").unwrap(),
            BinStrategy::EqualFrequency,
            BinRule::Fixed(4),
        );
        let from_mapped = discretize(
            &view.col_by_name("cat").unwrap(),
            BinStrategy::EqualFrequency,
            BinRule::Fixed(4),
        );
        assert_eq!(from_identity.cardinality, from_mapped.cardinality);
        for i in 0..from_mapped.len() {
            assert_eq!(from_identity.get(i), from_mapped.get(i), "row {i}");
        }
    }

    #[test]
    fn discretize_bool() {
        let col = Column::from_bools([Some(true), Some(false), None]);
        let dc = discretize(&col, BinStrategy::EqualWidth, BinRule::Sturges);
        assert_eq!(dc.cardinality, 2);
        let got: Vec<Option<u32>> = (0..dc.len()).map(|i| dc.get(i)).collect();
        assert_eq!(got, vec![Some(1), Some(0), None]);
    }

    #[test]
    fn from_options_roundtrip() {
        let dc = DiscreteColumn::from_options([Some(2), None, Some(0)], 3);
        assert_eq!(dc.len(), 3);
        assert!(!dc.is_empty());
        assert_eq!(dc.get(0), Some(2));
        assert_eq!(dc.get(1), None);
        assert_eq!(dc.get(2), Some(0));
        assert_eq!(dc.validity.count_ones(), 2);
    }

    #[test]
    fn codes_monotone_in_value() {
        let vals: Vec<f64> = (0..200).map(|i| (i as f64).sin() * 10.0).collect();
        let d = Discretizer::fit(&vals, BinStrategy::EqualFrequency, 8);
        let mut sorted = vals.clone();
        sorted.sort_by(f64::total_cmp);
        let codes: Vec<u32> = sorted.iter().map(|&v| d.code(v)).collect();
        assert!(codes.windows(2).all(|w| w[0] <= w[1]));
    }
}
