//! Histograms — the univariate visualizations of the *highlight* action.

use blaeu_store::{ColumnRead, DataType};

use crate::binning::{BinStrategy, Discretizer};

/// A univariate histogram over one column.
#[derive(Debug, Clone, PartialEq)]
pub enum Histogram {
    /// Numeric histogram with explicit bin edges.
    Numeric {
        /// Bin boundaries, length `bins + 1`, ascending.
        edges: Vec<f64>,
        /// Count per bin, length `bins`.
        counts: Vec<usize>,
        /// Number of NULL rows.
        nulls: usize,
    },
    /// Categorical bar chart.
    Categorical {
        /// Category label and count, most frequent first.
        bars: Vec<(String, usize)>,
        /// Number of NULL rows.
        nulls: usize,
    },
}

impl Histogram {
    /// Total non-NULL observations.
    pub fn total(&self) -> usize {
        match self {
            Histogram::Numeric { counts, .. } => counts.iter().sum(),
            Histogram::Categorical { bars, .. } => bars.iter().map(|b| b.1).sum(),
        }
    }

    /// Renders the histogram as terminal text with unicode bars.
    pub fn render(&self, width: usize) -> String {
        let width = width.max(8);
        let mut out = String::new();
        match self {
            Histogram::Numeric { edges, counts, .. } => {
                let max = counts.iter().copied().max().unwrap_or(0).max(1);
                for (i, &c) in counts.iter().enumerate() {
                    let bar = "█".repeat(c * width / max);
                    out.push_str(&format!(
                        "[{:>9.3}, {:>9.3}) {:>6} {}\n",
                        edges[i],
                        edges[i + 1],
                        c,
                        bar
                    ));
                }
            }
            Histogram::Categorical { bars, .. } => {
                let max = bars.iter().map(|b| b.1).max().unwrap_or(0).max(1);
                for (label, c) in bars {
                    let bar = "█".repeat(c * width / max);
                    out.push_str(&format!("{label:>20} {c:>6} {bar}\n"));
                }
            }
        }
        out
    }
}

/// Builds a histogram for a column (owned or view-selected — any
/// [`ColumnRead`]). Numeric columns get `bins` equal-width bins over their
/// observed range; categorical columns get up to `bins` bars (most
/// frequent first, remainder folded into `"<other>"`).
pub fn histogram<C: ColumnRead>(column: &C, bins: usize) -> Histogram {
    let bins = bins.max(1);
    match column.data_type() {
        DataType::Float64 | DataType::Int64 => {
            let vals: Vec<f64> = (0..column.len())
                .filter_map(|i| column.numeric_at(i))
                .collect();
            let nulls = column.len() - vals.len();
            if vals.is_empty() {
                return Histogram::Numeric {
                    edges: vec![0.0, 1.0],
                    counts: vec![0],
                    nulls,
                };
            }
            let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if lo == hi {
                return Histogram::Numeric {
                    edges: vec![lo, hi],
                    counts: vec![vals.len()],
                    nulls,
                };
            }
            let disc = Discretizer::fit(&vals, BinStrategy::EqualWidth, bins);
            let nbins = disc.nbins();
            let mut counts = vec![0usize; nbins];
            for &v in &vals {
                counts[disc.code(v) as usize] += 1;
            }
            let width = (hi - lo) / nbins as f64;
            let edges: Vec<f64> = (0..=nbins).map(|i| lo + width * i as f64).collect();
            Histogram::Numeric {
                edges,
                counts,
                nulls,
            }
        }
        DataType::Categorical | DataType::Bool => {
            let mut counts: std::collections::HashMap<String, usize> =
                std::collections::HashMap::new();
            let mut nulls = 0usize;
            for i in 0..column.len() {
                let v = column.get(i);
                if v.is_null() {
                    nulls += 1;
                } else {
                    *counts.entry(v.to_string()).or_insert(0) += 1;
                }
            }
            let mut bars: Vec<(String, usize)> = counts.into_iter().collect();
            bars.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            if bars.len() > bins {
                let rest: usize = bars[bins..].iter().map(|b| b.1).sum();
                bars.truncate(bins);
                bars.push(("<other>".to_owned(), rest));
            }
            Histogram::Categorical { bars, nulls }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaeu_store::Column;

    #[test]
    fn numeric_histogram_counts_sum() {
        let col = Column::from_f64s((0..100).map(|i| Some(i as f64)).chain([None, None]));
        let h = histogram(&col, 10);
        let Histogram::Numeric {
            edges,
            counts,
            nulls,
        } = &h
        else {
            panic!("expected numeric");
        };
        assert_eq!(edges.len(), counts.len() + 1);
        assert_eq!(h.total(), 100);
        assert_eq!(*nulls, 2);
        // Equal-width over uniform data: every bin holds 10.
        assert!(counts.iter().all(|&c| c == 10), "{counts:?}");
    }

    #[test]
    fn constant_column_single_bin() {
        let col = Column::from_f64s([Some(3.0), Some(3.0)]);
        let Histogram::Numeric { counts, .. } = histogram(&col, 5) else {
            panic!("expected numeric");
        };
        assert_eq!(counts, vec![2]);
    }

    #[test]
    fn empty_numeric_column() {
        let col = Column::from_f64s([None, None]);
        let h = histogram(&col, 4);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn categorical_histogram_folds_tail() {
        let labels = ["a", "a", "a", "b", "b", "c", "d", "e"];
        let col = Column::from_strs(labels.iter().map(|&s| Some(s)));
        let Histogram::Categorical { bars, .. } = histogram(&col, 2) else {
            panic!("expected categorical");
        };
        assert_eq!(bars[0], ("a".to_owned(), 3));
        assert_eq!(bars[1], ("b".to_owned(), 2));
        assert_eq!(bars[2], ("<other>".to_owned(), 3));
    }

    #[test]
    fn render_produces_bars() {
        let col = Column::from_f64s((0..50).map(|i| Some(i as f64)));
        let text = histogram(&col, 5).render(20);
        assert_eq!(text.lines().count(), 5);
        assert!(text.contains('█'));

        let cat = Column::from_strs([Some("x"), Some("x"), Some("y")]);
        let text = histogram(&cat, 5).render(10);
        assert!(text.contains('x'));
        assert!(text.contains("██"));
    }
}
