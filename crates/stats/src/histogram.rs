//! Histograms — the univariate visualizations of the *highlight* action.

use blaeu_store::{ColumnRead, DataType};

use crate::binning::{BinStrategy, Discretizer};

/// A univariate histogram over one column.
#[derive(Debug, Clone, PartialEq)]
pub enum Histogram {
    /// Numeric histogram with explicit bin edges.
    Numeric {
        /// Bin boundaries, length `bins + 1`, ascending.
        edges: Vec<f64>,
        /// Count per bin, length `bins`.
        counts: Vec<usize>,
        /// Number of NULL rows.
        nulls: usize,
    },
    /// Categorical bar chart.
    Categorical {
        /// Category label and count, most frequent first.
        bars: Vec<(String, usize)>,
        /// Number of NULL rows.
        nulls: usize,
    },
}

impl Histogram {
    /// Total non-NULL observations.
    pub fn total(&self) -> usize {
        match self {
            Histogram::Numeric { counts, .. } => counts.iter().sum(),
            Histogram::Categorical { bars, .. } => bars.iter().map(|b| b.1).sum(),
        }
    }

    /// Renders the histogram as terminal text with unicode bars.
    pub fn render(&self, width: usize) -> String {
        let width = width.max(8);
        let mut out = String::new();
        match self {
            Histogram::Numeric { edges, counts, .. } => {
                let max = counts.iter().copied().max().unwrap_or(0).max(1);
                for (i, &c) in counts.iter().enumerate() {
                    let bar = "█".repeat(c * width / max);
                    out.push_str(&format!(
                        "[{:>9.3}, {:>9.3}) {:>6} {}\n",
                        edges[i],
                        edges[i + 1],
                        c,
                        bar
                    ));
                }
            }
            Histogram::Categorical { bars, .. } => {
                let max = bars.iter().map(|b| b.1).max().unwrap_or(0).max(1);
                for (label, c) in bars {
                    let bar = "█".repeat(c * width / max);
                    out.push_str(&format!("{label:>20} {c:>6} {bar}\n"));
                }
            }
        }
        out
    }
}

/// The numeric bin layout settled by the histogram's phase-1 scan.
///
/// Every worker computes the same mode from its full column replica
/// (the scan is deterministic), so merge asserts the headers agree
/// bit-for-bit before adding counts.
#[derive(Debug, Clone, Copy)]
pub enum HistogramMode {
    /// No numeric observations: one empty `[0, 1)` bin.
    Empty,
    /// All observations equal: a single `[lo, hi]` bin.
    Flat {
        /// Minimum fold result.
        lo: f64,
        /// Maximum fold result.
        hi: f64,
    },
    /// Equal-width bins over `[lo, hi]`.
    Binned {
        /// Observed minimum.
        lo: f64,
        /// Observed maximum.
        hi: f64,
        /// Bin count after the discretizer trimmed degenerate edges.
        nbins: usize,
    },
}

impl HistogramMode {
    /// Number of count slots this layout produces.
    pub fn bin_count(&self) -> usize {
        match self {
            HistogramMode::Empty | HistogramMode::Flat { .. } => 1,
            HistogramMode::Binned { nbins, .. } => *nbins,
        }
    }

    fn same_layout(&self, other: &HistogramMode) -> bool {
        match (self, other) {
            (HistogramMode::Empty, HistogramMode::Empty) => true,
            (HistogramMode::Flat { lo: a, hi: b }, HistogramMode::Flat { lo: c, hi: d }) => {
                a.to_bits() == c.to_bits() && b.to_bits() == d.to_bits()
            }
            (
                HistogramMode::Binned {
                    lo: a,
                    hi: b,
                    nbins: n,
                },
                HistogramMode::Binned {
                    lo: c,
                    hi: d,
                    nbins: m,
                },
            ) => a.to_bits() == c.to_bits() && b.to_bits() == d.to_bits() && n == m,
            _ => false,
        }
    }
}

/// Phase-1 state of the histogram sketch: the bin layout plus, for
/// binned columns, the fitted discretizer that codes shard values.
#[derive(Debug, Clone)]
pub enum HistogramSketch {
    /// Numeric column: settled bin layout, discretizer present only in
    /// binned mode.
    Numeric {
        /// Agreed bin layout header.
        mode: HistogramMode,
        /// Value-to-bin coder, `Some` iff `mode` is `Binned`.
        disc: Option<Discretizer>,
    },
    /// Categorical column: shards count labels, no numeric phase.
    Categorical,
}

/// Runs the histogram's phase-1 scan over the full column, settling the
/// bin layout. Deterministic, so every worker holding a replica derives
/// the identical sketch.
pub fn histogram_prepare<C: ColumnRead>(column: &C, bins: usize) -> HistogramSketch {
    let bins = bins.max(1);
    match column.data_type() {
        DataType::Float64 | DataType::Int64 => {
            let vals: Vec<f64> = (0..column.len())
                .filter_map(|i| column.numeric_at(i))
                .collect();
            if vals.is_empty() {
                return HistogramSketch::Numeric {
                    mode: HistogramMode::Empty,
                    disc: None,
                };
            }
            let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if lo == hi {
                return HistogramSketch::Numeric {
                    mode: HistogramMode::Flat { lo, hi },
                    disc: None,
                };
            }
            let disc = Discretizer::fit(&vals, BinStrategy::EqualWidth, bins);
            let nbins = disc.nbins();
            HistogramSketch::Numeric {
                mode: HistogramMode::Binned { lo, hi, nbins },
                disc: Some(disc),
            }
        }
        DataType::Categorical | DataType::Bool => HistogramSketch::Categorical,
    }
}

/// A mergeable partial of a histogram sketch over a contiguous row
/// shard: integer bin (or label) counts plus the shard's NULL count.
/// Integer adds are exact under any association, so merged counts are
/// bit-identical to the sequential tally whatever the shard grouping.
#[derive(Debug, Clone)]
pub enum HistogramPartial {
    /// Per-bin counts under an agreed bin layout.
    Numeric {
        /// Bin layout header; must agree across merged partials.
        mode: HistogramMode,
        /// Count per bin, length `mode.bin_count()`.
        counts: Vec<usize>,
        /// NULL rows in the shard.
        nulls: usize,
    },
    /// Per-label counts.
    Categorical {
        /// Label observation counts.
        counts: std::collections::BTreeMap<String, usize>,
        /// NULL rows in the shard.
        nulls: usize,
    },
}

impl HistogramPartial {
    /// The identity partial for a sketch — what a worker returns for an
    /// empty shard range.
    pub fn empty(sketch: &HistogramSketch) -> HistogramPartial {
        match sketch {
            HistogramSketch::Numeric { mode, .. } => HistogramPartial::Numeric {
                mode: *mode,
                counts: vec![0; mode.bin_count()],
                nulls: 0,
            },
            HistogramSketch::Categorical => HistogramPartial::Categorical {
                counts: std::collections::BTreeMap::new(),
                nulls: 0,
            },
        }
    }

    /// True when the two partials can merge: same kind, and for numeric
    /// partials an agreed bin layout with matching count vectors. The
    /// wire boundary checks this before [`HistogramPartial::merge`] so a
    /// divergent (or hostile) remote partial surfaces as a typed error,
    /// not a panic.
    pub fn compatible(&self, other: &HistogramPartial) -> bool {
        match (self, other) {
            (
                HistogramPartial::Numeric { mode, counts, .. },
                HistogramPartial::Numeric {
                    mode: om,
                    counts: oc,
                    ..
                },
            ) => mode.same_layout(om) && counts.len() == oc.len(),
            (HistogramPartial::Categorical { .. }, HistogramPartial::Categorical { .. }) => true,
            _ => false,
        }
    }

    /// Merges the next shard range's partial into this one. Counts add
    /// elementwise; shard-order associative and in fact fully
    /// commutative (integer adds).
    ///
    /// # Panics
    /// Panics if the partials are of different kinds or their bin
    /// layouts disagree.
    pub fn merge(&mut self, other: HistogramPartial) {
        match (self, other) {
            (
                HistogramPartial::Numeric {
                    mode,
                    counts,
                    nulls,
                },
                HistogramPartial::Numeric {
                    mode: om,
                    counts: oc,
                    nulls: on,
                },
            ) => {
                assert!(
                    mode.same_layout(&om),
                    "histogram partials disagree on bin layout: {mode:?} vs {om:?}"
                );
                for (c, o) in counts.iter_mut().zip(oc) {
                    *c += o;
                }
                *nulls += on;
            }
            (
                HistogramPartial::Categorical { counts, nulls },
                HistogramPartial::Categorical {
                    counts: oc,
                    nulls: on,
                },
            ) => {
                for (label, c) in oc {
                    *counts.entry(label).or_insert(0) += c;
                }
                *nulls += on;
            }
            _ => panic!("cannot merge histogram partials of different kinds"),
        }
    }
}

/// Builds the histogram partial for one contiguous row range of a
/// column — the unit of work a worker executes per canonical shard.
pub fn histogram_shard<C: ColumnRead>(
    column: &C,
    sketch: &HistogramSketch,
    rows: std::ops::Range<usize>,
) -> HistogramPartial {
    let mut partial = HistogramPartial::empty(sketch);
    match (&mut partial, sketch) {
        (
            HistogramPartial::Numeric { counts, nulls, .. },
            HistogramSketch::Numeric { mode, disc },
        ) => {
            for i in rows {
                match column.numeric_at(i) {
                    None => *nulls += 1,
                    Some(v) => match mode {
                        HistogramMode::Empty => unreachable!("empty mode has no observations"),
                        HistogramMode::Flat { .. } => counts[0] += 1,
                        HistogramMode::Binned { .. } => {
                            let disc = disc.as_ref().expect("binned mode carries a discretizer");
                            counts[disc.code(v) as usize] += 1;
                        }
                    },
                }
            }
        }
        (HistogramPartial::Categorical { counts, nulls }, HistogramSketch::Categorical) => {
            for i in rows {
                let v = column.get(i);
                if v.is_null() {
                    *nulls += 1;
                } else {
                    *counts.entry(v.to_string()).or_insert(0) += 1;
                }
            }
        }
        _ => unreachable!("partial built from the same sketch"),
    }
    partial
}

/// Finalizes a fully merged histogram partial. Needs no column data
/// (edges recompute from the layout header), so a coordinator can
/// finalize merged worker partials.
pub fn finalize_histogram(partial: HistogramPartial, bins: usize) -> Histogram {
    let bins = bins.max(1);
    match partial {
        HistogramPartial::Numeric {
            mode,
            counts,
            nulls,
        } => match mode {
            HistogramMode::Empty => Histogram::Numeric {
                edges: vec![0.0, 1.0],
                counts,
                nulls,
            },
            HistogramMode::Flat { lo, hi } => Histogram::Numeric {
                edges: vec![lo, hi],
                counts,
                nulls,
            },
            HistogramMode::Binned { lo, hi, nbins } => {
                let width = (hi - lo) / nbins as f64;
                let edges: Vec<f64> = (0..=nbins).map(|i| lo + width * i as f64).collect();
                Histogram::Numeric {
                    edges,
                    counts,
                    nulls,
                }
            }
        },
        HistogramPartial::Categorical { counts, nulls } => {
            let mut bars: Vec<(String, usize)> = counts.into_iter().collect();
            bars.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            if bars.len() > bins {
                let rest: usize = bars[bins..].iter().map(|b| b.1).sum();
                bars.truncate(bins);
                bars.push(("<other>".to_owned(), rest));
            }
            Histogram::Categorical { bars, nulls }
        }
    }
}

/// Builds a histogram for a column (owned or view-selected — any
/// [`ColumnRead`]). Numeric columns get `bins` equal-width bins over their
/// observed range; categorical columns get up to `bins` bars (most
/// frequent first, remainder folded into `"<other>"`).
///
/// Routed through the histogram sketch: phase 1 settles the bin layout,
/// canonical row shards tally counts, partials merge in shard order,
/// and the merged partial finalizes — the same combine a distributed
/// run performs, so the result is bit-identical whether shards run here
/// or on workers.
pub fn histogram<C: ColumnRead>(column: &C, bins: usize) -> Histogram {
    let sketch = histogram_prepare(column, bins);
    let spec = crate::describe::row_shard_spec(column.len());
    let mut partial = HistogramPartial::empty(&sketch);
    for s in 0..spec.shard_count() {
        partial.merge(histogram_shard(column, &sketch, spec.range(s)));
    }
    finalize_histogram(partial, bins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaeu_store::Column;

    #[test]
    fn numeric_histogram_counts_sum() {
        let col = Column::from_f64s((0..100).map(|i| Some(i as f64)).chain([None, None]));
        let h = histogram(&col, 10);
        let Histogram::Numeric {
            edges,
            counts,
            nulls,
        } = &h
        else {
            panic!("expected numeric");
        };
        assert_eq!(edges.len(), counts.len() + 1);
        assert_eq!(h.total(), 100);
        assert_eq!(*nulls, 2);
        // Equal-width over uniform data: every bin holds 10.
        assert!(counts.iter().all(|&c| c == 10), "{counts:?}");
    }

    #[test]
    fn constant_column_single_bin() {
        let col = Column::from_f64s([Some(3.0), Some(3.0)]);
        let Histogram::Numeric { counts, .. } = histogram(&col, 5) else {
            panic!("expected numeric");
        };
        assert_eq!(counts, vec![2]);
    }

    #[test]
    fn empty_numeric_column() {
        let col = Column::from_f64s([None, None]);
        let h = histogram(&col, 4);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn categorical_histogram_folds_tail() {
        let labels = ["a", "a", "a", "b", "b", "c", "d", "e"];
        let col = Column::from_strs(labels.iter().map(|&s| Some(s)));
        let Histogram::Categorical { bars, .. } = histogram(&col, 2) else {
            panic!("expected categorical");
        };
        assert_eq!(bars[0], ("a".to_owned(), 3));
        assert_eq!(bars[1], ("b".to_owned(), 2));
        assert_eq!(bars[2], ("<other>".to_owned(), 3));
    }

    #[test]
    fn render_produces_bars() {
        let col = Column::from_f64s((0..50).map(|i| Some(i as f64)));
        let text = histogram(&col, 5).render(20);
        assert_eq!(text.lines().count(), 5);
        assert!(text.contains('█'));

        let cat = Column::from_strs([Some("x"), Some("x"), Some("y")]);
        let text = histogram(&cat, 5).render(10);
        assert!(text.contains('x'));
        assert!(text.contains("██"));
    }
}
