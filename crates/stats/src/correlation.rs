//! Linear and rank correlation (the dependency measures the paper
//! *considered* before choosing mutual information).

/// Pearson correlation over pairwise-complete observations.
///
/// Returns `None` when fewer than two complete pairs exist or either side
/// has zero variance.
pub fn pearson(x: &[Option<f64>], y: &[Option<f64>]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "column length mismatch");
    let pairs: Vec<(f64, f64)> = x
        .iter()
        .zip(y)
        .filter_map(|(a, b)| Some(((*a)?, (*b)?)))
        .collect();
    pearson_dense(&pairs)
}

fn pearson_dense(pairs: &[(f64, f64)]) -> Option<f64> {
    let n = pairs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / nf;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / nf;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for &(a, b) in pairs {
        let dx = a - mx;
        let dy = b - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= f64::EPSILON || vy <= f64::EPSILON {
        return None;
    }
    Some((cov / (vx.sqrt() * vy.sqrt())).clamp(-1.0, 1.0))
}

/// Average ranks with ties sharing the mean rank (fractional ranking).
pub fn ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut out = vec![0.0f64; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Mean rank of the tie run [i, j] (1-based ranks).
        let mean_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = mean_rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation over pairwise-complete observations.
///
/// Returns `None` under the same degeneracies as [`pearson`].
pub fn spearman(x: &[Option<f64>], y: &[Option<f64>]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "column length mismatch");
    let pairs: Vec<(f64, f64)> = x
        .iter()
        .zip(y)
        .filter_map(|(a, b)| Some(((*a)?, (*b)?)))
        .collect();
    if pairs.len() < 2 {
        return None;
    }
    let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let rx = ranks(&xs);
    let ry = ranks(&ys);
    let ranked: Vec<(f64, f64)> = rx.into_iter().zip(ry).collect();
    pearson_dense(&ranked)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn some(v: &[f64]) -> Vec<Option<f64>> {
        v.iter().map(|&x| Some(x)).collect()
    }

    #[test]
    fn perfect_linear_correlation() {
        let x = some(&[1.0, 2.0, 3.0, 4.0]);
        let y = some(&[2.0, 4.0, 6.0, 8.0]);
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let neg = some(&[8.0, 6.0, 4.0, 2.0]);
        assert!((pearson(&x, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_data_near_zero() {
        let x: Vec<Option<f64>> = (0..1000).map(|i| Some((i % 10) as f64)).collect();
        let y: Vec<Option<f64>> = (0..1000).map(|i| Some((i / 10 % 10) as f64)).collect();
        assert!(pearson(&x, &y).unwrap().abs() < 0.05);
    }

    #[test]
    fn nulls_dropped_pairwise() {
        let x = vec![Some(1.0), None, Some(3.0), Some(4.0)];
        let y = vec![Some(2.0), Some(9.0), None, Some(8.0)];
        // Complete pairs: (1,2), (4,8) → perfect correlation.
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_none() {
        assert_eq!(pearson(&[Some(1.0)], &[Some(2.0)]), None);
        let constant = vec![Some(5.0); 10];
        let varying: Vec<Option<f64>> = (0..10).map(|i| Some(i as f64)).collect();
        assert_eq!(pearson(&constant, &varying), None);
        assert_eq!(spearman(&constant, &varying), None);
        let empty: Vec<Option<f64>> = vec![None; 4];
        assert_eq!(pearson(&empty, &varying[..4]), None);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
        let r = ranks(&[5.0, 5.0, 5.0]);
        assert_eq!(r, vec![2.0, 2.0, 2.0]);
        assert_eq!(ranks(&[]), Vec::<f64>::new());
    }

    #[test]
    fn spearman_catches_monotone_nonlinear() {
        // y = exp(x) is monotone: Spearman = 1, Pearson < 1.
        let x: Vec<Option<f64>> = (0..50).map(|i| Some(i as f64 / 5.0)).collect();
        let y: Vec<Option<f64>> = (0..50).map(|i| Some((i as f64 / 5.0).exp())).collect();
        let s = spearman(&x, &y).unwrap();
        let p = pearson(&x, &y).unwrap();
        assert!((s - 1.0).abs() < 1e-12, "spearman {s}");
        assert!(p < 0.95, "pearson {p}");
    }

    #[test]
    fn both_miss_even_functions() {
        // y = x² on symmetric x: both correlations ≈ 0 (motivates MI).
        let x: Vec<Option<f64>> = (-50..=50).map(|i| Some(i as f64 / 10.0)).collect();
        let y: Vec<Option<f64>> = (-50..=50)
            .map(|i| Some((i as f64 / 10.0).powi(2)))
            .collect();
        assert!(pearson(&x, &y).unwrap().abs() < 0.05);
        assert!(spearman(&x, &y).unwrap().abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let _ = pearson(&[Some(1.0)], &[Some(1.0), Some(2.0)]);
    }
}
