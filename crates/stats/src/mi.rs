//! Mutual information and the pairwise dependency matrix.
//!
//! The paper measures the statistical dependency between columns with
//! mutual information "because it is very flexible: it copes with mixed
//! values and it is sensitive to non-linear relationships". Continuous
//! columns are discretized (equal-frequency by default), then
//! `I(X;Y) = H(X) + H(Y) − H(X,Y)` over the contingency table. Dependency
//! graphs use a normalized variant so edge weights are comparable across
//! column pairs with different cardinalities.

use blaeu_store::{uniform_sample, ColumnRead, Result, TableView};

use crate::binning::{discretize, BinRule, BinStrategy, DiscreteColumn};
use crate::chi2::chi2_test;
use crate::contingency::ContingencyTable;
use crate::correlation::{pearson, spearman};
use crate::entropy::{entropy_from_counts, joint_entropy};

/// Mutual information I(X;Y) in nats from a contingency table.
pub fn mutual_information(table: &ContingencyTable) -> f64 {
    let hx = entropy_from_counts(&table.x_marginals());
    let hy = entropy_from_counts(&table.y_marginals());
    let hxy = joint_entropy(table);
    (hx + hy - hxy).max(0.0)
}

/// How to normalize mutual information into `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MiNormalization {
    /// No normalization (raw nats).
    None,
    /// `I / min(H(X), H(Y))` — 1 when one variable determines the other.
    Min,
    /// `I / max(H(X), H(Y))` — stricter; 1 only for a bijection.
    Max,
    /// `I / sqrt(H(X)·H(Y))` — geometric mean (the common "NMI").
    Sqrt,
}

/// Normalized mutual information in `[0, 1]` (except [`MiNormalization::None`]).
///
/// Pairs where either variable has zero entropy (constant columns) score 0:
/// a constant carries no information about anything.
pub fn normalized_mutual_information(table: &ContingencyTable, norm: MiNormalization) -> f64 {
    let hx = entropy_from_counts(&table.x_marginals());
    let hy = entropy_from_counts(&table.y_marginals());
    let mi = mutual_information(table);
    let denom = match norm {
        MiNormalization::None => return mi,
        MiNormalization::Min => hx.min(hy),
        MiNormalization::Max => hx.max(hy),
        MiNormalization::Sqrt => (hx * hy).sqrt(),
    };
    if denom <= f64::EPSILON {
        0.0
    } else {
        (mi / denom).clamp(0.0, 1.0)
    }
}

/// Dependency measure for column pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DependencyMeasure {
    /// Normalized mutual information (the paper's choice).
    Nmi,
    /// Absolute Pearson correlation (linear only; numeric columns only —
    /// categorical pairs fall back to NMI).
    PearsonAbs,
    /// Absolute Spearman rank correlation (monotone only; same fallback).
    SpearmanAbs,
}

/// Options for [`dependency_matrix`].
#[derive(Debug, Clone)]
pub struct DependencyOptions {
    /// Dependency measure (default NMI with sqrt normalization).
    pub measure: DependencyMeasure,
    /// NMI normalization (ignored for correlation measures).
    pub normalization: MiNormalization,
    /// Binning strategy for numeric columns.
    pub strategy: BinStrategy,
    /// Bin-count rule.
    pub rule: BinRule,
    /// Row-sample cap: tables larger than this are sampled down before
    /// measuring (the paper computes dependencies on samples for latency).
    pub sample: Option<usize>,
    /// Seed for the row sample.
    pub seed: u64,
    /// Worker threads for the pairwise sweep (0 = all available cores).
    pub threads: usize,
    /// When set, edges whose chi-squared independence test is NOT
    /// significant at this level are zeroed — spurious dependencies
    /// measured on small samples disappear from the graph.
    pub significance_alpha: Option<f64>,
}

impl Default for DependencyOptions {
    fn default() -> Self {
        DependencyOptions {
            measure: DependencyMeasure::Nmi,
            normalization: MiNormalization::Sqrt,
            strategy: BinStrategy::EqualFrequency,
            rule: BinRule::SqrtCapped,
            sample: Some(2000),
            seed: 7,
            threads: 0,
            significance_alpha: None,
        }
    }
}

/// Maximum column pairs per dependency-sweep shard: small enough that a
/// band of expensive pairs rebalances across workers, large enough to
/// amortize a claim per shard on wide tables.
const PAIR_SHARD: usize = 16;

/// Shard size for an `npairs`-pair sweep: pair-per-shard below
/// [`PAIR_SHARD_TARGET`] shards (a handful of columns must still fan out
/// across every core — each pair is a full contingency scan), growing to
/// at most [`PAIR_SHARD`] pairs per shard on wide tables. A pure function
/// of the pair count, keeping the matrix thread-count independent.
const PAIR_SHARD_TARGET: usize = 64;
fn pair_shard_size(npairs: usize) -> usize {
    npairs.div_ceil(PAIR_SHARD_TARGET).clamp(1, PAIR_SHARD)
}

/// The canonical shard layout of an `m`-column dependency sweep — a pure
/// function of the column count, computable without data, so a
/// coordinator can carve the pair space into worker ranges and every
/// node agrees on shard boundaries.
pub fn dep_matrix_shard_spec(m: usize) -> blaeu_exec::ShardSpec {
    let npairs = m * m.saturating_sub(1) / 2;
    blaeu_exec::ShardSpec::with_shard_size(npairs, pair_shard_size(npairs))
}

/// Symmetric matrix of pairwise column dependencies in `[0, 1]`.
#[derive(Debug, Clone)]
pub struct DependencyMatrix {
    names: Vec<String>,
    values: Vec<f64>, // row-major full matrix, diagonal = 1
}

impl DependencyMatrix {
    /// Column names, in matrix order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Dependency between columns `i` and `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values[i * self.names.len() + j]
    }

    /// Dependency by column names, if both exist.
    pub fn get_by_name(&self, a: &str, b: &str) -> Option<f64> {
        let i = self.names.iter().position(|n| n == a)?;
        let j = self.names.iter().position(|n| n == b)?;
        Some(self.get(i, j))
    }

    /// Converts dependency to distance: `d = 1 − dependency`, clamped to
    /// `[0, 1]`. This is the matrix Blaeu clusters to find themes.
    pub fn to_distances(&self) -> Vec<f64> {
        self.values
            .iter()
            .map(|&v| (1.0 - v).clamp(0.0, 1.0))
            .collect()
    }

    /// Strongest `k` edges (i < j) by weight, descending.
    pub fn top_edges(&self, k: usize) -> Vec<(usize, usize, f64)> {
        let n = self.names.len();
        let mut edges: Vec<(usize, usize, f64)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .map(|(i, j)| (i, j, self.get(i, j)))
            .collect();
        edges.sort_by(|a, b| b.2.total_cmp(&a.2));
        edges.truncate(k);
        edges
    }
}

/// One-time preparation for the sharded dependency sweep: validated
/// names, per-column discretizations and numeric views over the (possibly
/// sampled) rows, and the canonical pair shard layout. Preparing is a
/// pure function of the view contents and the options, so every replica
/// of the data builds an identical sketch.
#[derive(Debug, Clone)]
pub struct DepMatrixSketch {
    names: Vec<String>,
    discs: Vec<DiscreteColumn>,
    numerics: Vec<Option<Vec<Option<f64>>>>,
    pairs: Vec<(usize, usize)>,
    opts: DependencyOptions,
    spec: blaeu_exec::ShardSpec,
}

impl DepMatrixSketch {
    /// Prepares the sweep: validates names, samples rows once (a
    /// selection, not a copy), discretizes each column once and keeps
    /// numeric views for the correlation measures.
    ///
    /// # Errors
    /// Returns an error for unknown column names.
    pub fn prepare(view: &TableView, columns: &[&str], opts: &DependencyOptions) -> Result<Self> {
        let m = columns.len();
        for &c in columns {
            view.col_by_name(c)?;
        }
        let sampled: TableView = match opts.sample {
            Some(cap) if view.nrows() > cap => {
                let rows = uniform_sample(view.nrows(), cap, opts.seed);
                view.select(&rows)?
            }
            _ => view.clone(),
        };
        let mut discs = Vec::with_capacity(m);
        let mut numerics: Vec<Option<Vec<Option<f64>>>> = Vec::with_capacity(m);
        for &c in columns {
            let col = sampled.col_by_name(c)?;
            discs.push(discretize(&col, opts.strategy, opts.rule));
            numerics.push(if col.data_type().is_numeric() {
                Some(col.to_f64_vec())
            } else {
                None
            });
        }
        let pairs: Vec<(usize, usize)> = (0..m)
            .flat_map(|i| ((i + 1)..m).map(move |j| (i, j)))
            .collect();
        Ok(DepMatrixSketch {
            names: columns.iter().map(|&s| s.to_owned()).collect(),
            discs,
            numerics,
            pairs,
            opts: opts.clone(),
            spec: dep_matrix_shard_spec(m),
        })
    }

    /// Column names, in matrix order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The canonical pair shard layout (matches
    /// [`dep_matrix_shard_spec`] for the sketch's column count).
    pub fn shard_spec(&self) -> &blaeu_exec::ShardSpec {
        &self.spec
    }

    /// Measures one canonical shard of the pair sweep, returning its cell
    /// values in pair order — the unit of work a worker executes.
    pub fn run_shard(&self, s: usize) -> Vec<f64> {
        self.pairs[self.spec.range(s)]
            .iter()
            .map(|&(i, j)| {
                measure_pair(
                    &self.discs[i],
                    &self.discs[j],
                    self.numerics[i].as_deref(),
                    self.numerics[j].as_deref(),
                    &self.opts,
                )
            })
            .collect()
    }

    /// Runs a contiguous range of shards in parallel and merges their
    /// partials in shard order. `run_range(0..shard_count)` is the full
    /// single-node sweep; a worker runs its assigned sub-range.
    pub fn run_range(&self, shards: std::ops::Range<usize>, threads: usize) -> Vec<f64> {
        let start = shards.start;
        let parts = blaeu_exec::par_map_range_grained(shards.len(), threads, 1, |i| {
            self.run_shard(start + i)
        });
        let mut cells = Vec::new();
        for part in parts {
            merge_dep_cells(&mut cells, part);
        }
        cells
    }
}

/// Merges two dependency-cell partials produced by adjacent shard
/// ranges: cells are kept in pair order, so the merge is concatenation —
/// associative in shard order by construction.
pub fn merge_dep_cells(a: &mut Vec<f64>, mut b: Vec<f64>) {
    a.append(&mut b);
}

/// Assembles the symmetric matrix from the fully merged cell run (one
/// value per `i < j` pair in pair order, diagonal fixed at 1). Needs no
/// column data, so a coordinator can finalize merged worker partials.
///
/// # Panics
/// Panics if `cells.len()` is not the pair count for `names.len()`.
pub fn finalize_dep_cells(names: Vec<String>, cells: &[f64]) -> DependencyMatrix {
    let m = names.len();
    assert_eq!(cells.len(), m * m.saturating_sub(1) / 2, "cell count");
    let mut values = vec![0.0f64; m * m];
    for i in 0..m {
        values[i * m + i] = 1.0;
    }
    let pairs = (0..m).flat_map(|i| ((i + 1)..m).map(move |j| (i, j)));
    for ((i, j), &v) in pairs.zip(cells) {
        values[i * m + j] = v;
        values[j * m + i] = v;
    }
    DependencyMatrix { names, values }
}

fn measure_pair(
    x: &DiscreteColumn,
    y: &DiscreteColumn,
    xn: Option<&[Option<f64>]>,
    yn: Option<&[Option<f64>]>,
    opts: &DependencyOptions,
) -> f64 {
    match opts.measure {
        DependencyMeasure::Nmi => {
            let ct = ContingencyTable::from_codes(x, y);
            if let Some(alpha) = opts.significance_alpha {
                if !chi2_test(&ct).significant(alpha) {
                    return 0.0;
                }
            }
            normalized_mutual_information(&ct, opts.normalization)
        }
        DependencyMeasure::PearsonAbs => match (xn, yn) {
            (Some(a), Some(b)) => pearson(a, b).unwrap_or(0.0).abs(),
            _ => {
                let ct = ContingencyTable::from_codes(x, y);
                normalized_mutual_information(&ct, opts.normalization)
            }
        },
        DependencyMeasure::SpearmanAbs => match (xn, yn) {
            (Some(a), Some(b)) => spearman(a, b).unwrap_or(0.0).abs(),
            _ => {
                let ct = ContingencyTable::from_codes(x, y);
                normalized_mutual_information(&ct, opts.normalization)
            }
        },
    }
}

/// Computes the pairwise dependency matrix over the named columns of a
/// view.
///
/// The sweep over the `m·(m−1)/2` pairs is parallelized with scoped threads;
/// discretization happens once per column. Sampling narrows the view (an
/// index re-map) instead of materializing a sub-table.
///
/// # Errors
/// Returns an error for unknown column names.
pub fn dependency_matrix(
    view: &TableView,
    columns: &[&str],
    opts: &DependencyOptions,
) -> Result<DependencyMatrix> {
    // The pairwise sweep is sharded over the pair list: each shard is one
    // steal-queue grain, so expensive pairs (high-cardinality contingency
    // tables) do not pin a worker while its siblings idle. Per-shard
    // partials merge in shard order — the flattened sequence is the pair
    // order — so the matrix is bit-identical for any parallelism level
    // and for any grouping of shards into worker ranges.
    let sketch = DepMatrixSketch::prepare(view, columns, opts)?;
    let cells = sketch.run_range(0..sketch.shard_spec().shard_count(), opts.threads);
    Ok(finalize_dep_cells(sketch.names.clone(), &cells))
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaeu_store::{Column, TableBuilder};

    fn dc(codes: Vec<Option<u32>>, cardinality: usize) -> DiscreteColumn {
        DiscreteColumn::from_options(codes, cardinality)
    }

    #[test]
    fn identical_variables_have_full_nmi() {
        let xs: Vec<Option<u32>> = (0..200).map(|i| Some(i % 4)).collect();
        let ct = ContingencyTable::from_codes(&dc(xs.clone(), 4), &dc(xs, 4));
        for norm in [
            MiNormalization::Min,
            MiNormalization::Max,
            MiNormalization::Sqrt,
        ] {
            let v = normalized_mutual_information(&ct, norm);
            assert!((v - 1.0).abs() < 1e-12, "norm {norm:?} gave {v}");
        }
        assert!((mutual_information(&ct) - 4f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn independent_variables_have_zero_mi() {
        let mut xc = Vec::new();
        let mut yc = Vec::new();
        for x in 0..4u32 {
            for y in 0..4u32 {
                for _ in 0..10 {
                    xc.push(Some(x));
                    yc.push(Some(y));
                }
            }
        }
        let ct = ContingencyTable::from_codes(&dc(xc, 4), &dc(yc, 4));
        assert!(mutual_information(&ct).abs() < 1e-12);
        assert!(normalized_mutual_information(&ct, MiNormalization::Sqrt) < 1e-12);
    }

    #[test]
    fn constant_column_scores_zero() {
        let xs: Vec<Option<u32>> = vec![Some(0); 50];
        let ys: Vec<Option<u32>> = (0..50).map(|i| Some(i % 2)).collect();
        let ct = ContingencyTable::from_codes(&dc(xs, 1), &dc(ys, 2));
        assert_eq!(
            normalized_mutual_information(&ct, MiNormalization::Sqrt),
            0.0
        );
    }

    fn toy_table(n: usize) -> TableView {
        // a ~ b (linear), c independent, d = a² (non-linear).
        let a: Vec<f64> = (0..n).map(|i| (i as f64 / n as f64) * 6.0 - 3.0).collect();
        let b: Vec<f64> = a.iter().map(|&v| 2.0 * v + 1.0).collect();
        let c: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % n) as f64).collect();
        let d: Vec<f64> = a.iter().map(|&v| v * v).collect();
        TableBuilder::new("toy")
            .column("a", Column::dense_f64(a))
            .unwrap()
            .column("b", Column::dense_f64(b))
            .unwrap()
            .column("c", Column::dense_f64(c))
            .unwrap()
            .column("d", Column::dense_f64(d))
            .unwrap()
            .build()
            .unwrap()
            .into()
    }

    #[test]
    fn dependency_matrix_finds_linear_dependency() {
        let t = toy_table(600);
        let dm = dependency_matrix(&t, &["a", "b", "c"], &DependencyOptions::default()).unwrap();
        assert_eq!(dm.len(), 3);
        assert!((dm.get(0, 0) - 1.0).abs() < 1e-12);
        let ab = dm.get_by_name("a", "b").unwrap();
        let ac = dm.get_by_name("a", "c").unwrap();
        assert!(ab > 0.8, "a~b dependency should be strong, got {ab}");
        assert!(ac < 0.35, "a~c dependency should be weak, got {ac}");
        assert_eq!(dm.get(0, 1), dm.get(1, 0), "symmetric");
    }

    #[test]
    fn nmi_detects_nonlinear_where_pearson_fails() {
        let t = toy_table(600);
        let nmi = dependency_matrix(&t, &["a", "d"], &DependencyOptions::default()).unwrap();
        let pea = dependency_matrix(
            &t,
            &["a", "d"],
            &DependencyOptions {
                measure: DependencyMeasure::PearsonAbs,
                ..DependencyOptions::default()
            },
        )
        .unwrap();
        let nmi_ad = nmi.get(0, 1);
        let pea_ad = pea.get(0, 1);
        assert!(
            nmi_ad > 0.5,
            "NMI should detect the quadratic dependency, got {nmi_ad}"
        );
        assert!(
            pea_ad < 0.2,
            "Pearson should miss the even function, got {pea_ad}"
        );
    }

    #[test]
    fn sampling_keeps_estimates_stable() {
        let t = toy_table(5000);
        let full = dependency_matrix(
            &t,
            &["a", "b"],
            &DependencyOptions {
                sample: None,
                ..DependencyOptions::default()
            },
        )
        .unwrap();
        let sampled = dependency_matrix(
            &t,
            &["a", "b"],
            &DependencyOptions {
                sample: Some(500),
                ..DependencyOptions::default()
            },
        )
        .unwrap();
        assert!(
            (full.get(0, 1) - sampled.get(0, 1)).abs() < 0.15,
            "sampled {} vs full {}",
            sampled.get(0, 1),
            full.get(0, 1)
        );
    }

    #[test]
    fn top_edges_sorted_descending() {
        let t = toy_table(400);
        let dm =
            dependency_matrix(&t, &["a", "b", "c", "d"], &DependencyOptions::default()).unwrap();
        let edges = dm.top_edges(3);
        assert_eq!(edges.len(), 3);
        assert!(edges.windows(2).all(|w| w[0].2 >= w[1].2));
        // Strongest edge should be a-b.
        assert_eq!((edges[0].0, edges[0].1), (0, 1));
    }

    #[test]
    fn distances_complement_dependencies() {
        let t = toy_table(300);
        let dm = dependency_matrix(&t, &["a", "b"], &DependencyOptions::default()).unwrap();
        let d = dm.to_distances();
        assert!((d[0] - 0.0).abs() < 1e-12, "diagonal distance is 0");
        assert!((d[1] - (1.0 - dm.get(0, 1))).abs() < 1e-12);
    }

    #[test]
    fn unknown_column_errors() {
        let t = toy_table(50);
        assert!(dependency_matrix(&t, &["a", "ghost"], &DependencyOptions::default()).is_err());
    }

    #[test]
    fn single_column_matrix() {
        let t = toy_table(50);
        let dm = dependency_matrix(&t, &["a"], &DependencyOptions::default()).unwrap();
        assert_eq!(dm.len(), 1);
        assert_eq!(dm.get(0, 0), 1.0);
        assert!(dm.top_edges(5).is_empty());
    }

    #[test]
    fn significance_filter_prunes_noise_edges() {
        // Two independent columns on a small sample: raw NMI is a small
        // positive number (estimation noise); the chi-squared filter
        // zeroes it, while a genuinely dependent pair survives.
        let n = 120;
        let a: Vec<f64> = (0..n).map(|i| ((i * 7919 + 13) % 97) as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| ((i * 104729 + 7) % 89) as f64).collect();
        let c: Vec<f64> = a.iter().map(|v| v * 2.0 + 1.0).collect();
        let t: TableView = TableBuilder::new("sig")
            .column("a", Column::dense_f64(a))
            .unwrap()
            .column("b", Column::dense_f64(b))
            .unwrap()
            .column("c", Column::dense_f64(c))
            .unwrap()
            .build()
            .unwrap()
            .into();
        let opts = DependencyOptions {
            significance_alpha: Some(0.01),
            ..DependencyOptions::default()
        };
        let filtered = dependency_matrix(&t, &["a", "b", "c"], &opts).unwrap();
        let raw = dependency_matrix(&t, &["a", "b", "c"], &DependencyOptions::default()).unwrap();
        assert!(raw.get(0, 1) > 0.0, "raw noise edge is nonzero");
        assert_eq!(filtered.get(0, 1), 0.0, "noise edge pruned");
        assert!(filtered.get(0, 2) > 0.5, "real edge survives");
    }

    #[test]
    fn dependency_matrix_bit_identical_across_thread_counts() {
        // The executor returns pair results in input order whatever the
        // chunking, so every cell must match the serial run bit-for-bit.
        let t = toy_table(600);
        let opts_for = |threads| DependencyOptions {
            threads,
            ..DependencyOptions::default()
        };
        let cols = ["a", "b", "c", "d"];
        let serial = dependency_matrix(&t, &cols, &opts_for(1)).unwrap();
        for threads in [2usize, 4, 8] {
            let parallel = dependency_matrix(&t, &cols, &opts_for(threads)).unwrap();
            for i in 0..cols.len() {
                for j in 0..cols.len() {
                    assert_eq!(
                        serial.get(i, j).to_bits(),
                        parallel.get(i, j).to_bits(),
                        "cell ({i},{j}) differs at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn mixed_categorical_numeric_pair() {
        // Categorical column that tracks sign(a) should have high NMI with a.
        let n = 400;
        let a: Vec<f64> = (0..n).map(|i| i as f64 - n as f64 / 2.0).collect();
        let lab: Vec<String> = a
            .iter()
            .map(|&v| {
                if v < 0.0 {
                    "neg".to_owned()
                } else {
                    "pos".to_owned()
                }
            })
            .collect();
        let t: TableView = TableBuilder::new("mix")
            .column("a", Column::dense_f64(a))
            .unwrap()
            .column(
                "sign",
                Column::from_strs(lab.iter().map(|s| Some(s.as_str()))),
            )
            .unwrap()
            .build()
            .unwrap()
            .into();
        let dm = dependency_matrix(&t, &["a", "sign"], &DependencyOptions::default()).unwrap();
        assert!(dm.get(0, 1) > 0.3, "got {}", dm.get(0, 1));
    }
}
