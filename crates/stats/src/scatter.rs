//! Bivariate summaries — the scatter-plots of the *highlight* action.
//!
//! "For more details, our prototype provides classic univariate and
//! bivariate visualization methods, such as histograms and scatter-plots."
//! A [`ScatterGrid`] is a 2-D binned density over two numeric columns,
//! renderable as a terminal density plot.

use blaeu_store::ColumnRead;

/// A 2-D histogram (density grid) over two numeric columns.
#[derive(Debug, Clone, PartialEq)]
pub struct ScatterGrid {
    /// Grid counts, row-major: `counts[y * xbins + x]`, y increasing
    /// upward in value space.
    counts: Vec<usize>,
    xbins: usize,
    ybins: usize,
    /// Value range of the x axis.
    pub x_range: (f64, f64),
    /// Value range of the y axis.
    pub y_range: (f64, f64),
    /// Rows skipped because either coordinate was NULL.
    pub dropped: usize,
}

impl ScatterGrid {
    /// Bins the pairwise-complete values of two columns (owned or
    /// view-selected — any [`ColumnRead`]) into an `xbins × ybins` grid.
    ///
    /// Degenerate inputs (no complete pairs, or zero range) produce a grid
    /// with all mass in one cell.
    ///
    /// # Panics
    /// Panics if column lengths differ or a bin count is zero.
    pub fn build<C: ColumnRead>(x: &C, y: &C, xbins: usize, ybins: usize) -> ScatterGrid {
        assert_eq!(x.len(), y.len(), "column length mismatch");
        assert!(xbins > 0 && ybins > 0, "bins must be positive");
        let pairs: Vec<(f64, f64)> = (0..x.len())
            .filter_map(|i| Some((x.numeric_at(i)?, y.numeric_at(i)?)))
            .collect();
        let dropped = x.len() - pairs.len();
        if pairs.is_empty() {
            return ScatterGrid {
                counts: vec![0; xbins * ybins],
                xbins,
                ybins,
                x_range: (0.0, 1.0),
                y_range: (0.0, 1.0),
                dropped,
            };
        }
        let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(a, b) in &pairs {
            x_lo = x_lo.min(a);
            x_hi = x_hi.max(a);
            y_lo = y_lo.min(b);
            y_hi = y_hi.max(b);
        }
        let x_span = if x_hi > x_lo { x_hi - x_lo } else { 1.0 };
        let y_span = if y_hi > y_lo { y_hi - y_lo } else { 1.0 };
        let mut counts = vec![0usize; xbins * ybins];
        for &(a, b) in &pairs {
            let cx = (((a - x_lo) / x_span) * xbins as f64) as usize;
            let cy = (((b - y_lo) / y_span) * ybins as f64) as usize;
            let cx = cx.min(xbins - 1);
            let cy = cy.min(ybins - 1);
            counts[cy * xbins + cx] += 1;
        }
        ScatterGrid {
            counts,
            xbins,
            ybins,
            x_range: (x_lo, x_hi),
            y_range: (y_lo, y_hi),
            dropped,
        }
    }

    /// Grid dimensions `(xbins, ybins)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.xbins, self.ybins)
    }

    /// Count in cell `(x, y)`.
    pub fn count(&self, x: usize, y: usize) -> usize {
        self.counts[y * self.xbins + x]
    }

    /// Total binned observations.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Renders the grid as a terminal density plot (top row = largest y).
    ///
    /// Density glyphs: ` `, `·`, `▪`, `▓`, `█` by quartile of the maximum
    /// cell count.
    pub fn render(&self, x_label: &str, y_label: &str) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0);
        let glyph = |c: usize| -> char {
            if c == 0 || max == 0 {
                ' '
            } else {
                let q = (c * 4).div_ceil(max);
                match q {
                    1 => '·',
                    2 => '▪',
                    3 => '▓',
                    _ => '█',
                }
            }
        };
        let mut out = String::new();
        out.push_str(&format!(
            "{y_label} ({:.2}..{:.2}) vs {x_label} ({:.2}..{:.2}), {} points\n",
            self.y_range.0,
            self.y_range.1,
            self.x_range.0,
            self.x_range.1,
            self.total()
        ));
        for y in (0..self.ybins).rev() {
            out.push_str("  |");
            for x in 0..self.xbins {
                out.push(glyph(self.count(x, y)));
            }
            out.push('\n');
        }
        out.push_str("  +");
        out.push_str(&"-".repeat(self.xbins));
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaeu_store::Column;

    #[test]
    fn bins_cover_all_pairs() {
        let x = Column::dense_f64((0..100).map(f64::from).collect());
        let y = Column::dense_f64((0..100).map(|i| f64::from(i) * 2.0).collect());
        let g = ScatterGrid::build(&x, &y, 10, 8);
        assert_eq!(g.total(), 100);
        assert_eq!(g.dropped, 0);
        assert_eq!(g.shape(), (10, 8));
        assert_eq!(g.x_range, (0.0, 99.0));
        assert_eq!(g.y_range, (0.0, 198.0));
    }

    #[test]
    fn linear_relation_fills_diagonal() {
        let x = Column::dense_f64((0..400).map(|i| f64::from(i) / 4.0).collect());
        let y = Column::dense_f64((0..400).map(|i| f64::from(i) / 4.0).collect());
        let g = ScatterGrid::build(&x, &y, 8, 8);
        // All mass on the diagonal, nothing off it.
        for cy in 0..8 {
            for cx in 0..8 {
                if cx == cy {
                    assert!(g.count(cx, cy) > 0);
                } else {
                    assert_eq!(g.count(cx, cy), 0, "off-diagonal ({cx},{cy})");
                }
            }
        }
    }

    #[test]
    fn nulls_dropped_pairwise() {
        let x = Column::from_f64s([Some(1.0), None, Some(3.0)]);
        let y = Column::from_f64s([Some(1.0), Some(2.0), None]);
        let g = ScatterGrid::build(&x, &y, 4, 4);
        assert_eq!(g.total(), 1);
        assert_eq!(g.dropped, 2);
    }

    #[test]
    fn degenerate_inputs() {
        // All NULL.
        let x = Column::from_f64s([None, None]);
        let y = Column::from_f64s([None, None]);
        let g = ScatterGrid::build(&x, &y, 3, 3);
        assert_eq!(g.total(), 0);
        // Constant values: everything in one cell.
        let x = Column::dense_f64(vec![5.0; 10]);
        let y = Column::dense_f64(vec![7.0; 10]);
        let g = ScatterGrid::build(&x, &y, 3, 3);
        assert_eq!(g.total(), 10);
        assert_eq!(g.count(0, 0), 10);
    }

    #[test]
    fn render_shows_density() {
        let x = Column::dense_f64((0..200).map(|i| f64::from(i % 20)).collect());
        let y = Column::dense_f64((0..200).map(|i| f64::from(i / 20)).collect());
        let text = ScatterGrid::build(&x, &y, 12, 6).render("xcol", "ycol");
        assert!(text.contains("ycol"));
        assert!(text.contains("xcol"));
        assert!(text.lines().count() >= 8, "{text}");
        assert!(text.contains('█') || text.contains('▓') || text.contains('▪'));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let x = Column::dense_f64(vec![1.0]);
        let y = Column::dense_f64(vec![1.0, 2.0]);
        let _ = ScatterGrid::build(&x, &y, 2, 2);
    }
}
