//! # blaeu-stats — statistics substrate
//!
//! The statistical machinery that the paper delegates to R: discretization,
//! Shannon entropy, (normalized) mutual information over mixed-type column
//! pairs, Pearson/Spearman correlation, column summaries and histograms.
//! The centerpiece is [`dependency_matrix`], which computes the pairwise
//! column-dependency weights of Blaeu's *dependency graph* (Figure 2 of the
//! paper) with per-pair NMI, optional row sampling and a parallel sweep.
//!
//! ```
//! use blaeu_store::{Column, TableBuilder, TableView};
//! use blaeu_stats::{dependency_matrix, DependencyOptions};
//!
//! let xs: Vec<f64> = (0..300).map(|i| i as f64 / 10.0).collect();
//! let ys: Vec<f64> = xs.iter().map(|v| v * 2.0).collect();
//! let view: TableView = TableBuilder::new("t")
//!     .column("x", Column::dense_f64(xs)).unwrap()
//!     .column("y", Column::dense_f64(ys)).unwrap()
//!     .build().unwrap()
//!     .into();
//!
//! let dm = dependency_matrix(&view, &["x", "y"], &DependencyOptions::default()).unwrap();
//! assert!(dm.get(0, 1) > 0.8); // strong dependency
//! ```

#![warn(missing_docs)]

pub mod binning;
pub mod chi2;
pub mod contingency;
pub mod correlation;
pub mod describe;
pub mod entropy;
pub mod histogram;
pub mod mi;
pub mod scatter;

pub use binning::{discretize, BinRule, BinStrategy, DiscreteColumn, Discretizer};
pub use chi2::{chi2_p_value, chi2_test, Chi2Test};
pub use contingency::ContingencyTable;
pub use correlation::{pearson, ranks, spearman};
pub use describe::{
    describe, describe_kind, describe_shard, finalize_describe, row_shard_spec, CategoricalSummary,
    ColumnSummary, DescribeKind, DescribePartial, NumericSummary,
};
pub use entropy::{entropy, entropy_from_counts, joint_entropy};
pub use histogram::{
    finalize_histogram, histogram, histogram_prepare, histogram_shard, Histogram, HistogramMode,
    HistogramPartial, HistogramSketch,
};
pub use mi::{
    dep_matrix_shard_spec, dependency_matrix, finalize_dep_cells, merge_dep_cells,
    mutual_information, normalized_mutual_information, DepMatrixSketch, DependencyMatrix,
    DependencyMeasure, DependencyOptions, MiNormalization,
};
pub use scatter::ScatterGrid;
