//! Pearson's chi-squared test of independence.
//!
//! Mutual information measures *how much* two columns depend on each
//! other; the chi-squared test says whether the observed dependency could
//! plausibly be sampling noise. Blaeu computes dependencies on samples, so
//! significance filtering keeps spurious edges out of sparse dependency
//! graphs.

use crate::contingency::ContingencyTable;

/// Result of a chi-squared independence test.
#[derive(Debug, Clone, PartialEq)]
pub struct Chi2Test {
    /// The chi-squared statistic.
    pub statistic: f64,
    /// Degrees of freedom `(rows − 1)(cols − 1)`.
    pub dof: usize,
    /// Upper-tail p-value `P(X² ≥ statistic)`.
    pub p_value: f64,
}

impl Chi2Test {
    /// True when independence is rejected at significance `alpha`.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Regularized lower incomplete gamma function `P(s, x)`, via the series
/// expansion for `x < s + 1` and the continued fraction otherwise
/// (Numerical Recipes §6.2). Accurate to ~1e-10 over the range used here.
fn gamma_p(s: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    let ln_gamma_s = ln_gamma(s);
    if x < s + 1.0 {
        // Series: P(s,x) = x^s e^-x / Γ(s) Σ x^n / (s(s+1)…(s+n))
        let mut term = 1.0 / s;
        let mut sum = term;
        let mut denom = s;
        for _ in 0..500 {
            denom += 1.0;
            term *= x / denom;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum * (s * x.ln() - x - ln_gamma_s).exp()).clamp(0.0, 1.0)
    } else {
        // Continued fraction for Q(s,x); P = 1 − Q.
        let mut b = x + 1.0 - s;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - s);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (s * x.ln() - x - ln_gamma_s).exp() * h;
        (1.0 - q).clamp(0.0, 1.0)
    }
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Upper-tail p-value of the chi-squared distribution with `dof` degrees
/// of freedom at `statistic`.
pub fn chi2_p_value(statistic: f64, dof: usize) -> f64 {
    if dof == 0 {
        return 1.0;
    }
    (1.0 - gamma_p(dof as f64 / 2.0, statistic / 2.0)).clamp(0.0, 1.0)
}

/// Runs the chi-squared test of independence on a contingency table.
///
/// Rows/columns with zero marginals contribute neither cells nor degrees
/// of freedom. An empty table (or one with a single non-empty row or
/// column) yields statistic 0 with p-value 1.
pub fn chi2_test(table: &ContingencyTable) -> Chi2Test {
    let total = table.total();
    let (nx, ny) = table.shape();
    let xm = table.x_marginals();
    let ym = table.y_marginals();
    let live_x = xm.iter().filter(|&&m| m > 0).count();
    let live_y = ym.iter().filter(|&&m| m > 0).count();
    if total == 0 || live_x <= 1 || live_y <= 1 {
        return Chi2Test {
            statistic: 0.0,
            dof: 0,
            p_value: 1.0,
        };
    }
    let total_f = total as f64;
    let mut statistic = 0.0;
    for (x, &mx) in xm.iter().enumerate().take(nx) {
        if mx == 0 {
            continue;
        }
        for (y, &my) in ym.iter().enumerate().take(ny) {
            if my == 0 {
                continue;
            }
            let expected = mx as f64 * my as f64 / total_f;
            let observed = table.count(x, y) as f64;
            statistic += (observed - expected) * (observed - expected) / expected;
        }
    }
    let dof = (live_x - 1) * (live_y - 1);
    Chi2Test {
        statistic,
        dof,
        p_value: chi2_p_value(statistic, dof),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::DiscreteColumn;

    fn dc(codes: Vec<Option<u32>>, cardinality: usize) -> DiscreteColumn {
        DiscreteColumn::from_options(codes, cardinality)
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn chi2_p_value_reference_points() {
        // Classic table values: χ²(3.841, 1) ≈ 0.05; χ²(5.991, 2) ≈ 0.05;
        // χ²(6.635, 1) ≈ 0.01.
        assert!((chi2_p_value(3.841, 1) - 0.05).abs() < 1e-3);
        assert!((chi2_p_value(5.991, 2) - 0.05).abs() < 1e-3);
        assert!((chi2_p_value(6.635, 1) - 0.01).abs() < 1e-3);
        // Extremes.
        assert_eq!(chi2_p_value(0.0, 3), 1.0);
        assert!(chi2_p_value(1000.0, 3) < 1e-10);
        assert_eq!(chi2_p_value(5.0, 0), 1.0);
    }

    #[test]
    fn independent_data_not_significant() {
        // Perfectly independent 2×2 layout.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for x in 0..2u32 {
            for y in 0..2u32 {
                for _ in 0..50 {
                    xs.push(Some(x));
                    ys.push(Some(y));
                }
            }
        }
        let ct = ContingencyTable::from_codes(&dc(xs, 2), &dc(ys, 2));
        let t = chi2_test(&ct);
        assert!(t.statistic < 1e-9);
        assert_eq!(t.dof, 1);
        assert!(!t.significant(0.05));
        assert!((t.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dependent_data_significant() {
        // Y = X for 100 rows: maximal dependence.
        let xs: Vec<Option<u32>> = (0..100).map(|i| Some(i % 2)).collect();
        let ct = ContingencyTable::from_codes(&dc(xs.clone(), 2), &dc(xs, 2));
        let t = chi2_test(&ct);
        assert!((t.statistic - 100.0).abs() < 1e-9, "N for a perfect 2x2");
        assert!(t.significant(0.001));
    }

    #[test]
    fn degenerate_tables() {
        // Single live column.
        let xs: Vec<Option<u32>> = (0..20).map(|i| Some(i % 4)).collect();
        let ys: Vec<Option<u32>> = vec![Some(0); 20];
        let ct = ContingencyTable::from_codes(&dc(xs, 4), &dc(ys, 3));
        let t = chi2_test(&ct);
        assert_eq!(t.dof, 0);
        assert_eq!(t.p_value, 1.0);
        // Empty table.
        let ct = ContingencyTable::from_codes(&dc(vec![None], 2), &dc(vec![Some(0)], 2));
        assert_eq!(chi2_test(&ct).p_value, 1.0);
    }

    #[test]
    fn empty_marginals_excluded_from_dof() {
        // Declared cardinality 5 but only 2 live levels per side.
        let xs: Vec<Option<u32>> = (0..40).map(|i| Some((i % 2) * 4)).collect();
        let ys: Vec<Option<u32>> = (0..40).map(|i| Some((i % 2) * 3)).collect();
        let ct = ContingencyTable::from_codes(&dc(xs, 5), &dc(ys, 5));
        let t = chi2_test(&ct);
        assert_eq!(t.dof, 1, "only live levels count");
        assert!(t.significant(0.001));
    }

    #[test]
    fn gamma_p_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..40 {
            let v = gamma_p(2.5, i as f64 * 0.5);
            assert!(v >= prev - 1e-12);
            assert!((0.0..=1.0).contains(&v));
            prev = v;
        }
    }
}
