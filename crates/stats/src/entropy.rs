//! Shannon entropy over discrete distributions (natural log).

use crate::binning::DiscreteColumn;
use crate::contingency::ContingencyTable;

/// Entropy (in nats) of a discrete distribution given by counts.
///
/// Zero counts contribute nothing; an empty or single-symbol distribution
/// has zero entropy.
pub fn entropy_from_counts(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total_f = total as f64;
    let mut h = 0.0;
    for &c in counts {
        if c > 0 {
            let p = c as f64 / total_f;
            h -= p * p.ln();
        }
    }
    h.max(0.0)
}

/// Entropy (in nats) of a discrete column, ignoring NULL rows (the count
/// pass walks the validity bitmap word-wise over the dense code slice).
pub fn entropy(column: &DiscreteColumn) -> f64 {
    let mut counts = vec![0u64; column.cardinality.max(1)];
    for row in column.validity.iter_ones() {
        counts[column.codes[row] as usize] += 1;
    }
    entropy_from_counts(&counts)
}

/// Joint entropy H(X, Y) (in nats) from a contingency table.
pub fn joint_entropy(table: &ContingencyTable) -> f64 {
    let total = table.total();
    if total == 0 {
        return 0.0;
    }
    let total_f = total as f64;
    let mut h = 0.0;
    for (_, _, c) in table.iter_nonzero() {
        let p = c as f64 / total_f;
        h -= p * p.ln();
    }
    h.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc(codes: Vec<Option<u32>>, cardinality: usize) -> DiscreteColumn {
        DiscreteColumn::from_options(codes, cardinality)
    }

    #[test]
    fn uniform_distribution_has_log_k_entropy() {
        let counts = [10u64, 10, 10, 10];
        let h = entropy_from_counts(&counts);
        assert!((h - 4f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_distribution_zero_entropy() {
        assert_eq!(entropy_from_counts(&[42]), 0.0);
        assert_eq!(entropy_from_counts(&[42, 0, 0]), 0.0);
        assert_eq!(entropy_from_counts(&[]), 0.0);
        assert_eq!(entropy_from_counts(&[0, 0]), 0.0);
    }

    #[test]
    fn entropy_ignores_nulls() {
        let col = dc(vec![Some(0), Some(1), None, None], 2);
        let h = entropy(&col);
        assert!((h - 2f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn skew_reduces_entropy() {
        let balanced = entropy_from_counts(&[50, 50]);
        let skewed = entropy_from_counts(&[90, 10]);
        assert!(balanced > skewed);
        assert!(skewed > 0.0);
    }

    #[test]
    fn joint_entropy_independent_adds() {
        // X uniform over {0,1}, Y uniform over {0,1}, independent:
        // H(X,Y) = H(X) + H(Y) = 2 ln 2.
        let mut xc = Vec::new();
        let mut yc = Vec::new();
        for x in 0..2u32 {
            for y in 0..2u32 {
                for _ in 0..25 {
                    xc.push(Some(x));
                    yc.push(Some(y));
                }
            }
        }
        let ct = ContingencyTable::from_codes(&dc(xc, 2), &dc(yc, 2));
        assert!((joint_entropy(&ct) - 2.0 * 2f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn joint_entropy_functional_dependence_equals_marginal() {
        // Y = X ⇒ H(X,Y) = H(X).
        let xs: Vec<Option<u32>> = (0..100).map(|i| Some(i % 4)).collect();
        let ct = ContingencyTable::from_codes(&dc(xs.clone(), 4), &dc(xs, 4));
        assert!((joint_entropy(&ct) - 4f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn empty_table_zero_joint_entropy() {
        let ct = ContingencyTable::from_codes(&dc(vec![None], 1), &dc(vec![Some(0)], 1));
        assert_eq!(joint_entropy(&ct), 0.0);
    }
}
