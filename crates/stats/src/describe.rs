//! Column summaries — the statistics behind Blaeu's *highlight* action.
//!
//! Highlighting a column shows its distribution inside each map region:
//! numeric columns get moments and quantiles, categorical columns get their
//! top categories.

use blaeu_store::{ColumnRead, DataType};

/// Summary of a numeric column (over non-NULL rows).
#[derive(Debug, Clone, PartialEq)]
pub struct NumericSummary {
    /// Number of non-NULL observations.
    pub count: usize,
    /// Number of NULL rows.
    pub nulls: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std: f64,
    /// Minimum value.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum value.
    pub max: f64,
}

/// Summary of a categorical (or boolean) column.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoricalSummary {
    /// Number of non-NULL observations.
    pub count: usize,
    /// Number of NULL rows.
    pub nulls: usize,
    /// Number of distinct categories observed.
    pub distinct: usize,
    /// Categories with counts, most frequent first (capped by the caller).
    pub top: Vec<(String, usize)>,
}

/// Summary of any column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnSummary {
    /// Numeric column summary.
    Numeric(NumericSummary),
    /// Categorical/boolean column summary.
    Categorical(CategoricalSummary),
}

impl ColumnSummary {
    /// Non-NULL observation count, whichever the variant.
    pub fn count(&self) -> usize {
        match self {
            ColumnSummary::Numeric(s) => s.count,
            ColumnSummary::Categorical(s) => s.count,
        }
    }
}

/// Linear-interpolation quantile of a **sorted** slice, `q ∈ [0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The canonical row shard layout for row-sharded column sketches
/// (describe, histogram, CLARA assignment): a pure function of the row
/// count — never of the thread or worker count — so every node agrees
/// on shard boundaries.
pub fn row_shard_spec(rows: usize) -> blaeu_exec::ShardSpec {
    blaeu_exec::ShardSpec::with_shard_size(rows, blaeu_exec::REDUCE_GRAIN)
}

/// Which describe accumulator a column feeds — numeric and categorical
/// columns build different partials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DescribeKind {
    /// Float/int column: the partial gathers raw values.
    Numeric,
    /// Categorical/bool column: the partial gathers label counts.
    Categorical,
}

/// The describe kind of a column, from its data type.
pub fn describe_kind<C: ColumnRead>(column: &C) -> DescribeKind {
    match column.data_type() {
        DataType::Float64 | DataType::Int64 => DescribeKind::Numeric,
        DataType::Categorical | DataType::Bool => DescribeKind::Categorical,
    }
}

/// A mergeable partial of a describe sketch over a contiguous row shard.
///
/// Exact quantiles need order statistics, so the numeric partial is a
/// value gather (values in row order); merging concatenates in shard
/// order, which rebuilds the exact full-column collection sequence —
/// the final sort, mean and quantiles are then bit-identical to the
/// sequential [`describe`] whatever the shard grouping. Categorical
/// counts are integer adds, exact under any association.
#[derive(Debug, Clone, PartialEq)]
pub enum DescribePartial {
    /// Gathered numeric values (row order) and the shard's NULL count.
    Numeric {
        /// Non-NULL values in row order.
        values: Vec<f64>,
        /// NULL rows in the shard.
        nulls: usize,
    },
    /// Label counts and the shard's NULL count.
    Categorical {
        /// Per-label observation counts.
        counts: std::collections::BTreeMap<String, usize>,
        /// NULL rows in the shard.
        nulls: usize,
    },
}

impl DescribePartial {
    /// The identity partial for a kind — what a worker returns for an
    /// empty shard range.
    pub fn empty(kind: DescribeKind) -> DescribePartial {
        match kind {
            DescribeKind::Numeric => DescribePartial::Numeric {
                values: Vec::new(),
                nulls: 0,
            },
            DescribeKind::Categorical => DescribePartial::Categorical {
                counts: std::collections::BTreeMap::new(),
                nulls: 0,
            },
        }
    }

    /// The kind of column this partial summarizes.
    pub fn kind(&self) -> DescribeKind {
        match self {
            DescribePartial::Numeric { .. } => DescribeKind::Numeric,
            DescribePartial::Categorical { .. } => DescribeKind::Categorical,
        }
    }

    /// Merges the next shard range's partial into this one. Shard-order
    /// associative: values concatenate, counts add.
    ///
    /// # Panics
    /// Panics if the two partials are of different kinds.
    pub fn merge(&mut self, other: DescribePartial) {
        match (self, other) {
            (
                DescribePartial::Numeric { values, nulls },
                DescribePartial::Numeric {
                    values: mut ov,
                    nulls: on,
                },
            ) => {
                values.append(&mut ov);
                *nulls += on;
            }
            (
                DescribePartial::Categorical { counts, nulls },
                DescribePartial::Categorical {
                    counts: oc,
                    nulls: on,
                },
            ) => {
                for (label, c) in oc {
                    *counts.entry(label).or_insert(0) += c;
                }
                *nulls += on;
            }
            _ => panic!("cannot merge describe partials of different kinds"),
        }
    }
}

/// Builds the describe partial for one contiguous row range of a column
/// — the unit of work a worker executes per canonical shard.
pub fn describe_shard<C: ColumnRead>(column: &C, rows: std::ops::Range<usize>) -> DescribePartial {
    match describe_kind(column) {
        DescribeKind::Numeric => {
            let values: Vec<f64> = rows.clone().filter_map(|i| column.numeric_at(i)).collect();
            let nulls = rows.len() - values.len();
            DescribePartial::Numeric { values, nulls }
        }
        DescribeKind::Categorical => {
            let mut counts = std::collections::BTreeMap::new();
            let mut nulls = 0usize;
            for i in rows {
                let v = column.get(i);
                if v.is_null() {
                    nulls += 1;
                } else {
                    *counts.entry(v.to_string()).or_insert(0) += 1;
                }
            }
            DescribePartial::Categorical { counts, nulls }
        }
    }
}

/// Finalizes a fully merged describe partial into the column summary.
/// Needs no column data, so a coordinator can finalize merged worker
/// partials.
pub fn finalize_describe(partial: DescribePartial, top_k: usize) -> ColumnSummary {
    match partial {
        DescribePartial::Numeric { mut values, nulls } => {
            if values.is_empty() {
                return ColumnSummary::Numeric(NumericSummary {
                    count: 0,
                    nulls,
                    mean: f64::NAN,
                    std: f64::NAN,
                    min: f64::NAN,
                    q1: f64::NAN,
                    median: f64::NAN,
                    q3: f64::NAN,
                    max: f64::NAN,
                });
            }
            values.sort_by(f64::total_cmp);
            let n = values.len();
            let mean = values.iter().sum::<f64>() / n as f64;
            let std = if n > 1 {
                (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
            } else {
                0.0
            };
            ColumnSummary::Numeric(NumericSummary {
                count: n,
                nulls,
                mean,
                std,
                min: values[0],
                q1: quantile_sorted(&values, 0.25),
                median: quantile_sorted(&values, 0.5),
                q3: quantile_sorted(&values, 0.75),
                max: values[n - 1],
            })
        }
        DescribePartial::Categorical { counts, nulls } => {
            let count = counts.values().sum();
            let distinct = counts.len();
            let mut top: Vec<(String, usize)> = counts.into_iter().collect();
            // Order by count descending, then label for determinism.
            top.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            top.truncate(top_k);
            ColumnSummary::Categorical(CategoricalSummary {
                count,
                nulls,
                distinct,
                top,
            })
        }
    }
}

/// Summarizes a column (owned or view-selected — any [`ColumnRead`]).
/// `top_k` caps the categorical top-list.
///
/// Routed through the describe sketch: the column is cut into canonical
/// row shards, per-shard partials merge in shard order, and the merged
/// partial finalizes — the same combine a distributed run performs, so
/// the result is bit-identical whether shards run here or on workers.
pub fn describe<C: ColumnRead>(column: &C, top_k: usize) -> ColumnSummary {
    let spec = row_shard_spec(column.len());
    let mut partial = DescribePartial::empty(describe_kind(column));
    for s in 0..spec.shard_count() {
        partial.merge(describe_shard(column, spec.range(s)));
    }
    finalize_describe(partial, top_k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaeu_store::Column;

    #[test]
    fn numeric_summary_basic() {
        let col = Column::from_f64s([Some(1.0), Some(2.0), Some(3.0), Some(4.0), None]);
        let ColumnSummary::Numeric(s) = describe(&col, 5) else {
            panic!("expected numeric");
        };
        assert_eq!(s.count, 4);
        assert_eq!(s.nulls, 1);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((s.q1 - 1.75).abs() < 1e-12);
        assert!((s.q3 - 3.25).abs() < 1e-12);
    }

    #[test]
    fn all_null_numeric() {
        let col = Column::from_f64s([None, None]);
        let ColumnSummary::Numeric(s) = describe(&col, 5) else {
            panic!("expected numeric");
        };
        assert_eq!(s.count, 0);
        assert_eq!(s.nulls, 2);
        assert!(s.mean.is_nan());
    }

    #[test]
    fn single_value_numeric() {
        let col = Column::from_f64s([Some(7.0)]);
        let ColumnSummary::Numeric(s) = describe(&col, 5) else {
            panic!("expected numeric");
        };
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.q1, 7.0);
    }

    #[test]
    fn categorical_top_sorted() {
        let col = Column::from_strs([
            Some("b"),
            Some("a"),
            Some("a"),
            Some("a"),
            Some("b"),
            Some("c"),
            None,
        ]);
        let ColumnSummary::Categorical(s) = describe(&col, 2) else {
            panic!("expected categorical");
        };
        assert_eq!(s.count, 6);
        assert_eq!(s.nulls, 1);
        assert_eq!(s.distinct, 3);
        assert_eq!(s.top, vec![("a".to_owned(), 3), ("b".to_owned(), 2)]);
    }

    #[test]
    fn categorical_ties_break_by_label() {
        let col = Column::from_strs([Some("z"), Some("a")]);
        let ColumnSummary::Categorical(s) = describe(&col, 5) else {
            panic!("expected categorical");
        };
        assert_eq!(s.top[0].0, "a");
        assert_eq!(s.top[1].0, "z");
    }

    #[test]
    fn bool_summary_is_categorical() {
        let col = Column::from_bools([Some(true), Some(true), Some(false)]);
        let ColumnSummary::Categorical(s) = describe(&col, 5) else {
            panic!("expected categorical");
        };
        assert_eq!(s.top[0], ("true".to_owned(), 2));
        assert_eq!(describe(&col, 5).count(), 3);
    }

    #[test]
    fn quantile_interpolation() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile_sorted(&sorted, 0.0), 10.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 40.0);
        assert!((quantile_sorted(&sorted, 0.5) - 25.0).abs() < 1e-12);
        assert!(quantile_sorted(&[], 0.5).is_nan());
        assert_eq!(quantile_sorted(&sorted, -3.0), 10.0, "clamped");
    }

    #[test]
    fn int_columns_summarized_numerically() {
        let col = Column::from_i64s([Some(1), Some(5), None]);
        assert!(matches!(describe(&col, 5), ColumnSummary::Numeric(_)));
    }
}
