//! A persistent worker pool with submit → join/poll/cancel job handles —
//! the executor primitive behind the asynchronous session tier.
//!
//! [`par_map`](crate::par_map) and friends are *batch* primitives: the
//! caller blocks until the whole fan-out finishes. A [`JobPool`] is the
//! complementary *queue* primitive: callers submit independent jobs and
//! get a [`JobHandle`] back immediately, so slow jobs (a full map build)
//! overlap with fast ones (a highlight) instead of serializing behind
//! them.
//!
//! The pool obeys the same invariants as the batch executor:
//!
//! * **Thread budget** — `JobPool::new(0)` sizes the pool from
//!   [`thread_budget`](crate::thread_budget), so `BLAEU_THREADS` caps the
//!   async tier exactly like the batch tier.
//! * **Nesting guard** — every pool worker is flagged as an executor
//!   worker, so any batch-executor call a job makes (CLARA, matrix
//!   builds, dependency sweeps) degrades to sequential on the worker's
//!   own thread instead of multiplying thread counts. A job's result is
//!   therefore bit-identical however many workers the pool has.
//! * **Panic transparency** — a panicking job never takes a worker down;
//!   the payload is captured and re-raised in the caller on
//!   [`JobHandle::join`].
//!
//! Jobs are claimed strictly in submission order off one shared queue
//! (FIFO claim, like the batch executor's claim cursor); completion order
//! depends on job cost. Dropping the pool drains the queue gracefully:
//! already-submitted jobs still run, then workers exit and are joined.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

/// A type-erased unit of queued work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its workers.
struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when work arrives or shutdown begins.
    work_cv: Condvar,
}

struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

/// A persistent pool of worker threads consuming a FIFO job queue.
///
/// See the [module docs](self) for the invariants. Cheap to share via the
/// handles it returns; the pool itself owns the worker threads and joins
/// them on drop (after draining already-submitted jobs). Pools may be
/// wrapped in an `Arc` and referenced from their own jobs via [`Weak`]
/// (how the session server re-schedules drain work): shutdown is
/// idempotent, self-joins are skipped, and [`JobPool::submit`] during
/// shutdown degrades to running the job inline, so no reference pattern
/// can strand a job or deadlock the teardown.
///
/// [`Weak`]: std::sync::Weak
pub struct JobPool {
    shared: Arc<PoolShared>,
    /// Drained by whichever thread performs the shutdown join; the
    /// spawned count is kept separately for [`JobPool::workers`].
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    spawned: usize,
}

impl std::fmt::Debug for JobPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobPool")
            .field("workers", &self.spawned)
            .field("queued", &self.queued())
            .finish()
    }
}

impl JobPool {
    /// Spawns a pool with `threads` workers (`0` = the process
    /// [`thread_budget`](crate::thread_budget), clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            crate::thread_budget()
        } else {
            threads
        }
        .max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("blaeu-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a pool worker cannot fail")
            })
            .collect();
        JobPool {
            shared,
            handles: Mutex::new(handles),
            spawned: threads,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.spawned
    }

    /// Number of jobs waiting to be claimed (excludes running jobs).
    pub fn queued(&self) -> usize {
        self.shared.state.lock().queue.len()
    }

    /// Submits a job, returning a handle to join, poll or cancel it.
    ///
    /// The closure runs on a pool worker with the executor's nesting
    /// guard active; a panic inside it is captured and re-raised in
    /// whoever calls [`JobHandle::join`]. Submitting to a pool that is
    /// shutting down runs the job **inline on the calling thread**
    /// instead of queueing — the handle still resolves, so teardown
    /// can never strand a job.
    pub fn submit<R, F>(&self, f: F) -> JobHandle<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let slot = Arc::new(JobSlot {
            state: Mutex::new(JobState::Queued),
            cv: Condvar::new(),
        });
        let job_slot = Arc::clone(&slot);
        let job: Job = Box::new(move || {
            {
                let mut st = job_slot.state.lock();
                match *st {
                    JobState::Cancelled => return,
                    JobState::Queued => *st = JobState::Running,
                    // Each job is queued exactly once.
                    _ => unreachable!("job claimed twice"),
                }
            }
            let result = catch_unwind(AssertUnwindSafe(f));
            let mut st = job_slot.state.lock();
            *st = JobState::Done(result, Instant::now());
            job_slot.cv.notify_all();
        });
        let inline_job = {
            let mut st = self.shared.state.lock();
            if st.shutdown {
                Some(job)
            } else {
                st.queue.push_back(job);
                None
            }
        };
        match inline_job {
            Some(job) => job(),
            None => self.shared.work_cv.notify_one(),
        }
        JobHandle { slot }
    }

    /// Signals shutdown and joins the workers after they drain every
    /// already-queued job. Idempotent; safe to call from any thread —
    /// a call from a pool worker (possible when the last `Arc<JobPool>`
    /// is dropped inside a job) skips joining its own thread.
    pub fn shutdown_and_join(&self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        let handles: Vec<std::thread::JoinHandle<()>> = std::mem::take(&mut *self.handles.lock());
        let me = std::thread::current().id();
        for worker in handles {
            if worker.thread().id() == me {
                // Joining the current thread would deadlock; the worker
                // exits on its own once its job returns.
                continue;
            }
            // Workers never unwind: every job body is wrapped in
            // catch_unwind.
            worker.join().expect("pool worker cannot panic");
        }
    }
}

impl Drop for JobPool {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

fn worker_loop(shared: &PoolShared) {
    crate::mark_worker_thread();
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break Some(job);
                }
                if st.shutdown {
                    break None;
                }
                shared.work_cv.wait(&mut st);
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

/// Lifecycle of one submitted job.
enum JobState<R> {
    /// In the queue, not yet claimed by a worker.
    Queued,
    /// Claimed and executing.
    Running,
    /// Finished (normally or by panic), with the completion instant.
    Done(std::thread::Result<R>, Instant),
    /// Cancelled before a worker claimed it; it will never run.
    Cancelled,
}

struct JobSlot<R> {
    state: Mutex<JobState<R>>,
    cv: Condvar,
}

/// Observable status of a job (see [`JobHandle::status`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the queue.
    Queued,
    /// Executing on a worker.
    Running,
    /// Completed; [`JobHandle::join`] will not block.
    Finished,
    /// Cancelled before execution; [`JobHandle::join`] returns `None`.
    Cancelled,
}

/// Handle to a job submitted to a [`JobPool`].
///
/// Dropping the handle detaches the job (it still runs); joining waits
/// for it and yields its result.
pub struct JobHandle<R> {
    slot: Arc<JobSlot<R>>,
}

impl<R> std::fmt::Debug for JobHandle<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("status", &self.status())
            .finish()
    }
}

impl<R> JobHandle<R> {
    /// The job's current lifecycle stage (non-blocking).
    pub fn status(&self) -> JobStatus {
        match *self.slot.state.lock() {
            JobState::Queued => JobStatus::Queued,
            JobState::Running => JobStatus::Running,
            JobState::Done(..) => JobStatus::Finished,
            JobState::Cancelled => JobStatus::Cancelled,
        }
    }

    /// True once the job has finished or been cancelled (join won't
    /// block).
    pub fn is_finished(&self) -> bool {
        matches!(self.status(), JobStatus::Finished | JobStatus::Cancelled)
    }

    /// Cancels the job if it is still queued. Returns `true` when the
    /// cancellation won (the job will never run); `false` when the job
    /// already started or finished.
    pub fn cancel(&self) -> bool {
        let mut st = self.slot.state.lock();
        if matches!(*st, JobState::Queued) {
            *st = JobState::Cancelled;
            self.slot.cv.notify_all();
            true
        } else {
            false
        }
    }

    /// Blocks until the job completes and returns its result — `None` if
    /// the job was cancelled before running. A panic inside the job is
    /// re-raised here with its original payload.
    pub fn join(self) -> Option<R> {
        let mut st = self.slot.state.lock();
        self.slot.cv.wait_while(&mut st, |s| {
            matches!(s, JobState::Queued | JobState::Running)
        });
        match std::mem::replace(&mut *st, JobState::Cancelled) {
            JobState::Done(Ok(value), _) => Some(value),
            JobState::Done(Err(payload), _) => {
                drop(st);
                resume_unwind(payload)
            }
            JobState::Cancelled => None,
            JobState::Queued | JobState::Running => unreachable!("wait_while guarantees progress"),
        }
    }

    /// When the job finished, the instant its result was recorded —
    /// `None` while queued/running/cancelled. Lets callers compare
    /// completion order across jobs without re-instrumenting them.
    pub fn finished_at(&self) -> Option<Instant> {
        match *self.slot.state.lock() {
            JobState::Done(_, at) => Some(at),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn submit_join_roundtrip() {
        let pool = JobPool::new(4);
        assert_eq!(pool.workers(), 4);
        let handles: Vec<_> = (0..32).map(|i| pool.submit(move || i * 2)).collect();
        let results: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(results, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zero_threads_uses_budget() {
        let pool = JobPool::new(0);
        assert!(pool.workers() >= 1);
        assert_eq!(pool.submit(|| 7usize).join(), Some(7));
    }

    #[test]
    fn jobs_run_inside_nesting_guard() {
        let pool = JobPool::new(2);
        let handle = pool.submit(|| {
            assert!(
                crate::in_parallel_region(),
                "pool workers must be flagged as executor workers"
            );
            // Batch-executor calls from a job stay on the worker's thread.
            let ids: HashSet<std::thread::ThreadId> =
                crate::par_map_range(32, 8, |_| std::thread::current().id())
                    .into_iter()
                    .collect();
            ids.len()
        });
        assert_eq!(handle.join(), Some(1));
        assert!(!crate::in_parallel_region());
    }

    #[test]
    fn panic_surfaces_on_join_and_pool_survives() {
        let pool = JobPool::new(1);
        let bad = pool.submit(|| panic!("job exploded"));
        let good = pool.submit(|| 11usize);
        let payload = std::panic::catch_unwind(AssertUnwindSafe(|| bad.join()))
            .expect_err("panic must re-raise on join");
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(
            message.contains("job exploded"),
            "payload lost: {message:?}"
        );
        // The worker survived the panic and keeps serving jobs.
        assert_eq!(good.join(), Some(11));
    }

    #[test]
    fn cancel_prevents_execution() {
        let ran = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new(Barrier::new(2));
        let pool = JobPool::new(1);
        // Occupy the only worker so the next job stays queued.
        let blocker = {
            let gate = Arc::clone(&gate);
            pool.submit(move || {
                gate.wait();
            })
        };
        let victim = {
            let ran = Arc::clone(&ran);
            pool.submit(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            })
        };
        assert_eq!(victim.status(), JobStatus::Queued);
        assert!(victim.cancel(), "queued job must be cancellable");
        assert!(!victim.cancel(), "second cancel is a no-op");
        gate.wait();
        assert_eq!(blocker.join(), Some(()));
        assert_eq!(victim.join(), None, "cancelled job yields no result");
        assert_eq!(ran.load(Ordering::SeqCst), 0, "cancelled job never ran");
    }

    #[test]
    fn cancel_loses_once_running() {
        let gate = Arc::new(Barrier::new(2));
        let pool = JobPool::new(1);
        let handle = {
            let gate = Arc::clone(&gate);
            pool.submit(move || {
                gate.wait();
                5usize
            })
        };
        gate.wait(); // the job is now provably running
        assert!(!handle.cancel(), "running job cannot be cancelled");
        assert_eq!(handle.join(), Some(5));
    }

    #[test]
    fn single_worker_preserves_submission_order() {
        let pool = JobPool::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..16)
            .map(|i| {
                let order = Arc::clone(&order);
                pool.submit(move || order.lock().push(i))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), (0..16).collect::<Vec<usize>>());
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let done = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = {
            let pool = JobPool::new(2);
            (0..24)
                .map(|_| {
                    let done = Arc::clone(&done);
                    pool.submit(move || {
                        done.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect()
            // Pool dropped here with jobs likely still queued.
        };
        assert_eq!(
            done.load(Ordering::SeqCst),
            24,
            "drop must drain, not discard"
        );
        for h in handles {
            assert_eq!(h.join(), Some(()));
        }
    }

    #[test]
    fn submit_after_shutdown_runs_inline_and_resolves() {
        let pool = JobPool::new(2);
        pool.shutdown_and_join();
        pool.shutdown_and_join(); // idempotent
        let handle = pool.submit(|| 9usize);
        assert_eq!(handle.status(), JobStatus::Finished, "ran inline");
        assert_eq!(handle.join(), Some(9));
    }

    #[test]
    fn status_and_finished_at_report_lifecycle() {
        let pool = JobPool::new(1);
        let handle = pool.submit(|| 1usize);
        let copy_status = handle.status();
        assert!(matches!(
            copy_status,
            JobStatus::Queued | JobStatus::Running | JobStatus::Finished
        ));
        // finished_at appears exactly when the job completes.
        while !handle.is_finished() {
            std::thread::yield_now();
        }
        let at = handle.finished_at().expect("finished job has a timestamp");
        assert!(at.elapsed().as_secs() < 60);
        assert_eq!(handle.join(), Some(1));
    }

    #[test]
    fn slow_and_fast_jobs_overlap_across_workers() {
        let pool = JobPool::new(2);
        let gate = Arc::new(Barrier::new(2));
        let slow = {
            let gate = Arc::clone(&gate);
            pool.submit(move || {
                gate.wait(); // parks until the fast job has finished
                "slow"
            })
        };
        let fast = pool.submit(|| "fast");
        // The fast job completes while the slow one is parked at the
        // barrier — queue order does not serialize across workers.
        assert_eq!(fast.join(), Some("fast"));
        assert!(slow.finished_at().is_none(), "slow job still parked");
        gate.wait();
        assert_eq!(slow.join(), Some("slow"));
    }
}
