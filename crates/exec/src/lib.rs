//! # blaeu-exec — the shared parallel-execution substrate
//!
//! Every hot parallel sweep in blaeu (pairwise mutual information,
//! distance-matrix construction, CLARA replicates, concurrent sessions,
//! the figure harness) routes through this crate instead of hand-rolling
//! scoped-thread pools. Centralizing execution buys three invariants that
//! per-module thread code cannot provide:
//!
//! 1. **One process-wide thread budget.** [`thread_budget`] is the single
//!    source of truth for worker counts — and the *only* call site of
//!    `std::thread::available_parallelism` in the workspace. It can be
//!    overridden programmatically ([`set_thread_budget`]) or via the
//!    `BLAEU_THREADS` environment variable.
//! 2. **Deterministic results.** [`par_map`] / [`par_map_range`] return
//!    results in input order regardless of how work was chunked, and
//!    [`par_reduce`] folds over *fixed-size* grains whose combine order
//!    depends only on the input length — so floating-point reductions are
//!    bit-identical for `threads = 1` and `threads = N`.
//! 3. **No oversubscription.** Code running inside an executor worker is
//!    flagged ([`in_parallel_region`]); any nested executor call degrades
//!    to sequential execution on the worker's own thread instead of
//!    multiplying thread counts (e.g. CLARA building distance matrices
//!    inside a parallel session sweep).
//!
//! Worker panics are propagated to the caller with their original payload
//! after all sibling workers have finished.

#![warn(missing_docs)]

use std::cell::Cell;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Fold grain for [`par_reduce`]: partial results are computed per
/// `REDUCE_GRAIN`-sized slice of the index range and combined in grain
/// order, which makes the combine tree a function of the input length
/// only — never of the thread count. Public so callers building
/// collection-typed accumulators can pre-size them to the grain.
pub const REDUCE_GRAIN: usize = 1024;

/// Explicit budget override; 0 means "auto-detect".
static BUDGET_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn detected_parallelism() -> usize {
    static DETECTED: OnceLock<usize> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        std::env::var("BLAEU_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            // The one and only `available_parallelism` call in the workspace.
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
    })
}

/// The process-wide worker-thread budget.
///
/// Resolution order: [`set_thread_budget`] override, then the
/// `BLAEU_THREADS` environment variable, then the machine's available
/// parallelism (detected once).
pub fn thread_budget() -> usize {
    match BUDGET_OVERRIDE.load(Ordering::Relaxed) {
        0 => detected_parallelism(),
        n => n,
    }
}

/// Overrides the process-wide thread budget (`0` restores auto-detection).
///
/// Affects every subsequent executor call in the process; useful for
/// benchmarks and for capping blaeu inside a larger application.
pub fn set_thread_budget(threads: usize) {
    BUDGET_OVERRIDE.store(threads, Ordering::Relaxed);
}

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True when the current thread is an executor worker.
///
/// Executor entry points consult this to degrade nested parallelism to
/// sequential execution; user code can consult it to pick serial
/// algorithm variants.
pub fn in_parallel_region() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Resolves an effective worker count for `work_items` units of work.
///
/// `requested == 0` means "use the process budget". Returns 1 (sequential)
/// when there is at most one work item or when called from inside an
/// executor worker (nesting guard).
fn resolve_threads(requested: usize, work_items: usize) -> usize {
    if work_items <= 1 || in_parallel_region() {
        return 1;
    }
    let budget = if requested == 0 {
        thread_budget()
    } else {
        requested
    };
    budget.clamp(1, work_items)
}

/// Runs `f(chunk_index)` for `0..chunks` on up to `threads` workers,
/// returning results in chunk order and re-raising the first worker panic
/// (by chunk order) after all workers have finished.
fn run_chunked<R, F>(chunks: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    debug_assert!(threads > 1 && chunks > 1);
    let next = AtomicUsize::new(0);
    let workers = threads.min(chunks);
    let worker_parts: Vec<Vec<(usize, std::thread::Result<R>)>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let f = &f;
            let next = &next;
            handles.push(scope.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                let mut mine = Vec::new();
                loop {
                    let chunk = next.fetch_add(1, Ordering::Relaxed);
                    if chunk >= chunks {
                        break;
                    }
                    let result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(chunk)));
                    let failed = result.is_err();
                    mine.push((chunk, result));
                    if failed {
                        break;
                    }
                }
                mine
            }));
        }
        handles
            .into_iter()
            // Workers never unwind (they catch), so join is clean.
            .map(|h| h.join().expect("executor worker cannot panic"))
            .collect()
    });
    let mut slots: Vec<Option<std::thread::Result<R>>> = Vec::new();
    slots.resize_with(chunks, || None);
    for (chunk, result) in worker_parts.into_iter().flatten() {
        slots[chunk] = Some(result);
    }
    // Chunks are claimed as a prefix of 0..chunks, and a hole can only
    // follow a recorded panic (every worker that stopped early recorded
    // one), so scanning in chunk order re-raises the earliest panic before
    // any hole is reached.
    let mut out = Vec::with_capacity(chunks);
    for slot in slots {
        match slot {
            Some(Ok(value)) => out.push(value),
            Some(Err(payload)) => resume_unwind(payload),
            None => unreachable!("unfilled chunk slot implies an already re-raised panic"),
        }
    }
    out
}

/// Applies `f` to every element of `items` (with its index), in parallel,
/// returning results in input order.
///
/// `threads == 0` uses the process [`thread_budget`]. Calls from inside an
/// executor worker run sequentially (nesting guard). Panics in `f` are
/// propagated with their original payload.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let t = resolve_threads(threads, n);
    if t <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let chunk_size = n.div_ceil(t);
    let chunks = n.div_ceil(chunk_size);
    let parts = run_chunked(chunks, t, |c| {
        let start = c * chunk_size;
        let end = (start + chunk_size).min(n);
        items[start..end]
            .iter()
            .enumerate()
            .map(|(k, x)| f(start + k, x))
            .collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(n);
    for part in parts {
        out.extend(part);
    }
    out
}

/// Applies `f` to every index in `0..n`, in parallel, returning results in
/// index order. Semantics as [`par_map`].
pub fn par_map_range<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let t = resolve_threads(threads, n);
    if t <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk_size = n.div_ceil(t);
    let chunks = n.div_ceil(chunk_size);
    let parts = run_chunked(chunks, t, |c| {
        let start = c * chunk_size;
        let end = (start + chunk_size).min(n);
        (start..end).map(&f).collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(n);
    for part in parts {
        out.extend(part);
    }
    out
}

/// Parallel fold over the index range `0..n` with **thread-count-independent
/// results**.
///
/// The range is split into fixed-size grains ([`REDUCE_GRAIN`]); each grain
/// is folded sequentially with `fold` starting from `identity()`, and grain
/// results are combined **in grain order** with `combine`. Because the
/// grain layout depends only on `n`, the full combine tree — and therefore
/// every floating-point rounding — is identical for any thread count.
pub fn par_reduce<A, I, F, C>(n: usize, threads: usize, identity: I, fold: F, combine: C) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(A, usize) -> A + Sync,
    C: Fn(A, A) -> A,
{
    let grains = n.div_ceil(REDUCE_GRAIN).max(1);
    // Resolve once: the budget is a process-global that another thread may
    // change concurrently, and run_chunked requires the count it was
    // handed to still be > 1.
    let t = resolve_threads(threads, grains);
    let partials = if t <= 1 {
        (0..grains)
            .map(|g| fold_grain(n, g, &identity, &fold))
            .collect::<Vec<A>>()
    } else {
        run_chunked(grains, t, |g| fold_grain(n, g, &identity, &fold))
    };
    partials
        .into_iter()
        .reduce(combine)
        .unwrap_or_else(identity)
}

fn fold_grain<A, I, F>(n: usize, grain: usize, identity: &I, fold: &F) -> A
where
    I: Fn() -> A,
    F: Fn(A, usize) -> A,
{
    let start = grain * REDUCE_GRAIN;
    let end = (start + REDUCE_GRAIN).min(n);
    (start..end).fold(identity(), fold)
}

/// Splits `data` at the given interior `boundaries` (ascending offsets into
/// `data`) and runs `f(chunk_index, chunk)` on every piece in parallel.
///
/// With `k` boundaries there are `k + 1` chunks. This is the zero-copy
/// building block for writers that fill disjoint regions of one buffer
/// (e.g. the condensed distance matrix). Determinism is the caller's
/// contract: each chunk's content must depend only on its position, which
/// holds for all blaeu call sites. Nested calls run sequentially.
///
/// # Panics
/// Panics if `boundaries` is not ascending or exceeds `data.len()`.
pub fn par_chunks_mut<T, F>(data: &mut [T], boundaries: &[usize], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let mut chunks: Vec<&mut [T]> = Vec::with_capacity(boundaries.len() + 1);
    let mut rest = data;
    let mut consumed = 0usize;
    for &b in boundaries {
        assert!(b >= consumed, "boundaries must be ascending");
        let (head, tail) = rest.split_at_mut(b - consumed);
        chunks.push(head);
        consumed = b;
        rest = tail;
    }
    chunks.push(rest);

    let t = resolve_threads(0, chunks.len());
    if t <= 1 {
        for (i, chunk) in chunks.into_iter().enumerate() {
            f(i, chunk);
        }
        return;
    }
    // Hand each worker ownership of its chunk via an indexed queue.
    let slots: Vec<parking::Slot<'_, T>> = chunks.into_iter().map(parking::Slot::new).collect();
    let results = run_chunked(slots.len(), t, |i| {
        let chunk = slots[i].take();
        f(i, chunk);
    });
    drop(results);
}

/// Tiny cell granting one-time mutable access to a chunk from another
/// thread (used by [`par_chunks_mut`]).
mod parking {
    use std::sync::Mutex;

    /// One-shot handoff cell for a mutable slice.
    pub struct Slot<'a, T>(Mutex<Option<&'a mut [T]>>);

    impl<'a, T> Slot<'a, T> {
        /// Wraps a chunk.
        pub fn new(chunk: &'a mut [T]) -> Self {
            Slot(Mutex::new(Some(chunk)))
        }

        /// Takes the chunk; panics on double-take.
        pub fn take(&self) -> &'a mut [T] {
            self.0
                .lock()
                .expect("slot lock poisoned")
                .take()
                .expect("chunk taken twice")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::panic::catch_unwind;
    use std::thread::ThreadId;

    #[test]
    fn par_map_empty_input() {
        let out: Vec<usize> = par_map::<usize, _, _>(&[], 0, |i, &x| i + x);
        assert!(out.is_empty());
        let out: Vec<usize> = par_map_range(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn par_map_single_item() {
        assert_eq!(par_map(&[7usize], 8, |i, &x| (i, x * 2)), vec![(0, 14)]);
    }

    #[test]
    fn chunk_boundaries_cover_every_index_exactly_once() {
        // Exercise sizes around chunk boundaries for several thread counts.
        for &n in &[
            1usize, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 65, 100, 1023, 1024, 1025,
        ] {
            for &t in &[1usize, 2, 3, 4, 5, 7, 8] {
                let out = par_map_range(n, t, |i| i);
                assert_eq!(out, (0..n).collect::<Vec<_>>(), "n={n} t={t}");
            }
        }
    }

    #[test]
    fn results_ordered_and_identical_across_thread_counts() {
        let items: Vec<f64> = (0..5000).map(|i| (i as f64).sin()).collect();
        let serial = par_map(&items, 1, |i, &x| x * i as f64);
        for threads in [2, 3, 4, 8, 16] {
            let parallel = par_map(&items, threads, |i, &x| x * i as f64);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn par_reduce_bit_identical_across_thread_counts() {
        // Floating-point sums are order-sensitive; the fixed grain makes
        // them bit-identical for every thread count.
        let n = 10_000;
        let value = |i: usize| ((i as f64) * 0.7).sin() / (i as f64 + 1.0);
        let sum =
            |threads| par_reduce(n, threads, || 0.0f64, |acc, i| acc + value(i), |a, b| a + b);
        let reference = sum(1);
        for threads in [2, 3, 4, 7, 8, 16] {
            assert_eq!(
                reference.to_bits(),
                sum(threads).to_bits(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn par_reduce_empty_and_tiny() {
        let zero = par_reduce(0, 4, || 0usize, |a, i| a + i, |a, b| a + b);
        assert_eq!(zero, 0);
        let three = par_reduce(3, 4, || 0usize, |a, i| a + i, |a, b| a + b);
        assert_eq!(three, 3);
    }

    #[test]
    fn worker_panic_propagates_with_payload() {
        let result = catch_unwind(|| {
            par_map_range(64, 4, |i| {
                if i == 33 {
                    panic!("worker exploded at {i}");
                }
                i
            })
        });
        let payload = result.expect_err("panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            message.contains("worker exploded at 33"),
            "payload lost: {message:?}"
        );
    }

    #[test]
    fn nested_calls_degrade_to_sequential() {
        assert!(!in_parallel_region());
        // A two-party barrier forces chunks 0 and 1 onto *distinct* worker
        // threads (a single worker would deadlock at the barrier mid-chunk,
        // so another must pick up the other side) — even on one CPU.
        let rendezvous = std::sync::Barrier::new(2);
        let inner_ids: Vec<Vec<ThreadId>> = par_map_range(4, 4, |i| {
            assert!(in_parallel_region(), "worker must be flagged");
            if i < 2 {
                rendezvous.wait();
            }
            // The nested call must run on this worker's own thread.
            par_map_range(16, 8, |_| std::thread::current().id())
        });
        for ids in &inner_ids {
            let distinct: HashSet<ThreadId> = ids.iter().copied().collect();
            assert_eq!(distinct.len(), 1, "nested call used multiple threads");
        }
        let outer: HashSet<ThreadId> = inner_ids.iter().map(|ids| ids[0]).collect();
        assert!(outer.len() > 1, "outer call should actually fan out");
        assert!(!in_parallel_region(), "flag must not leak to the caller");
    }

    #[test]
    fn par_chunks_mut_fills_disjoint_regions() {
        let mut data = vec![0usize; 100];
        par_chunks_mut(&mut data, &[10, 40, 40, 95], |chunk_idx, chunk| {
            for v in chunk.iter_mut() {
                *v = chunk_idx + 1;
            }
        });
        assert!(data[..10].iter().all(|&v| v == 1));
        assert!(data[10..40].iter().all(|&v| v == 2));
        // Chunk 3 ([40, 40)) is empty.
        assert!(data[40..95].iter().all(|&v| v == 4));
        assert!(data[95..].iter().all(|&v| v == 5));
    }

    #[test]
    fn budget_override_is_respected() {
        set_thread_budget(2);
        assert_eq!(thread_budget(), 2);
        set_thread_budget(0);
        assert!(thread_budget() >= 1);
    }

    #[test]
    fn explicit_thread_count_overrides_budget() {
        // threads=3 on 10 items: at most 3 worker threads observed.
        let ids = par_map_range(10, 3, |_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            std::thread::current().id()
        });
        let distinct: HashSet<ThreadId> = ids.into_iter().collect();
        assert!(distinct.len() <= 3);
    }
}
