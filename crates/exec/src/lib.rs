//! # blaeu-exec — the shared parallel-execution substrate
//!
//! Every hot parallel sweep in blaeu (pairwise mutual information,
//! distance-matrix construction, CLARA replicates, concurrent sessions,
//! the figure harness) routes through this crate instead of hand-rolling
//! scoped-thread pools. Centralizing execution buys three invariants that
//! per-module thread code cannot provide:
//!
//! 1. **One process-wide thread budget.** [`thread_budget`] is the single
//!    source of truth for worker counts — and the *only* call site of
//!    `std::thread::available_parallelism` in the workspace. It can be
//!    overridden programmatically ([`set_thread_budget`]) or via the
//!    `BLAEU_THREADS` environment variable.
//! 2. **Deterministic results.** [`par_map`] / [`par_map_range`] return
//!    results in input order regardless of how work was chunked, and
//!    [`par_reduce`] folds over *fixed-size* grains whose combine order
//!    depends only on the input length — so floating-point reductions are
//!    bit-identical for `threads = 1` and `threads = N`.
//! 3. **No oversubscription.** Code running inside an executor worker is
//!    flagged ([`in_parallel_region`]); any nested executor call degrades
//!    to sequential execution on the worker's own thread instead of
//!    multiplying thread counts (e.g. CLARA building distance matrices
//!    inside a parallel session sweep).
//!
//! ## Work stealing and the adaptive grain
//!
//! Every parallel entry point feeds a **claim queue**: the index range is
//! cut into grains, workers pull the next unclaimed grain off a shared
//! atomic cursor, and results are re-assembled in grain order. A worker
//! that lands on a cheap grain immediately claims another, so skewed
//! workloads (triangular distance-matrix bands, mixed-cost dependency
//! pairs) keep every core busy without any effect on the output: order is
//! restored on collect, which is why the grain size is a pure performance
//! knob for [`par_map`] / [`par_map_range`] / [`par_shards`].
//!
//! By default the grain is **adaptive**: `ceil(n / (threads ·`
//! [`OVERPARTITION`]`))`, clamped to at least 1 — enough grains that the
//! queue can rebalance, few enough that claim overhead stays negligible.
//! [`par_map_grained`] / [`par_map_range_grained`] expose the knob for
//! callers whose items are so coarse (session fan-outs, CLARA replicates)
//! that every item should be its own steal unit, and for benchmarks that
//! want to reproduce the legacy one-chunk-per-thread split.
//!
//! ## Sharding ([`ShardSpec`] / [`par_shards`])
//!
//! Row-sharded hot paths (CLARA whole-dataset assignment, the pairwise
//! dependency sweep) partition their index space into contiguous shards
//! whose layout is a **pure function of the item count** — never of the
//! thread budget. Each shard becomes one steal-queue grain, and per-shard
//! results come back in shard order, so shard-grained reductions (e.g.
//! summing per-shard deviations) are bit-identical across thread counts.
//! This is the single-node half of the ROADMAP's cross-node sharding
//! story: a `ShardSpec` describes the partition independently of who
//! executes it.
//!
//! Worker panics are propagated to the caller with their original payload
//! after all sibling workers have finished.
//!
//! ## Asynchronous jobs ([`JobPool`] / [`JobHandle`])
//!
//! The batch primitives above block the caller until the whole fan-out
//! finishes. The [`pool`] module adds the queue-shaped complement: a
//! persistent worker pool with submit → join/poll/cancel handles, used by
//! the asynchronous session tier so slow jobs overlap with fast ones.
//! Pool workers honor the same thread budget and nesting guard.

#![warn(missing_docs)]

pub mod pool;

pub use pool::{JobHandle, JobPool, JobStatus};

use std::cell::Cell;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Fold grain for [`par_reduce`]: partial results are computed per
/// `REDUCE_GRAIN`-sized slice of the index range and combined in grain
/// order, which makes the combine tree a function of the input length
/// only — never of the thread count. Public so callers building
/// collection-typed accumulators can pre-size them to the grain.
pub const REDUCE_GRAIN: usize = 1024;

/// Target number of steal-queue grains *per worker* for the adaptive
/// grain: `par_map(n, t)` cuts the input into about `t · OVERPARTITION`
/// grains so the claim queue can rebalance skewed workloads, instead of
/// the legacy single `n / t` chunk per worker.
pub const OVERPARTITION: usize = 8;

/// The adaptive steal grain for `n` items on `threads` workers:
/// `ceil(n / (threads · OVERPARTITION))`, at least 1.
///
/// Public so callers that derive their own partition geometry from the
/// executor's balancing policy (e.g. distance-matrix band heights) track
/// this one formula instead of re-implementing it.
pub fn adaptive_grain(n: usize, threads: usize) -> usize {
    n.div_ceil(threads * OVERPARTITION).max(1)
}

/// Resolves a caller-requested grain (`0` = adaptive) to an effective one.
fn effective_grain(n: usize, threads: usize, requested: usize) -> usize {
    if requested == 0 {
        adaptive_grain(n, threads)
    } else {
        requested.clamp(1, n.max(1))
    }
}

/// Explicit budget override; 0 means "auto-detect".
static BUDGET_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

#[allow(clippy::disallowed_methods)] // the one sanctioned available_parallelism site
fn detected_parallelism() -> usize {
    static DETECTED: OnceLock<usize> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        std::env::var("BLAEU_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            // The one and only `available_parallelism` call in the workspace.
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
    })
}

/// The process-wide worker-thread budget.
///
/// Resolution order: [`set_thread_budget`] override, then the
/// `BLAEU_THREADS` environment variable, then the machine's available
/// parallelism (detected once).
pub fn thread_budget() -> usize {
    match BUDGET_OVERRIDE.load(Ordering::Relaxed) {
        0 => detected_parallelism(),
        n => n,
    }
}

/// Overrides the process-wide thread budget (`0` restores auto-detection).
///
/// Affects every subsequent executor call in the process; useful for
/// benchmarks and for capping blaeu inside a larger application.
pub fn set_thread_budget(threads: usize) {
    BUDGET_OVERRIDE.store(threads, Ordering::Relaxed);
}

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True when the current thread is an executor worker.
///
/// Executor entry points consult this to degrade nested parallelism to
/// sequential execution; user code can consult it to pick serial
/// algorithm variants.
pub fn in_parallel_region() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Flags the current thread as an executor worker for its whole lifetime
/// (used by [`JobPool`] workers, which are persistent threads rather than
/// scoped ones).
pub(crate) fn mark_worker_thread() {
    IN_WORKER.with(|w| w.set(true));
}

/// Resolves an effective worker count for `work_items` units of work.
///
/// `requested == 0` means "use the process budget". Returns 1 (sequential)
/// when there is at most one work item or when called from inside an
/// executor worker (nesting guard).
fn resolve_threads(requested: usize, work_items: usize) -> usize {
    if work_items <= 1 || in_parallel_region() {
        return 1;
    }
    let budget = if requested == 0 {
        thread_budget()
    } else {
        requested
    };
    budget.clamp(1, work_items)
}

/// Runs `f(chunk_index)` for `0..chunks` on up to `threads` workers,
/// returning results in chunk order and re-raising the first worker panic
/// (by chunk order) after all workers have finished.
fn run_chunked<R, F>(chunks: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    debug_assert!(threads > 1 && chunks > 1);
    let next = AtomicUsize::new(0);
    let workers = threads.min(chunks);
    let worker_parts: Vec<Vec<(usize, std::thread::Result<R>)>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let f = &f;
            let next = &next;
            handles.push(scope.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                let mut mine = Vec::new();
                loop {
                    let chunk = next.fetch_add(1, Ordering::Relaxed);
                    if chunk >= chunks {
                        break;
                    }
                    let result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(chunk)));
                    let failed = result.is_err();
                    mine.push((chunk, result));
                    if failed {
                        break;
                    }
                }
                mine
            }));
        }
        handles
            .into_iter()
            // Workers never unwind (they catch), so join is clean.
            .map(|h| h.join().expect("executor worker cannot panic"))
            .collect()
    });
    let mut slots: Vec<Option<std::thread::Result<R>>> = Vec::new();
    slots.resize_with(chunks, || None);
    for (chunk, result) in worker_parts.into_iter().flatten() {
        slots[chunk] = Some(result);
    }
    // Chunks are claimed as a prefix of 0..chunks, and a hole can only
    // follow a recorded panic (every worker that stopped early recorded
    // one), so scanning in chunk order re-raises the earliest panic before
    // any hole is reached.
    let mut out = Vec::with_capacity(chunks);
    for slot in slots {
        match slot {
            Some(Ok(value)) => out.push(value),
            Some(Err(payload)) => resume_unwind(payload),
            None => unreachable!("unfilled chunk slot implies an already re-raised panic"),
        }
    }
    out
}

/// Applies `f` to every element of `items` (with its index), in parallel,
/// returning results in input order.
///
/// `threads == 0` uses the process [`thread_budget`]. The input is cut
/// into adaptive steal grains (see [`OVERPARTITION`]) pulled off a shared
/// claim queue; order is restored on collect, so results are identical
/// for any thread count. Calls from inside an executor worker run
/// sequentially (nesting guard). Panics in `f` are propagated with their
/// original payload.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_grained(items, threads, 0, f)
}

/// [`par_map`] with an explicit steal-grain size (`grain == 0` =
/// adaptive).
///
/// `grain` is a pure performance knob: it changes how work is claimed,
/// never the results. Use `grain == 1` when every item is coarse enough
/// to be its own steal unit (session fan-outs, clustering replicates);
/// larger grains amortize claim overhead for cheap items.
pub fn par_map_grained<T, R, F>(items: &[T], threads: usize, grain: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let t = resolve_threads(threads, n);
    if t <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let grain = effective_grain(n, t, grain);
    let chunks = n.div_ceil(grain);
    if chunks <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let parts = run_chunked(chunks, t, |c| {
        let start = c * grain;
        let end = (start + grain).min(n);
        items[start..end]
            .iter()
            .enumerate()
            .map(|(k, x)| f(start + k, x))
            .collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(n);
    for part in parts {
        out.extend(part);
    }
    out
}

/// Applies `f` to every index in `0..n`, in parallel, returning results in
/// index order. Semantics as [`par_map`].
pub fn par_map_range<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_range_grained(n, threads, 0, f)
}

/// [`par_map_range`] with an explicit steal-grain size (`grain == 0` =
/// adaptive). See [`par_map_grained`].
pub fn par_map_range_grained<R, F>(n: usize, threads: usize, grain: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let t = resolve_threads(threads, n);
    if t <= 1 {
        return (0..n).map(f).collect();
    }
    let grain = effective_grain(n, t, grain);
    let chunks = n.div_ceil(grain);
    if chunks <= 1 {
        return (0..n).map(f).collect();
    }
    let parts = run_chunked(chunks, t, |c| {
        let start = c * grain;
        let end = (start + grain).min(n);
        (start..end).map(&f).collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(n);
    for part in parts {
        out.extend(part);
    }
    out
}

/// A thread-count-independent partition of `0..items` into contiguous,
/// equal-size shards (the last may be short).
///
/// The layout is a pure function of `(items, shard_size)` — constructors
/// never consult [`thread_budget`] — so anything accumulated *per shard
/// in shard order* (labels, deviation sums, figure outputs) is
/// bit-identical whatever the parallelism. A `ShardSpec` is also the
/// unit blaeu will hand to remote executor groups once the cross-node
/// tier exists: it describes *what* a shard covers, not *who* runs it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    items: usize,
    shard_size: usize,
}

impl ShardSpec {
    /// A spec with a fixed shard size.
    ///
    /// # Panics
    /// Panics if `shard_size == 0`.
    pub fn with_shard_size(items: usize, shard_size: usize) -> Self {
        assert!(shard_size > 0, "shard size must be positive");
        ShardSpec { items, shard_size }
    }

    /// Total number of items covered.
    pub fn items(&self) -> usize {
        self.items
    }

    /// Number of shards (0 for an empty spec).
    pub fn shard_count(&self) -> usize {
        self.items.div_ceil(self.shard_size)
    }

    /// Half-open item range of shard `s`.
    ///
    /// # Panics
    /// Panics if `s >= shard_count()`.
    pub fn range(&self, s: usize) -> std::ops::Range<usize> {
        assert!(s < self.shard_count(), "shard index out of range");
        let start = s * self.shard_size;
        start..(start + self.shard_size).min(self.items)
    }
}

/// Runs `f(shard_index, item_range)` for every shard of `spec` in
/// parallel, returning per-shard results **in shard order**.
///
/// Each shard is one steal-queue grain, so skewed shards rebalance across
/// workers; because the shard layout ignores the thread budget, combining
/// the returned values in order is deterministic across thread counts.
/// `threads == 0` uses the process budget; nested calls degrade to
/// sequential as usual.
pub fn par_shards<R, F>(spec: &ShardSpec, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, std::ops::Range<usize>) -> R + Sync,
{
    par_map_range_grained(spec.shard_count(), threads, 1, |s| f(s, spec.range(s)))
}

/// Parallel fold over the index range `0..n` with **thread-count-independent
/// results**.
///
/// The range is split into fixed-size grains ([`REDUCE_GRAIN`]); each grain
/// is folded sequentially with `fold` starting from `identity()`, and grain
/// results are combined **in grain order** with `combine`. Because the
/// grain layout depends only on `n`, the full combine tree — and therefore
/// every floating-point rounding — is identical for any thread count.
pub fn par_reduce<A, I, F, C>(n: usize, threads: usize, identity: I, fold: F, combine: C) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(A, usize) -> A + Sync,
    C: Fn(A, A) -> A,
{
    let grains = n.div_ceil(REDUCE_GRAIN).max(1);
    // Resolve once: the budget is a process-global that another thread may
    // change concurrently, and run_chunked requires the count it was
    // handed to still be > 1.
    let t = resolve_threads(threads, grains);
    let partials = if t <= 1 {
        (0..grains)
            .map(|g| fold_grain(n, g, &identity, &fold))
            .collect::<Vec<A>>()
    } else {
        run_chunked(grains, t, |g| fold_grain(n, g, &identity, &fold))
    };
    partials
        .into_iter()
        .reduce(combine)
        .unwrap_or_else(identity)
}

fn fold_grain<A, I, F>(n: usize, grain: usize, identity: &I, fold: &F) -> A
where
    I: Fn() -> A,
    F: Fn(A, usize) -> A,
{
    let start = grain * REDUCE_GRAIN;
    let end = (start + REDUCE_GRAIN).min(n);
    (start..end).fold(identity(), fold)
}

/// Splits `data` at the given interior `boundaries` (ascending offsets into
/// `data`) and runs `f(chunk_index, chunk)` on every piece in parallel.
///
/// With `k` boundaries there are `k + 1` chunks. This is the zero-copy
/// building block for writers that fill disjoint regions of one buffer
/// (e.g. the condensed distance matrix). Determinism is the caller's
/// contract: each chunk's content must depend only on its position, which
/// holds for all blaeu call sites. Nested calls run sequentially.
///
/// # Panics
/// Panics if `boundaries` is not ascending or exceeds `data.len()`.
pub fn par_chunks_mut<T, F>(data: &mut [T], boundaries: &[usize], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let mut chunks: Vec<&mut [T]> = Vec::with_capacity(boundaries.len() + 1);
    let mut rest = data;
    let mut consumed = 0usize;
    for &b in boundaries {
        assert!(b >= consumed, "boundaries must be ascending");
        let (head, tail) = rest.split_at_mut(b - consumed);
        chunks.push(head);
        consumed = b;
        rest = tail;
    }
    chunks.push(rest);

    let t = resolve_threads(0, chunks.len());
    if t <= 1 {
        for (i, chunk) in chunks.into_iter().enumerate() {
            f(i, chunk);
        }
        return;
    }
    // Hand each worker ownership of its chunk via an indexed queue.
    let slots: Vec<parking::Slot<'_, T>> = chunks.into_iter().map(parking::Slot::new).collect();
    let results = run_chunked(slots.len(), t, |i| {
        let chunk = slots[i].take();
        f(i, chunk);
    });
    drop(results);
}

/// Tiny cell granting one-time mutable access to a chunk from another
/// thread (used by [`par_chunks_mut`]).
mod parking {
    use std::sync::Mutex;

    /// One-shot handoff cell for a mutable slice.
    pub struct Slot<'a, T>(Mutex<Option<&'a mut [T]>>);

    impl<'a, T> Slot<'a, T> {
        /// Wraps a chunk.
        pub fn new(chunk: &'a mut [T]) -> Self {
            Slot(Mutex::new(Some(chunk)))
        }

        /// Takes the chunk; panics on double-take.
        pub fn take(&self) -> &'a mut [T] {
            self.0
                .lock()
                .expect("slot lock poisoned")
                .take()
                .expect("chunk taken twice")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::panic::catch_unwind;
    use std::thread::ThreadId;

    #[test]
    fn par_map_empty_input() {
        let out: Vec<usize> = par_map::<usize, _, _>(&[], 0, |i, &x| i + x);
        assert!(out.is_empty());
        let out: Vec<usize> = par_map_range(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn par_map_single_item() {
        assert_eq!(par_map(&[7usize], 8, |i, &x| (i, x * 2)), vec![(0, 14)]);
    }

    #[test]
    fn chunk_boundaries_cover_every_index_exactly_once() {
        // Exercise sizes around chunk boundaries for several thread counts.
        for &n in &[
            1usize, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 65, 100, 1023, 1024, 1025,
        ] {
            for &t in &[1usize, 2, 3, 4, 5, 7, 8] {
                let out = par_map_range(n, t, |i| i);
                assert_eq!(out, (0..n).collect::<Vec<_>>(), "n={n} t={t}");
            }
        }
    }

    #[test]
    fn results_ordered_and_identical_across_thread_counts() {
        let items: Vec<f64> = (0..5000).map(|i| (i as f64).sin()).collect();
        let serial = par_map(&items, 1, |i, &x| x * i as f64);
        for threads in [2, 3, 4, 8, 16] {
            let parallel = par_map(&items, threads, |i, &x| x * i as f64);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn par_reduce_bit_identical_across_thread_counts() {
        // Floating-point sums are order-sensitive; the fixed grain makes
        // them bit-identical for every thread count.
        let n = 10_000;
        let value = |i: usize| ((i as f64) * 0.7).sin() / (i as f64 + 1.0);
        let sum =
            |threads| par_reduce(n, threads, || 0.0f64, |acc, i| acc + value(i), |a, b| a + b);
        let reference = sum(1);
        for threads in [2, 3, 4, 7, 8, 16] {
            assert_eq!(
                reference.to_bits(),
                sum(threads).to_bits(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn par_reduce_empty_and_tiny() {
        let zero = par_reduce(0, 4, || 0usize, |a, i| a + i, |a, b| a + b);
        assert_eq!(zero, 0);
        let three = par_reduce(3, 4, || 0usize, |a, i| a + i, |a, b| a + b);
        assert_eq!(three, 3);
    }

    #[test]
    fn worker_panic_propagates_with_payload() {
        let result = catch_unwind(|| {
            par_map_range(64, 4, |i| {
                if i == 33 {
                    panic!("worker exploded at {i}");
                }
                i
            })
        });
        let payload = result.expect_err("panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            message.contains("worker exploded at 33"),
            "payload lost: {message:?}"
        );
    }

    #[test]
    fn nested_calls_degrade_to_sequential() {
        assert!(!in_parallel_region());
        // A two-party barrier forces chunks 0 and 1 onto *distinct* worker
        // threads (a single worker would deadlock at the barrier mid-chunk,
        // so another must pick up the other side) — even on one CPU.
        let rendezvous = std::sync::Barrier::new(2);
        let inner_ids: Vec<Vec<ThreadId>> = par_map_range(4, 4, |i| {
            assert!(in_parallel_region(), "worker must be flagged");
            if i < 2 {
                rendezvous.wait();
            }
            // The nested call must run on this worker's own thread.
            par_map_range(16, 8, |_| std::thread::current().id())
        });
        for ids in &inner_ids {
            let distinct: HashSet<ThreadId> = ids.iter().copied().collect();
            assert_eq!(distinct.len(), 1, "nested call used multiple threads");
        }
        let outer: HashSet<ThreadId> = inner_ids.iter().map(|ids| ids[0]).collect();
        assert!(outer.len() > 1, "outer call should actually fan out");
        assert!(!in_parallel_region(), "flag must not leak to the caller");
    }

    #[test]
    fn par_chunks_mut_fills_disjoint_regions() {
        let mut data = vec![0usize; 100];
        par_chunks_mut(&mut data, &[10, 40, 40, 95], |chunk_idx, chunk| {
            for v in chunk.iter_mut() {
                *v = chunk_idx + 1;
            }
        });
        assert!(data[..10].iter().all(|&v| v == 1));
        assert!(data[10..40].iter().all(|&v| v == 2));
        // Chunk 3 ([40, 40)) is empty.
        assert!(data[40..95].iter().all(|&v| v == 4));
        assert!(data[95..].iter().all(|&v| v == 5));
    }

    #[test]
    fn budget_override_is_respected() {
        set_thread_budget(2);
        assert_eq!(thread_budget(), 2);
        set_thread_budget(0);
        assert!(thread_budget() >= 1);
    }

    /// Skew coverage for the claim queue: grain `i` costs O(i²) work, so
    /// a static `n / threads` split would leave the first workers idle
    /// while the last one grinds through the expensive tail. With the
    /// adaptive grain every worker keeps pulling grains until the queue
    /// is dry. Two 4-party barrier bands make the per-worker assertion
    /// deterministic rather than probabilistic, even on one core: a
    /// claimed worker blocks at the barrier and cannot claim again, so
    /// the first four grains are necessarily claimed by four *distinct*
    /// workers — and, because the cursor hands out the last four grains
    /// only after the middle ones, the same argument forces the last
    /// four grains onto four distinct workers too. Disjoint bands mean
    /// every worker retires at least two grains, full stop.
    #[test]
    fn skewed_quadratic_grains_are_stolen_by_every_worker() {
        let threads = 4;
        // n ≤ threads · OVERPARTITION makes the adaptive grain exactly 1.
        let n = threads * OVERPARTITION;
        let quadratic = |i: usize| {
            let mut acc = 0u64;
            for k in 0..(i * i * 2_000 + 10_000) {
                acc = acc.wrapping_add((k as u64).wrapping_mul(2_654_435_761));
            }
            acc
        };
        let expected: Vec<u64> = (0..n).map(quadratic).collect();
        // std's Barrier is cyclic: one instance serves both bands.
        let rendezvous = std::sync::Barrier::new(threads);
        let out: Vec<(u64, ThreadId)> = par_map_range(n, threads, |i| {
            if i < threads || i >= n - threads {
                rendezvous.wait();
            }
            (quadratic(i), std::thread::current().id())
        });
        let values: Vec<u64> = out.iter().map(|&(v, _)| v).collect();
        assert_eq!(values, expected, "stolen grains must collect in order");
        let mut retired: std::collections::HashMap<ThreadId, usize> =
            std::collections::HashMap::new();
        for &(_, id) in &out {
            *retired.entry(id).or_default() += 1;
        }
        assert_eq!(retired.len(), threads, "all workers must participate");
        for (id, count) in retired {
            assert!(count > 1, "worker {id:?} retired only {count} grain(s)");
        }
    }

    #[test]
    fn grained_variants_match_adaptive_results() {
        let items: Vec<u64> = (0..1000).map(|i| i * 3 + 1).collect();
        let reference = par_map(&items, 1, |i, &x| x + i as u64);
        for grain in [0usize, 1, 7, 125, 1000, 5000] {
            for threads in [2usize, 4, 8] {
                assert_eq!(
                    par_map_grained(&items, threads, grain, |i, &x| x + i as u64),
                    reference,
                    "grain={grain} threads={threads}"
                );
                assert_eq!(
                    par_map_range_grained(items.len(), threads, grain, |i| items[i] + i as u64),
                    reference,
                    "range grain={grain} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn shard_spec_partitions_exactly() {
        for &items in &[0usize, 1, 5, 4095, 4096, 4097, 10_000] {
            for &size in &[1usize, 3, 1024, 4096] {
                let spec = ShardSpec::with_shard_size(items, size);
                assert_eq!(spec.items(), items);
                let mut covered = Vec::new();
                for s in 0..spec.shard_count() {
                    let r = spec.range(s);
                    assert!(!r.is_empty(), "items={items} size={size} shard {s} empty");
                    assert!(r.len() <= size);
                    covered.extend(r);
                }
                assert_eq!(covered, (0..items).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn shard_spec_rejects_zero_size() {
        let _ = ShardSpec::with_shard_size(10, 0);
    }

    #[test]
    fn par_shards_is_ordered_and_thread_count_independent() {
        // Shard-order sums of a float workload must be bit-identical for
        // every thread count because the layout depends only on `items`.
        let spec = ShardSpec::with_shard_size(10_000, 512);
        let value = |i: usize| ((i as f64) * 0.3).cos() / (i as f64 + 2.0);
        let sum_with = |threads: usize| {
            par_shards(&spec, threads, |s, range| {
                let local: f64 = range.map(value).sum();
                (s, local)
            })
            .into_iter()
            .map(|(_, local)| local)
            .fold(0.0f64, |a, b| a + b)
        };
        let reference = sum_with(1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(reference.to_bits(), sum_with(threads).to_bits());
        }
        let shards = par_shards(&spec, 4, |s, range| (s, range));
        for (s, (idx, range)) in shards.into_iter().enumerate() {
            assert_eq!(s, idx, "shard results must come back in shard order");
            assert_eq!(range, spec.range(s));
        }
    }

    #[test]
    fn par_shards_nested_degrades_to_sequential() {
        let outer = par_map_range(4, 4, |_| {
            let spec = ShardSpec::with_shard_size(64, 4);
            let ids: HashSet<ThreadId> = par_shards(&spec, 8, |_, _| std::thread::current().id())
                .into_iter()
                .collect();
            ids.len()
        });
        assert!(outer.iter().all(|&distinct| distinct == 1));
    }

    #[test]
    fn explicit_thread_count_overrides_budget() {
        // threads=3 on 10 items: at most 3 worker threads observed.
        let ids = par_map_range(10, 3, |_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            std::thread::current().id()
        });
        let distinct: HashSet<ThreadId> = ids.into_iter().collect();
        assert!(distinct.len() <= 3);
    }
}
