//! Minimal HTTP/1.1 framing over blocking streams — exactly the subset
//! the transport needs, hand-rolled on `std` (the container has no
//! registry access, and a map server's wire format does not need one).
//!
//! The reader is *bounded everywhere*: request-line and header bytes are
//! capped, header count is capped, and bodies are rejected up front when
//! `Content-Length` exceeds the configured limit — the server never
//! buffers an unbounded body, and a client that stops sending mid-body
//! hits the socket read timeout instead of wedging a worker forever.

use std::io::{BufRead, Write};
use std::time::{Duration, Instant};

/// Max bytes for the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Max number of request headers.
pub const MAX_HEADERS: usize = 64;

/// How request reading can fail, mapped by the caller onto HTTP statuses
/// (or onto a silent close for torn connections).
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request framing — answer 400 with the reason.
    BadRequest(String),
    /// A body was announced without `Content-Length` — answer 411.
    LengthRequired,
    /// The announced body exceeds the server's limit — answer 413
    /// *before* reading it.
    PayloadTooLarge {
        /// The limit that was exceeded.
        limit: usize,
        /// What the client announced.
        announced: usize,
    },
    /// The peer closed (or timed out, or reset) before/while sending —
    /// nothing to answer, just release the worker.
    Disconnected,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(why) => write!(f, "bad request: {why}"),
            HttpError::LengthRequired => f.write_str("length required"),
            HttpError::PayloadTooLarge { limit, announced } => {
                write!(f, "payload too large: {announced} bytes (limit {limit})")
            }
            HttpError::Disconnected => f.write_str("peer disconnected"),
        }
    }
}

impl std::error::Error for HttpError {}

/// One parsed request. Header names are lowercased at parse time.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Path component, query string stripped.
    pub path: String,
    /// `(lowercase-name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when the client asked to keep the connection open (the
    /// HTTP/1.1 default, unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// A wall-clock budget for finishing one request once its first byte has
/// arrived. The socket read timeout alone cannot stop a *slow-drip* peer
/// (one byte per just-under-the-timeout interval resets it every read);
/// the deadline bounds the whole request, so a dripper costs a worker at
/// most the configured total, not hours.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Option<Instant>,
    budget: Duration,
}

impl Deadline {
    /// A deadline that starts ticking at the first byte of the request
    /// (an *idle* keep-alive connection is bounded by the socket read
    /// timeout instead, so well-behaved pipelining is unaffected).
    pub fn per_request(budget: Duration) -> Self {
        Deadline { at: None, budget }
    }

    /// No deadline (in-memory parsing, benches).
    pub fn none() -> Self {
        Deadline {
            at: None,
            budget: Duration::MAX,
        }
    }

    fn start(&mut self) {
        if self.at.is_none() && self.budget != Duration::MAX {
            self.at = Some(Instant::now() + self.budget);
        }
    }

    fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }
}

/// Reads one CRLF/LF-terminated line, erroring when it exceeds `remaining`
/// bytes (slowloris-style unbounded header lines must not accumulate) or
/// when `deadline` expires mid-line.
/// Returns the line without its terminator; `None` on clean EOF at a line
/// boundary.
fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    remaining: usize,
    deadline: &mut Deadline,
) -> Result<Option<Vec<u8>>, HttpError> {
    let mut line = Vec::new();
    loop {
        let available = match reader.fill_buf() {
            Ok([]) => {
                return if line.is_empty() {
                    Ok(None)
                } else {
                    Err(HttpError::Disconnected)
                }
            }
            Ok(buf) => buf,
            Err(_) => return Err(HttpError::Disconnected), // timeout/reset
        };
        deadline.start();
        if deadline.expired() {
            return Err(HttpError::Disconnected);
        }
        let (chunk, done) = match available.iter().position(|&b| b == b'\n') {
            Some(at) => (&available[..at], true),
            None => (available, false),
        };
        if line.len() + chunk.len() > remaining {
            return Err(HttpError::BadRequest("header section too large".into()));
        }
        line.extend_from_slice(chunk);
        let consumed = chunk.len() + usize::from(done);
        reader.consume(consumed);
        if done {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(Some(line));
        }
    }
}

/// Reads and parses one request off `reader`. `continue_sink` receives an
/// interim `100 Continue` when the client sent `Expect: 100-continue`
/// (what curl does for larger bodies). Bodies are only read when a valid
/// `Content-Length` within `max_body` is announced. `deadline` bounds the
/// whole request from its first byte — the defense the per-read socket
/// timeout cannot provide against slow-drip peers.
///
/// # Errors
/// See [`HttpError`]; `Ok(None)` means the peer closed cleanly between
/// requests (normal keep-alive termination).
pub fn read_request<R: BufRead, W: Write>(
    reader: &mut R,
    continue_sink: &mut W,
    max_body: usize,
    mut deadline: Deadline,
) -> Result<Option<Request>, HttpError> {
    let mut head_budget = MAX_HEAD_BYTES;
    let request_line = match read_line_bounded(reader, head_budget, &mut deadline)? {
        None => return Ok(None),
        Some(line) => line,
    };
    head_budget = head_budget.saturating_sub(request_line.len());
    let request_line = String::from_utf8(request_line)
        .map_err(|_| HttpError::BadRequest("request line is not UTF-8".into()))?;
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(HttpError::BadRequest("malformed request line".into())),
    };
    // HTTP/1.1 only: the batch endpoint answers with chunked framing and
    // the keep-alive default, neither of which HTTP/1.0 defines —
    // accepting 1.0 here would hand such clients responses they cannot
    // parse.
    if version != "HTTP/1.1" {
        return Err(HttpError::BadRequest(format!(
            "unsupported version {version:?} (HTTP/1.1 required)"
        )));
    }
    let path = target.split('?').next().unwrap_or(target).to_owned();
    if !path.starts_with('/') {
        return Err(HttpError::BadRequest(
            "request target must be a path".into(),
        ));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line_bounded(reader, head_budget, &mut deadline)?
            .ok_or(HttpError::Disconnected)?;
        head_budget = head_budget.saturating_sub(line.len());
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::BadRequest("too many headers".into()));
        }
        let line = String::from_utf8(line)
            .map_err(|_| HttpError::BadRequest("header is not UTF-8".into()))?;
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let request = Request {
        method: method.to_ascii_uppercase(),
        path,
        headers,
        body: Vec::new(),
    };
    let body_len = match request.header("content-length") {
        Some(text) => Some(
            text.parse::<usize>()
                .map_err(|_| HttpError::BadRequest("unparseable Content-Length".into()))?,
        ),
        None => None,
    };
    if request.header("transfer-encoding").is_some() {
        // The server never needs chunked *requests*; refusing them keeps
        // body reading trivially bounded.
        return Err(HttpError::BadRequest(
            "chunked request bodies are not supported".into(),
        ));
    }
    let body_len = match body_len {
        Some(n) => n,
        None if request.method == "POST" || request.method == "PUT" => {
            return Err(HttpError::LengthRequired)
        }
        None => return Ok(Some(request)),
    };
    if body_len > max_body {
        // Reject before buffering a single body byte.
        return Err(HttpError::PayloadTooLarge {
            limit: max_body,
            announced: body_len,
        });
    }
    if request
        .header("expect")
        .is_some_and(|v| v.eq_ignore_ascii_case("100-continue"))
    {
        let _ = continue_sink.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
        let _ = continue_sink.flush();
    }
    let mut request = request;
    request.body = vec![0u8; body_len];
    // Chunked read with a deadline check between chunks — `read_exact`
    // would loop internally, letting a slow-drip body evade the budget.
    let mut filled = 0usize;
    while filled < body_len {
        if deadline.expired() {
            return Err(HttpError::Disconnected);
        }
        match std::io::Read::read(reader, &mut request.body[filled..]) {
            Ok(0) | Err(_) => return Err(HttpError::Disconnected),
            Ok(n) => filled += n,
        }
    }
    Ok(Some(request))
}

/// Writes a complete response with `Content-Length` framing.
///
/// # Errors
/// Propagates socket write failures (the caller drops the connection).
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    for (name, value) in extra_headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    writer.write_all(body)?;
    writer.flush()
}

/// Streaming response body using `Transfer-Encoding: chunked` — how the
/// batch endpoint emits one NDJSON line per resolved command without
/// knowing the total length up front. Construction writes the response
/// head; [`ChunkedWriter::finish`] writes the terminating chunk.
pub struct ChunkedWriter<'a, W: Write> {
    writer: &'a mut W,
}

impl<'a, W: Write> ChunkedWriter<'a, W> {
    /// Starts a chunked response (writes status line + headers).
    ///
    /// # Errors
    /// Propagates socket write failures.
    pub fn start(
        writer: &'a mut W,
        status: u16,
        reason: &str,
        content_type: &str,
        keep_alive: bool,
    ) -> std::io::Result<Self> {
        write!(
            writer,
            "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
            if keep_alive { "keep-alive" } else { "close" },
        )?;
        writer.flush()?;
        Ok(ChunkedWriter { writer })
    }

    /// Writes one chunk and flushes — each NDJSON line reaches the client
    /// as soon as its command resolves, which is the whole point of the
    /// streaming variant.
    ///
    /// # Errors
    /// Propagates socket write failures.
    pub fn write_chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(()); // an empty chunk would terminate the stream
        }
        write!(self.writer, "{:x}\r\n", data.len())?;
        self.writer.write_all(data)?;
        self.writer.write_all(b"\r\n")?;
        self.writer.flush()
    }

    /// Terminates the chunked stream.
    ///
    /// # Errors
    /// Propagates socket write failures.
    pub fn finish(self) -> std::io::Result<()> {
        self.writer.write_all(b"0\r\n\r\n")?;
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(text: &str) -> Result<Option<Request>, HttpError> {
        let mut sink = Vec::new();
        read_request(
            &mut Cursor::new(text.as_bytes()),
            &mut sink,
            1024,
            Deadline::none(),
        )
    }

    /// Yields its input one byte per read — the shape of a slow-drip
    /// attack, minus the waiting.
    struct Drip {
        data: Vec<u8>,
        at: usize,
    }

    impl std::io::Read for Drip {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.at >= self.data.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.data[self.at];
            self.at += 1;
            Ok(1)
        }
    }

    impl BufRead for Drip {
        fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
            let end = (self.at + 1).min(self.data.len());
            Ok(&self.data[self.at..end])
        }

        fn consume(&mut self, amt: usize) {
            self.at += amt;
        }
    }

    #[test]
    fn slow_drip_requests_hit_the_deadline() {
        // Every read yields one byte, so the per-read timeout never
        // fires — only the whole-request deadline can stop this. A
        // zero-budget deadline must reject as soon as it starts ticking.
        let mut drip = Drip {
            data: b"POST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc".to_vec(),
            at: 0,
        };
        let mut sink = Vec::new();
        let strict = read_request(
            &mut drip,
            &mut sink,
            1024,
            Deadline::per_request(Duration::from_secs(0)),
        );
        assert!(matches!(strict, Err(HttpError::Disconnected)), "{strict:?}");
        // A generous deadline lets the same drip through untouched.
        let mut drip = Drip {
            data: b"POST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc".to_vec(),
            at: 0,
        };
        let relaxed = read_request(
            &mut drip,
            &mut sink,
            1024,
            Deadline::per_request(Duration::from_secs(60)),
        )
        .unwrap()
        .unwrap();
        assert_eq!(relaxed.body, b"abc");
    }

    #[test]
    fn parses_get_and_post() {
        let get = parse("GET /healthz?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(
            (get.method.as_str(), get.path.as_str()),
            ("GET", "/healthz")
        );
        assert!(get.keep_alive());
        let post = parse(
            "POST /sessions HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 4\r\nConnection: close\r\n\r\nbody",
        )
        .unwrap()
        .unwrap();
        assert_eq!(post.body, b"body");
        assert!(!post.keep_alive());
        assert_eq!(post.header("content-type"), Some("application/json"));
    }

    #[test]
    fn clean_eof_is_none_torn_request_is_disconnected() {
        assert!(parse("").unwrap().is_none());
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nHost"),
            Err(HttpError::Disconnected)
        ));
        // Announced body longer than what arrives: mid-body disconnect.
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::Disconnected)
        ));
    }

    #[test]
    fn bounded_everything() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_HEAD_BYTES));
        assert!(matches!(parse(&long_line), Err(HttpError::BadRequest(_))));
        let many_headers = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            (0..MAX_HEADERS + 1)
                .map(|i| format!("h{i}: v\r\n"))
                .collect::<String>()
        );
        assert!(matches!(
            parse(&many_headers),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 4096\r\n\r\n"),
            Err(HttpError::PayloadTooLarge {
                limit: 1024,
                announced: 4096
            })
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\n\r\n"),
            Err(HttpError::LengthRequired)
        ));
    }

    #[test]
    fn malformed_lines_rejected() {
        for bad in [
            "GARBAGE\r\n\r\n",
            "GET /x HTTP/2\r\n\r\n",
            "GET /x HTTP/1.0\r\n\r\n",
            "GET x HTTP/1.1\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
            "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            assert!(
                matches!(parse(bad), Err(HttpError::BadRequest(_))),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn expect_100_continue_gets_an_interim_response() {
        let mut sink = Vec::new();
        let text = "POST /x HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\nhi";
        let req = read_request(
            &mut Cursor::new(text.as_bytes()),
            &mut sink,
            1024,
            Deadline::none(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.body, b"hi");
        assert!(String::from_utf8(sink).unwrap().starts_with("HTTP/1.1 100"));
    }

    #[test]
    fn response_and_chunked_framing() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            200,
            "OK",
            "application/json",
            b"{}",
            true,
            &[("Retry-After", "1".to_owned())],
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        let mut chunked =
            ChunkedWriter::start(&mut out, 200, "OK", "application/x-ndjson", false).unwrap();
        chunked.write_chunk(b"line one\n").unwrap();
        chunked.write_chunk(b"").unwrap(); // no-op, must not terminate
        chunked.write_chunk(b"two\n").unwrap();
        chunked.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.contains("9\r\nline one\n\r\n"), "{text}");
        assert!(text.ends_with("4\r\ntwo\n\r\n0\r\n\r\n"), "{text}");
    }
}
