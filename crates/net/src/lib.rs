//! # blaeu-net — the network transport tier
//!
//! The paper's Blaeu is a client/server tool: a browser navigates maps
//! while the engine runs cluster analysis server-side. This crate is the
//! thin wire front-end over [`AsyncSessionServer`] — a hand-rolled
//! HTTP/1.1 server on `std::net` (no registry dependencies exist in this
//! workspace) that exposes the already-serializable [`Command`] /
//! [`Response`] protocol:
//!
//! | Method & path                       | Meaning |
//! |-------------------------------------|---------|
//! | `POST /sessions`                    | open a session over a registered table (`{"table": "name", "seed"?: n}`) — journaled when the engine has a journal |
//! | `GET /sessions`                     | list live sessions (id, queue depth, journal sequence, idle ms) |
//! | `POST /sessions/:id/commands`       | run one command (body = `Command` wire JSON, v1 envelope or bare legacy) |
//! | `POST /sessions/:id/commands/batch` | NDJSON pipeline: one command per line in, one response line out per resolved command (streamed chunked); a `map_progressive` line answers its coarse level-0 map first and then streams one `"kind":"delta"` line per refinement rung until `"final":true` |
//! | `GET /sessions/:id/history`         | the session's journal, streamed as NDJSON (one record per line) |
//! | `DELETE /sessions/:id`              | close the session |
//! | `POST /shards/:table/commands`      | worker role: run a `sketch` command over a shard range of a registered table replica (body = `Command` envelope + `"shard": {"start", "end", "items"}`), answering the partial sketch with a digest |
//! | `GET /healthz`                      | liveness + session count |
//! | `GET /stats`                        | aggregates only: cache hit/miss/bytes, journal counters, request counters, shard-role counters, progressive counters (`levels_streamed`, `rungs_cancelled`, `coarse_hits`) with a per-level latency histogram |
//!
//! Every non-2xx response has one body shape:
//! `{"error": {"code", "message", "detail"?}}` — `code` is a stable
//! machine tag ([`BlaeuError::kind`] for engine errors), `message` is
//! human-readable, and `detail` carries code-specific structure (e.g.
//! `pending`/`capacity` for `queue_full`, `limit` for
//! `payload_too_large`).
//!
//! ## Contract with the engine
//!
//! * **Every request runs on a [`JobPool`]** — the accept loop owns one
//!   single-worker pool, connections are drained by a separate pool, and
//!   command execution stays on the engine's own pool. No raw
//!   `std::thread::spawn` anywhere (the exec-layer invariant), and the
//!   connection pool being distinct from the engine pool means a worker
//!   blocked on a slow map can never deadlock the drain jobs computing
//!   it.
//! * **Responses carry digests.** Every success envelope includes
//!   `digest` — the hex [`Response::digest`] of the in-process response —
//!   so a wire client can assert bit-identity with the in-process path
//!   (the loopback integration test does exactly this).
//! * **Errors are status-mapped, never dropped**:
//!   [`BlaeuError::QueueFull`] → `429` with the session's observed
//!   `pending`/`capacity` (and a `Retry-After` hint), malformed JSON →
//!   `400` with the parse error, [`BlaeuError::UnknownSession`] → `404`,
//!   command-execution errors (including panics converted by the server
//!   tier) → `422`. An accepted request always gets an answer because
//!   every accepted [`ResponseHandle`](blaeu_server::ResponseHandle)
//!   resolves — the transport preserves that by joining, not polling.
//! * **Reads are bounded**: header bytes, header count and body length
//!   are capped (oversized bodies get `413` before a single body byte is
//!   buffered), and a socket read timeout frees workers from half-closed
//!   or stalled peers.

#![warn(missing_docs)]

pub mod http;

use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use serde_json::{json, Value};

use blaeu_core::{BlaeuError, Command, ExplorerConfig, Response, SketchPlan};
use blaeu_exec::{JobHandle, JobPool};
use blaeu_server::AsyncSessionServer;
use blaeu_store::{Table, TableView};

use http::{read_request, write_response, ChunkedWriter, HttpError, Request};

/// Configuration of a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Workers serving connections (`0` = the process thread budget).
    /// Distinct from the engine's pool by construction — see the crate
    /// docs for why that separation is load-bearing.
    pub conn_threads: usize,
    /// Largest request body accepted; anything bigger is `413` before a
    /// single body byte is buffered.
    pub max_body_bytes: usize,
    /// Socket read timeout — how long a *silent* peer can hold a
    /// connection worker before it is released.
    pub read_timeout: Duration,
    /// Whole-request budget, ticking from a request's first byte. The
    /// read timeout alone cannot stop a slow-drip peer (one byte per
    /// just-under-the-timeout interval resets it forever); this bounds
    /// the total. Idle keep-alive waits are governed by `read_timeout`,
    /// not this.
    pub request_deadline: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            conn_threads: 0,
            max_body_bytes: 1 << 20,
            read_timeout: Duration::from_secs(10),
            request_deadline: Duration::from_secs(30),
        }
    }
}

/// Power-of-two latency buckets for shard-range executions: bucket `b`
/// counts requests whose wall clock was in `[2^(b-1), 2^b)` µs (bucket 0
/// is `< 1 µs`), the same log2 layout the replay harness uses. Lock-free
/// so the hot shard path never serializes on a stats mutex.
struct LatencyRecorder {
    buckets: [AtomicU64; LatencyRecorder::BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
}

impl LatencyRecorder {
    const BUCKETS: usize = 32;

    fn new() -> LatencyRecorder {
        LatencyRecorder {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_us: AtomicU64::new(0),
        }
    }

    fn record(&self, micros: u64) {
        let bucket = (64 - micros.leading_zeros() as usize).min(Self::BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(micros, Ordering::Relaxed);
    }

    fn to_json(&self) -> Value {
        // Trailing all-zero buckets carry no information; trim them so
        // the stats body stays small on idle workers.
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let used = counts.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
        json!({
            "count": self.count.load(Ordering::Relaxed),
            "total_us": self.total_us.load(Ordering::Relaxed),
            "log2_us_buckets": counts[..used].to_vec(),
        })
    }
}

/// Shard-role counters: what this node did as a fan-out worker.
struct ShardStats {
    /// Partial sketches served (successful shard-range executions).
    partials_served: AtomicU64,
    /// Bytes of partial-sketch response bodies shipped to coordinators.
    merge_bytes_out: AtomicU64,
    /// Shard requests answered from the cached plan.
    plan_hits: AtomicU64,
    /// Shard requests that had to re-plan (first op, or op changed).
    plan_misses: AtomicU64,
    /// Wall clock of shard-range executions.
    latency: LatencyRecorder,
}

impl ShardStats {
    fn new() -> ShardStats {
        ShardStats {
            partials_served: AtomicU64::new(0),
            merge_bytes_out: AtomicU64::new(0),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            latency: LatencyRecorder::new(),
        }
    }

    fn to_json(&self) -> Value {
        json!({
            "partials_served": self.partials_served.load(Ordering::Relaxed),
            "merge_bytes_out": self.merge_bytes_out.load(Ordering::Relaxed),
            "plan_hits": self.plan_hits.load(Ordering::Relaxed),
            "plan_misses": self.plan_misses.load(Ordering::Relaxed),
            "latency": self.latency.to_json(),
        })
    }
}

struct NetShared {
    engine: Arc<AsyncSessionServer>,
    tables: Mutex<HashMap<String, Arc<Table>>>,
    config: NetConfig,
    addr: SocketAddr,
    /// Actual connection-pool worker count (`config.conn_threads`
    /// resolves `0` to the thread budget; stats must report reality).
    conn_workers: usize,
    shutdown: AtomicBool,
    /// Requests parsed and routed (whatever their status).
    requests: AtomicU64,
    /// Responses with a 4xx/5xx status.
    rejected: AtomicU64,
    /// Shard-role counters.
    shard: ShardStats,
    /// Wall clock from a `map_progressive` submit to each streamed
    /// level (level 0 included) — "time to level k" in the same log2-µs
    /// buckets the shard path uses.
    progressive_latency: LatencyRecorder,
    /// One-entry plan cache keyed by `(table, op wire JSON)`: a
    /// coordinator fans the *same* op at a worker many times (one request
    /// per shard range), so the op's phase-1 (discretization, bin
    /// layout, point preprocessing) runs once, not per range.
    plan_cache: Mutex<Option<(String, String, Arc<SketchPlan>)>>,
}

/// The HTTP/NDJSON front-end over one [`AsyncSessionServer`] (see the
/// [crate docs](self)).
pub struct NetServer {
    shared: Arc<NetShared>,
    conn_pool: Arc<JobPool>,
    /// One dedicated worker owning the blocking accept loop — a pool so
    /// the "all request work goes through `JobPool`" invariant holds for
    /// the listener too.
    accept_pool: Arc<JobPool>,
    accept_handle: Mutex<Option<JobHandle<()>>>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.shared.addr)
            .field("conn_workers", &self.conn_pool.workers())
            .field("sessions", &self.shared.engine.len())
            .finish()
    }
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections for `engine`. Tables must be
    /// [registered](NetServer::register_table) before clients can open
    /// sessions over them.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        engine: Arc<AsyncSessionServer>,
        config: NetConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let conn_pool = Arc::new(JobPool::new(config.conn_threads));
        let shared = Arc::new(NetShared {
            engine,
            tables: Mutex::new(HashMap::new()),
            config,
            addr,
            conn_workers: conn_pool.workers(),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shard: ShardStats::new(),
            progressive_latency: LatencyRecorder::new(),
            plan_cache: Mutex::new(None),
        });
        let accept_pool = Arc::new(JobPool::new(1));
        let accept_handle = {
            let shared = Arc::clone(&shared);
            let conn_pool = Arc::clone(&conn_pool);
            accept_pool.submit(move || accept_loop(&listener, &shared, &conn_pool))
        };
        Ok(NetServer {
            shared,
            conn_pool,
            accept_pool,
            accept_handle: Mutex::new(Some(accept_handle)),
        })
    }

    /// The address actually bound (resolves `:0` to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Makes `table` openable via `POST /sessions` under `name`
    /// (replacing any previous table of that name).
    pub fn register_table(&self, name: impl Into<String>, table: Arc<Table>) {
        self.shared.tables.lock().insert(name.into(), table);
    }

    /// Registered table names, ascending.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.shared.tables.lock().keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// The engine this transport fronts.
    pub fn engine(&self) -> &Arc<AsyncSessionServer> {
        &self.shared.engine
    }

    /// Stops accepting connections and unblocks the accept loop. Already
    /// accepted connections finish their current request (keep-alive
    /// loops observe the flag and close). Idempotent.
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop is parked in `accept`; poke it awake so it can
        // observe the flag and exit.
        let _ = TcpStream::connect_timeout(&self.shared.addr, Duration::from_millis(500));
        if let Some(handle) = self.accept_handle.lock().take() {
            handle.join();
        }
    }

    /// Blocks until the accept loop exits (i.e. until
    /// [`NetServer::shutdown`] is called from elsewhere) — what a `main`
    /// serving forever calls.
    pub fn join(&self) {
        let handle = self.accept_handle.lock().take();
        if let Some(handle) = handle {
            handle.join();
        }
    }

    /// Requests handled and requests answered with an error status.
    pub fn request_counts(&self) -> (u64, u64) {
        (
            self.shared.requests.load(Ordering::Relaxed),
            self.shared.rejected.load(Ordering::Relaxed),
        )
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        // Without this, dropping `accept_pool` would join a worker still
        // parked in `accept()` — forever.
        self.shutdown();
        self.accept_pool.shutdown_and_join();
        self.conn_pool.shutdown_and_join();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<NetShared>, conn_pool: &Arc<JobPool>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept errors (EMFILE under fd pressure,
                // aborted handshakes) fail instantly — back off instead
                // of pinning a core, and give workers a chance to free
                // descriptors.
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // the wake-up connection itself lands here
        }
        let shared = Arc::clone(shared);
        // Detached: the connection's lifecycle is its own; the pool
        // drains live jobs on shutdown.
        let _ = conn_pool.submit(move || handle_connection(&shared, stream));
    }
}

/// Serves one connection: a keep-alive loop of bounded request reads.
/// Any framing error answers once and closes; any socket error just
/// closes — a half-closed or stalled peer costs at most the read
/// timeout, never a wedged worker.
fn handle_connection(shared: &Arc<NetShared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    // Writes need a bound too: a peer that stops *reading* (TCP zero
    // window) would otherwise block write_all forever once the kernel
    // send buffer fills — wedging the worker exactly like a stalled
    // reader would.
    let _ = stream.set_write_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(
            &mut reader,
            &mut writer,
            shared.config.max_body_bytes,
            http::Deadline::per_request(shared.config.request_deadline),
        ) {
            Ok(None) | Err(HttpError::Disconnected) => return,
            Ok(Some(request)) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                let keep_alive = request.keep_alive() && !shared.shutdown.load(Ordering::SeqCst);
                if respond(shared, &request, &mut writer, keep_alive).is_err() {
                    return; // peer vanished mid-response
                }
                if !keep_alive {
                    return;
                }
            }
            Err(HttpError::BadRequest(why)) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                shared.rejected.fetch_add(1, Ordering::Relaxed);
                let body = wire_text(&error_body("bad_request", &why, None));
                let _ = write_response(
                    &mut writer,
                    400,
                    "Bad Request",
                    "application/json",
                    body.as_bytes(),
                    false,
                    &[],
                );
                return;
            }
            Err(HttpError::LengthRequired) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                shared.rejected.fetch_add(1, Ordering::Relaxed);
                let body = wire_text(&error_body(
                    "length_required",
                    "POST requires Content-Length",
                    None,
                ));
                let _ = write_response(
                    &mut writer,
                    411,
                    "Length Required",
                    "application/json",
                    body.as_bytes(),
                    false,
                    &[],
                );
                return;
            }
            Err(HttpError::PayloadTooLarge { limit, announced }) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                shared.rejected.fetch_add(1, Ordering::Relaxed);
                let body = wire_text(&error_body(
                    "payload_too_large",
                    format!("body of {announced} bytes exceeds the {limit}-byte limit"),
                    Some(json!({"limit": limit, "announced": announced})),
                ));
                // The unread body makes the connection unusable; close.
                let _ = write_response(
                    &mut writer,
                    413,
                    "Payload Too Large",
                    "application/json",
                    body.as_bytes(),
                    false,
                    &[],
                );
                return;
            }
        }
    }
}

/// The parsed routing targets.
enum Route {
    Health,
    Stats,
    Sessions,
    Session(u64),
    SessionCommands(u64),
    SessionBatch(u64),
    SessionHistory(u64),
    ShardCommands(String),
    Unknown,
}

fn route(path: &str) -> Route {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["healthz"] => Route::Health,
        ["stats"] => Route::Stats,
        ["sessions"] => Route::Sessions,
        ["sessions", id] => id.parse().map_or(Route::Unknown, Route::Session),
        ["sessions", id, "commands"] => id.parse().map_or(Route::Unknown, Route::SessionCommands),
        ["sessions", id, "commands", "batch"] => {
            id.parse().map_or(Route::Unknown, Route::SessionBatch)
        }
        ["sessions", id, "history"] => id.parse().map_or(Route::Unknown, Route::SessionHistory),
        ["shards", table, "commands"] => Route::ShardCommands((*table).to_owned()),
        _ => Route::Unknown,
    }
}

/// Success envelope: the response's client JSON plus its `digest` (hex
/// [`Response::digest`]) so wire clients can assert bit-identity with
/// the in-process path.
fn envelope(response: &Response) -> Value {
    let mut value = response.to_json();
    if let Value::Object(map) = &mut value {
        map.insert(
            "digest".to_owned(),
            json!(format!("{:016x}", response.digest())),
        );
    }
    value
}

/// Serializes an already-built wire [`Value`] to its JSON text. No
/// foreign `Serialize` impls are involved, so `to_string` cannot fail;
/// every response path funnels through this one sanctioned site rather
/// than scattering that infallibility claim across the crate.
fn wire_text(value: &Value) -> String {
    // lint: allow(panic-hygiene) — serializing an already-built Value cannot fail; sole sanctioned expect in blaeu-net
    serde_json::to_string(value).expect("serialization of a built Value is infallible")
}

/// The one error body shape every non-2xx response carries:
/// `{"error": {"code", "message", "detail"?}}`.
fn error_body(code: &str, message: impl AsRef<str>, detail: Option<Value>) -> Value {
    let mut inner = json!({"code": code, "message": message.as_ref()});
    if let (Some(detail), Value::Object(map)) = (detail, &mut inner) {
        map.insert("detail".to_owned(), detail);
    }
    json!({"error": inner})
}

/// Maps an engine error to `(status, reason)`; the body `code` is
/// [`BlaeuError::kind`] — one tag registry across wire and journal.
fn status_of(error: &BlaeuError) -> (u16, &'static str) {
    match error {
        BlaeuError::UnknownSession(_) => (404, "Not Found"),
        BlaeuError::QueueFull { .. } => (429, "Too Many Requests"),
        _ => (422, "Unprocessable Entity"),
    }
}

/// Error body for an engine error; `QueueFull`'s detail carries the
/// occupancy the client needs to back off intelligently.
fn error_json(error: &BlaeuError) -> Value {
    let detail = match error {
        BlaeuError::QueueFull {
            pending, capacity, ..
        } => Some(json!({"pending": *pending, "capacity": *capacity})),
        _ => None,
    };
    error_body(error.kind(), error.to_string(), detail)
}

fn send_json<W: Write>(
    shared: &NetShared,
    writer: &mut W,
    status: u16,
    reason: &str,
    body: &Value,
    keep_alive: bool,
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    if status >= 400 {
        shared.rejected.fetch_add(1, Ordering::Relaxed);
    }
    let text = wire_text(body);
    write_response(
        writer,
        status,
        reason,
        "application/json",
        text.as_bytes(),
        keep_alive,
        extra_headers,
    )
}

fn send_engine_error<W: Write>(
    shared: &NetShared,
    writer: &mut W,
    error: &BlaeuError,
    keep_alive: bool,
) -> std::io::Result<()> {
    let (status, reason) = status_of(error);
    let retry: Vec<(&str, String)> = if status == 429 {
        vec![("Retry-After", "1".to_owned())]
    } else {
        Vec::new()
    };
    send_json(
        shared,
        writer,
        status,
        reason,
        &error_json(error),
        keep_alive,
        &retry,
    )
}

fn respond<W: Write>(
    shared: &Arc<NetShared>,
    request: &Request,
    writer: &mut W,
    keep_alive: bool,
) -> std::io::Result<()> {
    match (request.method.as_str(), route(&request.path)) {
        ("GET", Route::Health) => {
            let body = json!({
                "status": "ok",
                "sessions": shared.engine.len(),
                "workers": shared.engine.pool().workers(),
            });
            send_json(shared, writer, 200, "OK", &body, keep_alive, &[])
        }
        ("GET", Route::Stats) => {
            // Aggregates only — per-session rows live at GET /sessions.
            let cache = shared.engine.cache_stats().map(|stats| {
                json!({
                    "hits": stats.hits,
                    "misses": stats.misses,
                    "hit_rate": stats.hit_rate(),
                    "map_entries": stats.map_entries,
                    "theme_entries": stats.theme_entries,
                    "map_bytes": stats.map_bytes,
                    "theme_bytes": stats.theme_bytes,
                })
            });
            let journal = shared.engine.journal_stats().map(|stats| {
                json!({
                    "sessions": stats.sessions,
                    "records": stats.records,
                    "bytes": stats.bytes,
                    "fsyncs": stats.fsyncs,
                    "group_commits": stats.group_commits,
                    "batched_syncs": stats.batched_syncs,
                    "append_failures": stats.append_failures,
                })
            });
            let progressive = shared.engine.progressive_stats();
            let body = json!({
                "sessions": shared.engine.len(),
                "queue_capacity": shared.engine.queue_capacity(),
                "cache": cache,
                "journal": journal,
                "requests": shared.requests.load(Ordering::Relaxed),
                "rejected": shared.rejected.load(Ordering::Relaxed),
                "conn_workers": shared.conn_workers,
                "engine_workers": shared.engine.pool().workers(),
                "shard": shared.shard.to_json(),
                "progressive": json!({
                    "levels_streamed": progressive.levels_streamed,
                    "rungs_cancelled": progressive.rungs_cancelled,
                    "coarse_hits": progressive.coarse_hits,
                    "latency": shared.progressive_latency.to_json(),
                }),
            });
            send_json(shared, writer, 200, "OK", &body, keep_alive, &[])
        }
        ("GET", Route::Sessions) => {
            let sessions: Vec<Value> = shared
                .engine
                .session_infos()
                .into_iter()
                .map(|info| {
                    json!({
                        "session": info.id,
                        "pending": info.pending,
                        "journal_seq": info.journal_seq,
                        "idle_ms": info.idle.as_millis() as u64,
                    })
                })
                .collect();
            let body = json!({"sessions": sessions});
            send_json(shared, writer, 200, "OK", &body, keep_alive, &[])
        }
        ("GET", Route::SessionHistory(id)) => session_history(shared, id, writer, keep_alive),
        ("POST", Route::Sessions) => open_session(shared, request, writer, keep_alive),
        ("POST", Route::SessionCommands(id)) => {
            run_command(shared, id, request, writer, keep_alive)
        }
        ("POST", Route::SessionBatch(id)) => run_batch(shared, id, request, writer, keep_alive),
        ("POST", Route::ShardCommands(table)) => {
            run_shard_command(shared, &table, request, writer, keep_alive)
        }
        ("DELETE", Route::Session(id)) => match shared.engine.close(id) {
            Ok(()) => send_json(
                shared,
                writer,
                200,
                "OK",
                &json!({"closed": id}),
                keep_alive,
                &[],
            ),
            Err(error) => send_engine_error(shared, writer, &error, keep_alive),
        },
        (_, Route::Unknown) => send_json(
            shared,
            writer,
            404,
            "Not Found",
            &error_body(
                "unknown_route",
                format!("no route {} {}", request.method, request.path),
                None,
            ),
            keep_alive,
            &[],
        ),
        _ => send_json(
            shared,
            writer,
            405,
            "Method Not Allowed",
            &error_body(
                "method_not_allowed",
                format!("{} not allowed on {}", request.method, request.path),
                None,
            ),
            keep_alive,
            &[],
        ),
    }
}

/// `GET /sessions/:id/history`: the session's journal streamed as
/// NDJSON — one record payload per line, exactly the bytes recovery
/// replays (minus the integrity framing). `404 no_journal` when the
/// engine runs without a journal; `404 unknown_session` when no journal
/// file exists for the id.
fn session_history<W: Write>(
    shared: &Arc<NetShared>,
    id: u64,
    writer: &mut W,
    keep_alive: bool,
) -> std::io::Result<()> {
    let Some(journal) = shared.engine.journal() else {
        return send_json(
            shared,
            writer,
            404,
            "Not Found",
            &error_body(
                "no_journal",
                "this server runs without a command journal",
                None,
            ),
            keep_alive,
            &[],
        );
    };
    let path = blaeu_server::journal_path(journal.dir(), id);
    let read = match blaeu_server::read_journal(&path) {
        Ok(read) => read,
        Err(_) => {
            return send_json(
                shared,
                writer,
                404,
                "Not Found",
                &error_body(
                    "unknown_session",
                    format!("no journal for session {id}"),
                    None,
                ),
                keep_alive,
                &[],
            )
        }
    };
    let mut stream = ChunkedWriter::start(writer, 200, "OK", "application/x-ndjson", keep_alive)?;
    for line in &read.lines {
        stream.write_chunk(line.as_bytes())?;
        stream.write_chunk(b"\n")?;
    }
    stream.finish()
}

/// `POST /sessions`: `{"table": "<registered name>", "seed"?: n}` →
/// `201 {"session": id}`. Theme detection runs before the response (and
/// through the shared cache, so the N-th session over a table opens
/// instantly).
fn open_session<W: Write>(
    shared: &Arc<NetShared>,
    request: &Request,
    writer: &mut W,
    keep_alive: bool,
) -> std::io::Result<()> {
    let body = match serde_json::from_slice(&request.body) {
        Ok(value) => value,
        Err(e) => {
            return send_json(
                shared,
                writer,
                400,
                "Bad Request",
                &error_body("bad_request", format!("malformed JSON: {e}"), None),
                keep_alive,
                &[],
            )
        }
    };
    let Some(name) = body.get("table").and_then(Value::as_str) else {
        return send_json(
            shared,
            writer,
            400,
            "Bad Request",
            &error_body(
                "bad_request",
                "body needs a \"table\" field naming a registered table",
                None,
            ),
            keep_alive,
            &[],
        );
    };
    // One lock scope: either the table, or the sorted names for the 404.
    let looked_up = {
        let tables = shared.tables.lock();
        tables.get(name).cloned().ok_or_else(|| {
            let mut names: Vec<String> = tables.keys().cloned().collect();
            names.sort_unstable();
            names
        })
    };
    let table = match looked_up {
        Ok(table) => table,
        Err(known) => {
            return send_json(
                shared,
                writer,
                404,
                "Not Found",
                &error_body(
                    "unknown_table",
                    format!("unknown table {name:?}"),
                    Some(json!({"tables": known})),
                ),
                keep_alive,
                &[],
            )
        }
    };
    let mut config = ExplorerConfig::default();
    match body.get("seed") {
        None => {}
        Some(value) => match value.as_u64() {
            Some(seed) => config.mapper.seed = seed,
            // A mistyped seed must not silently open an unseeded
            // session the client believes is reproducible.
            None => {
                return send_json(
                    shared,
                    writer,
                    400,
                    "Bad Request",
                    &error_body(
                        "bad_request",
                        "\"seed\" must be a non-negative integer",
                        None,
                    ),
                    keep_alive,
                    &[],
                )
            }
        },
    }
    // Named open: with a journal configured, this writes the session's
    // `open` record so it survives restart.
    match shared.engine.open_named_session(name, table, config) {
        Ok(id) => send_json(
            shared,
            writer,
            201,
            "Created",
            &json!({"session": id, "table": name}),
            keep_alive,
            &[],
        ),
        Err(error) => send_engine_error(shared, writer, &error, keep_alive),
    }
}

/// `POST /sessions/:id/commands`: one command in, one enveloped response
/// out. Body parse/shape errors are `400` (the request never reached the
/// engine); engine errors map per [`status_of`].
///
/// A `map_progressive` body answers only its coarse level-0 delta here —
/// this endpoint is one-request-one-response by contract, so no rungs are
/// scheduled behind it. The ladder stays armed in the session, letting a
/// client refine rung-by-rung with explicit `map_refine` commands; the
/// batch channel is the surface that streams refinement automatically.
fn run_command<W: Write>(
    shared: &Arc<NetShared>,
    id: u64,
    request: &Request,
    writer: &mut W,
    keep_alive: bool,
) -> std::io::Result<()> {
    let command = match std::str::from_utf8(&request.body)
        .map_err(|e| BlaeuError::Invalid(format!("body is not UTF-8: {e}")))
        .and_then(Command::from_json_str)
    {
        Ok(command) => command,
        Err(error) => {
            return send_json(
                shared,
                writer,
                400,
                "Bad Request",
                &error_body("bad_request", error.to_string(), None),
                keep_alive,
                &[],
            )
        }
    };
    let handle = match shared.engine.submit(id, command) {
        Ok(handle) => handle,
        Err(error) => return send_engine_error(shared, writer, &error, keep_alive),
    };
    // Joining (not polling) is what preserves the engine's "every
    // accepted handle resolves" guarantee on the wire — even a command
    // that panicked resolves as an error envelope.
    match handle.join() {
        Ok(response) => send_json(
            shared,
            writer,
            200,
            "OK",
            &envelope(&response),
            keep_alive,
            &[],
        ),
        Err(error) => send_engine_error(shared, writer, &error, keep_alive),
    }
}

/// `POST /shards/:table/commands`: the worker role. The body is the v1
/// `Command` envelope (which must be a `sketch` command) plus a
/// `"shard": {"start", "end", "items"}` range naming which contiguous
/// run of shards this worker should execute against its registered
/// table replica. The reply is the partial sketch — shard-order
/// mergeable, bit-exact on the wire (f64s travel as bit patterns) —
/// enveloped with a digest.
///
/// `items` is the item count the coordinator derived from the shared
/// shard layout; a replica whose plan disagrees answers a typed
/// `invalid` error rather than a silently misaligned partial.
fn run_shard_command<W: Write>(
    shared: &Arc<NetShared>,
    name: &str,
    request: &Request,
    writer: &mut W,
    keep_alive: bool,
) -> std::io::Result<()> {
    let started = std::time::Instant::now();
    let body: Value = match serde_json::from_slice(&request.body) {
        Ok(value) => value,
        Err(e) => {
            return send_json(
                shared,
                writer,
                400,
                "Bad Request",
                &error_body("bad_request", format!("malformed JSON: {e}"), None),
                keep_alive,
                &[],
            )
        }
    };
    let spec_of = |field: &str| body.get("shard").and_then(|s| s.get(field)?.as_u64());
    let (Some(start), Some(end), Some(items)) =
        (spec_of("start"), spec_of("end"), spec_of("items"))
    else {
        return send_json(
            shared,
            writer,
            400,
            "Bad Request",
            &error_body(
                "bad_request",
                "body needs \"shard\": {\"start\", \"end\", \"items\"} (non-negative integers)",
                None,
            ),
            keep_alive,
            &[],
        );
    };
    let command = match Command::from_json(&body) {
        Ok(command) => command,
        Err(error) => {
            return send_json(
                shared,
                writer,
                400,
                "Bad Request",
                &error_body("bad_request", error.to_string(), None),
                keep_alive,
                &[],
            )
        }
    };
    let Command::Sketch(op) = command else {
        let error = BlaeuError::Invalid(
            "the shard surface accepts only sketch commands; open a session for everything else"
                .to_owned(),
        );
        return send_engine_error(shared, writer, &error, keep_alive);
    };
    // Same one-lock-scope lookup as `POST /sessions`: the table, or the
    // sorted names for the 404.
    let looked_up = {
        let tables = shared.tables.lock();
        tables.get(name).cloned().ok_or_else(|| {
            let mut names: Vec<String> = tables.keys().cloned().collect();
            names.sort_unstable();
            names
        })
    };
    let table = match looked_up {
        Ok(table) => table,
        Err(known) => {
            return send_json(
                shared,
                writer,
                404,
                "Not Found",
                &error_body(
                    "unknown_table",
                    format!("unknown table {name:?}"),
                    Some(json!({"tables": known})),
                ),
                keep_alive,
                &[],
            )
        }
    };
    // Planning (theme-free: discretizer fits, Gower preprocessing) is
    // the expensive replicated step, so a one-entry cache keyed by
    // (table, op wire JSON) makes a coordinator's N range requests for
    // the same op plan once.
    let key = wire_text(&op.to_json());
    let cached = {
        let cache = shared.plan_cache.lock();
        cache
            .as_ref()
            .and_then(|(t, k, plan)| (t == name && *k == key).then(|| Arc::clone(plan)))
    };
    let plan = match cached {
        Some(plan) => {
            shared.shard.plan_hits.fetch_add(1, Ordering::Relaxed);
            plan
        }
        None => {
            shared.shard.plan_misses.fetch_add(1, Ordering::Relaxed);
            let view = TableView::new(Arc::clone(&table));
            let plan = match op.plan(&view) {
                Ok(plan) => Arc::new(plan),
                Err(error) => return send_engine_error(shared, writer, &error, keep_alive),
            };
            let mut cache = shared.plan_cache.lock();
            *cache = Some((name.to_owned(), key, Arc::clone(&plan)));
            plan
        }
    };
    let spec = plan.spec();
    let (start, end, items) = (start as usize, end as usize, items as usize);
    if spec.items() != items {
        let error = BlaeuError::Invalid(format!(
            "replica disagrees on shard layout: coordinator sent {} items, local plan has {}",
            items,
            spec.items()
        ));
        return send_engine_error(shared, writer, &error, keep_alive);
    }
    if start > end || end > spec.shard_count() {
        let error = BlaeuError::Invalid(format!(
            "shard range {}..{} out of bounds for {} shards",
            start,
            end,
            spec.shard_count()
        ));
        return send_engine_error(shared, writer, &error, keep_alive);
    }
    let partial = plan.run_range(start..end, 0);
    let body = envelope(&Response::SketchPartial(Box::new(partial)));
    let text = wire_text(&body);
    shared.shard.partials_served.fetch_add(1, Ordering::Relaxed);
    shared
        .shard
        .merge_bytes_out
        .fetch_add(text.len() as u64, Ordering::Relaxed);
    let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    shared.shard.latency.record(micros);
    write_response(
        writer,
        200,
        "OK",
        "application/json",
        text.as_bytes(),
        keep_alive,
        &[],
    )
}

/// `POST /sessions/:id/commands/batch`: NDJSON in, NDJSON out, streamed.
/// All lines are parsed up front (a malformed line rejects the whole
/// batch with `400` — nothing half-submitted), then submitted in order;
/// the response streams one line per command *as each handle resolves*.
/// If submission stops early (e.g. `QueueFull`), the accepted prefix
/// still streams its responses, followed by one error line carrying how
/// many commands were never attempted.
///
/// A `map_progressive` line goes through the engine's progressive
/// surface: its coarse level-0 answer streams first (an ordinary
/// enveloped response line with `"kind":"delta"`, `"level":0`), then one
/// extra line per refinement rung as it lands, until `"final":true`.
/// Each level's wall clock (submit → line) is recorded in the log2-µs
/// progressive histogram. A later command in the same batch supersedes
/// the refinement — the engine cancels pending rungs, the delta stream
/// simply ends early (the last line may not be final), and the later
/// command's response follows.
fn run_batch<W: Write>(
    shared: &Arc<NetShared>,
    id: u64,
    request: &Request,
    writer: &mut W,
    keep_alive: bool,
) -> std::io::Result<()> {
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return send_json(
            shared,
            writer,
            400,
            "Bad Request",
            &error_body("bad_request", "body is not UTF-8", None),
            keep_alive,
            &[],
        );
    };
    let mut commands = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Command::from_json_str(line) {
            Ok(command) => commands.push(command),
            Err(error) => {
                return send_json(
                    shared,
                    writer,
                    400,
                    "Bad Request",
                    &error_body(
                        "bad_request",
                        format!("line {}: {error}", lineno + 1),
                        Some(json!({"line": lineno + 1})),
                    ),
                    keep_alive,
                    &[],
                )
            }
        }
    }
    let total = commands.len();
    let mut handles = Vec::new();
    let mut submit_error = None;
    for command in commands {
        let started = std::time::Instant::now();
        let outcome = if matches!(command, Command::MapProgressive) {
            shared
                .engine
                .submit_progressive(id)
                .map(|(handle, stream)| (handle, Some((stream, started))))
        } else {
            shared
                .engine
                .submit(id, command)
                .map(|handle| (handle, None))
        };
        match outcome {
            Ok(entry) => handles.push(entry),
            Err(error) => {
                submit_error = Some(error);
                break;
            }
        }
    }
    if handles.is_empty() {
        if let Some(error) = submit_error {
            // Nothing was accepted: a plain status answer beats an
            // empty stream with a trailing error line.
            return send_engine_error(shared, writer, &error, keep_alive);
        }
    }
    // Commands beyond the one that failed to submit were never tried;
    // the trailing error line reports the count so clients know exactly
    // how much of their batch to replay. (The stream itself is a 200 —
    // the `rejected` counter stays a pure 4xx/5xx tally.)
    let not_attempted = submit_error
        .as_ref()
        .map(|_| total - handles.len() - 1)
        .unwrap_or(0);
    let mut stream = ChunkedWriter::start(writer, 200, "OK", "application/x-ndjson", keep_alive)?;
    for (handle, deltas) in handles {
        let joined = handle.join();
        if let Some((_, started)) = &deltas {
            let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            shared.progressive_latency.record(micros);
        }
        let line = match joined {
            Ok(response) => envelope(&response),
            Err(error) => error_json(&error),
        };
        let mut text = wire_text(&line);
        text.push('\n');
        stream.write_chunk(text.as_bytes())?;
        // Refinement rungs ride the same chunked channel: one extra line
        // per delta, in level order, blocking only this connection
        // worker (the engine pool computing the rungs is distinct, so
        // waiting here cannot starve the work that unblocks the wait).
        let Some((delta_stream, started)) = deltas else {
            continue;
        };
        while let Some(result) = delta_stream.next() {
            let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            shared.progressive_latency.record(micros);
            let line = match result {
                Ok(response) => envelope(&response),
                Err(error) => error_json(&error),
            };
            let mut text = wire_text(&line);
            text.push('\n');
            stream.write_chunk(text.as_bytes())?;
        }
    }
    if let Some(error) = submit_error {
        let mut detail = match &error {
            BlaeuError::QueueFull {
                pending, capacity, ..
            } => json!({"pending": *pending, "capacity": *capacity}),
            _ => json!({}),
        };
        if let Value::Object(map) = &mut detail {
            map.insert("submitted".to_owned(), json!(false));
            map.insert("not_attempted".to_owned(), json!(not_attempted));
        }
        let line = error_body(error.kind(), error.to_string(), Some(detail));
        let mut text = wire_text(&line);
        text.push('\n');
        stream.write_chunk(text.as_bytes())?;
    }
    stream.finish()
}
