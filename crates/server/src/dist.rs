//! # Distributed shard fan-out — the coordinator side
//!
//! A [`ShardCoordinator`] ships contiguous shard ranges of a mergeable
//! sketch ([`SketchOp`]) to N worker processes over the `blaeu-net`
//! wire (`POST /shards/:table/commands`), collects the partial sketches,
//! and merges them **in shard order, streaming** — each arriving partial
//! extends the merged prefix as soon as its predecessors are in, rather
//! than waiting for every worker to finish. The fold order is still
//! strictly range order, replaying the exact combine sequence of the
//! in-process `par_shards` path, so the finalized result is
//! bit-identical to a single-node run (and to the former join-all
//! coordinator) by construction:
//!
//! - The shard layout is a **pure function** of the op and the row count
//!   ([`SketchOp::shard_spec`]); coordinator and workers derive identical
//!   boundaries without exchanging data.
//! - Partials travel with every `f64` as its 16-hex-digit bit pattern,
//!   so the wire round-trip is lossless.
//! - [`SketchPartial::merge`] is shard-order-associative: grouping
//!   shards into worker ranges and merging range partials left-to-right
//!   produces the same value as merging the per-shard partials one by
//!   one.
//!
//! ## Failure handling
//!
//! Worker errors are sorted by their typed wire code: connection
//! failures, 5xx, and `queue_full` are **retryable** — the range is
//! reassigned round-robin to the next worker (a range never silently
//! disappears); `invalid`, `unknown_table` and other 4xx codes are
//! **fatal** — they signal a misconfigured replica (wrong table, wrong
//! layout) that retrying cannot fix, so the typed error propagates to
//! the caller unchanged.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde_json::{json, Value};

use blaeu_core::{BlaeuError, Response, Result, SketchOp, SketchPartial};

/// How many full passes over the worker list a range may make before
/// the coordinator gives up and reports the last error.
const MAX_PASSES: usize = 3;

/// A deliberately simple HTTP/1.1 client for one worker connection:
/// raw `TcpStream`, blocking reads, `Content-Length` framing — the
/// mirror image of the server's own minimal parser.
pub struct WorkerClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl WorkerClient {
    /// Connects to a worker at `addr` (e.g. `"127.0.0.1:7171"`).
    pub fn connect(addr: &str) -> std::io::Result<WorkerClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        stream.set_nodelay(true)?;
        Ok(WorkerClient {
            writer: stream.try_clone()?,
            reader: BufReader::new(stream),
        })
    }

    /// One request/response exchange; returns `(status, body bytes)`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: blaeu\r\n");
        if let Some(body) = body {
            head.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                body.len()
            ));
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes())?;
        if let Some(body) = body {
            self.writer.write_all(body.as_bytes())?;
        }
        self.writer.flush()?;
        self.read_response()
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "worker closed the connection",
            ));
        }
        Ok(line.trim_end().to_owned())
    }

    fn read_response(&mut self) -> std::io::Result<(u16, String)> {
        let bad = |what: String| std::io::Error::new(std::io::ErrorKind::InvalidData, what);
        let status_line = self.read_line()?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(format!("bad status line {status_line:?}")))?;
        let mut content_length = None;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse::<usize>().ok();
                }
            }
        }
        let len =
            content_length.ok_or_else(|| bad("response without Content-Length".to_owned()))?;
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        String::from_utf8(body)
            .map(|text| (status, text))
            .map_err(|e| bad(format!("non-UTF-8 body: {e}")))
    }
}

/// Coordinator-side counters, all monotonic; serialized into the
/// aggregate picture by [`ShardCoordinator::stats_json`].
#[derive(Debug, Default)]
pub struct CoordStats {
    /// Fan-outs completed (one per [`ShardCoordinator::run`]).
    pub fan_outs: AtomicU64,
    /// Partial sketches fetched from workers (includes retried fetches).
    pub partials_merged: AtomicU64,
    /// Range attempts retried on the *same* worker (`queue_full`).
    pub retries: AtomicU64,
    /// Range attempts moved to a *different* worker (connection loss,
    /// 5xx).
    pub reassignments: AtomicU64,
    /// Partial-sketch bytes received from workers.
    pub merge_bytes_in: AtomicU64,
}

/// Outcome classification for one range attempt against one worker.
enum Attempt {
    Ok(SketchPartial, usize),
    /// Try again (possibly on another worker): connection trouble, 5xx,
    /// or backpressure.
    Retry(String),
    /// A typed engine error retrying cannot fix.
    Fatal(BlaeuError),
}

/// Ships shard ranges of a [`SketchOp`] to workers and merges the
/// partials in shard order. See the module docs for the bit-identity
/// argument.
pub struct ShardCoordinator {
    workers: Vec<String>,
    stats: CoordStats,
}

impl ShardCoordinator {
    /// A coordinator over `workers` (socket addresses of `blaeu-net`
    /// servers that registered the target table). Panics if `workers`
    /// is empty — a coordinator with nobody to coordinate is a bug at
    /// the call site, not a runtime condition.
    pub fn new(workers: Vec<String>) -> ShardCoordinator {
        assert!(!workers.is_empty(), "coordinator needs at least one worker");
        ShardCoordinator {
            workers,
            stats: CoordStats::default(),
        }
    }

    /// The worker addresses, in fan-out order.
    pub fn workers(&self) -> &[String] {
        &self.workers
    }

    /// The coordinator-side counters.
    pub fn stats(&self) -> &CoordStats {
        &self.stats
    }

    /// Fans `op` out over the workers and returns the finalized
    /// response — bit-identical to running the op in one process.
    ///
    /// `nrows` is the registered table's row count (the coordinator is
    /// data-free; the caller supplies the one number the shard layout
    /// needs). Ranges that fail on every worker across [`MAX_PASSES`]
    /// passes surface the last error.
    pub fn run(&self, table: &str, op: &SketchOp, nrows: usize) -> Result<Response> {
        let spec = op.shard_spec(nrows);
        let shard_count = spec.shard_count();
        let items = spec.items();
        let ranges = split_ranges(shard_count, self.workers.len());
        let mut slots: Vec<Option<SketchPartial>> = Vec::new();
        slots.resize_with(ranges.len(), || None);
        let mut merged: Option<SketchPartial> = None;
        // Smallest-index fetch failure — kept in range order so the
        // reported error does not depend on worker timing.
        let mut fetch_error: Option<(usize, BlaeuError)> = None;
        let mut merge_error: Option<BlaeuError> = None;
        // One scoped thread per range: fan-out latency is the slowest
        // worker, not the sum. Results stream back over a channel and
        // the contiguous prefix merges *as partials arrive* — by the
        // time the slowest worker answers, everything before it is
        // already folded, so the final merge costs one combine instead
        // of N. Folding strictly in range-index order keeps the combine
        // sequence — and therefore the digest — identical to the
        // join-all path and to a single-node run.
        // lint: allow(exec-parallelism) — blocking socket fan-out must not occupy engine JobPool workers; scoped I/O threads are the documented exception (ROADMAP: distributed sketch fan-out)
        std::thread::scope(|scope| {
            let (tx, rx) = std::sync::mpsc::channel();
            for (index, range) in ranges.iter().enumerate() {
                let tx = tx.clone();
                let range = range.clone();
                scope.spawn(move || {
                    let result = self.fetch_range(table, op, items, index, range);
                    // The receiver outlives every sender inside the
                    // scope, so this send cannot fail.
                    let _ = tx.send((index, result));
                });
            }
            drop(tx);
            let mut next = 0usize;
            for (index, result) in rx {
                match result {
                    Ok(partial) => slots[index] = Some(partial),
                    Err(error) => {
                        if fetch_error.as_ref().is_none_or(|(at, _)| index < *at) {
                            fetch_error = Some((index, error));
                        }
                    }
                }
                while merge_error.is_none() && next < slots.len() {
                    let Some(partial) = slots[next].take() else {
                        break;
                    };
                    match &mut merged {
                        None => merged = Some(partial),
                        Some(acc) => {
                            if let Err(error) = acc.merge(partial) {
                                merge_error = Some(error);
                            }
                        }
                    }
                    next += 1;
                }
            }
        });
        // Error precedence mirrors the join-all path: a failed fetch
        // (smallest range first) outranks a merge failure — the merge
        // would never have been attempted with a range missing.
        if let Some((_, error)) = fetch_error {
            return Err(error);
        }
        if let Some(error) = merge_error {
            return Err(error);
        }
        let merged =
            merged.ok_or_else(|| BlaeuError::Invalid("fan-out produced no partials".to_owned()))?;
        let result = op.finalize(merged)?;
        self.stats.fan_outs.fetch_add(1, Ordering::Relaxed);
        Ok(Response::Sketch(Box::new(result)))
    }

    /// Fetches one shard range, retrying/reassigning per the policy in
    /// the module docs. `home` picks the starting worker so ranges
    /// spread across the fleet.
    fn fetch_range(
        &self,
        table: &str,
        op: &SketchOp,
        items: usize,
        home: usize,
        range: std::ops::Range<usize>,
    ) -> Result<SketchPartial> {
        let body = serde_json::to_string(&json!({
            "v": 1,
            "cmd": "sketch",
            "op": op.to_json(),
            "shard": json!({"start": range.start, "end": range.end, "items": items}),
        }))
        .expect("serialization is infallible"); // lint: allow(panic-hygiene) — serializing an already-built Value cannot fail (no foreign Serialize impls)
        let mut last_error = String::new();
        for attempt in 0..self.workers.len() * MAX_PASSES {
            let worker = &self.workers[(home + attempt) % self.workers.len()];
            match self.attempt(worker, table, &body) {
                Attempt::Ok(partial, bytes) => {
                    self.stats.partials_merged.fetch_add(1, Ordering::Relaxed);
                    self.stats
                        .merge_bytes_in
                        .fetch_add(bytes as u64, Ordering::Relaxed);
                    return Ok(partial);
                }
                Attempt::Fatal(error) => return Err(error),
                Attempt::Retry(why) => {
                    last_error = why;
                    if self.workers.len() > 1 {
                        self.stats.reassignments.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        Err(BlaeuError::Invalid(format!(
            "shard range {}..{} failed on every worker after {} attempts; last error: {last_error}",
            range.start,
            range.end,
            self.workers.len() * MAX_PASSES,
        )))
    }

    /// One attempt against one worker, classified for the retry loop.
    fn attempt(&self, worker: &str, table: &str, body: &str) -> Attempt {
        let mut client = match WorkerClient::connect(worker) {
            Ok(client) => client,
            Err(e) => return Attempt::Retry(format!("{worker}: connect failed: {e}")),
        };
        let (status, text) =
            match client.request("POST", &format!("/shards/{table}/commands"), Some(body)) {
                Ok(response) => response,
                Err(e) => return Attempt::Retry(format!("{worker}: request failed: {e}")),
            };
        let value: Value = match serde_json::from_str(&text) {
            Ok(value) => value,
            Err(e) => return Attempt::Retry(format!("{worker}: unparseable body: {e}")),
        };
        if status == 200 {
            let partial = value
                .get("sketch_partial")
                .ok_or_else(|| {
                    BlaeuError::Invalid(format!("{worker}: 200 without a sketch_partial"))
                })
                .and_then(SketchPartial::from_json);
            return match partial {
                Ok(partial) => Attempt::Ok(partial, text.len()),
                // A 200 whose partial does not parse is a hostile or
                // corrupt worker — not retryable on that worker, but
                // another replica may answer correctly.
                Err(error) => Attempt::Retry(format!("{worker}: {error}")),
            };
        }
        let code = value["error"]["code"].as_str().unwrap_or("unknown");
        let message = value["error"]["message"].as_str().unwrap_or(&text);
        if status >= 500 || code == "queue_full" {
            return Attempt::Retry(format!("{worker}: {status} {code}: {message}"));
        }
        // Typed 4xx: the replica rejected the request for a reason a
        // retry cannot change (wrong table, layout disagreement, bad
        // op). Keep the worker's own code where the registry has it.
        Attempt::Fatal(match code {
            "unknown_session" => BlaeuError::UnknownSession(0),
            _ => BlaeuError::Invalid(format!("worker {worker}: {code}: {message}")),
        })
    }

    /// `GET /stats` from every worker, aggregated with the
    /// coordinator's own counters: per-worker shard-role rows plus
    /// fleet totals (partials served, merge bytes out).
    pub fn stats_json(&self) -> Value {
        let mut rows = Vec::new();
        let mut partials_served = 0u64;
        let mut merge_bytes_out = 0u64;
        for worker in &self.workers {
            let shard = WorkerClient::connect(worker)
                .and_then(|mut client| client.request("GET", "/stats", None))
                .ok()
                .and_then(|(status, text)| {
                    (status == 200).then(|| serde_json::from_str(&text).ok())?
                })
                .map(|stats| stats["shard"].clone());
            match shard {
                Some(shard) => {
                    partials_served += shard["partials_served"].as_u64().unwrap_or(0);
                    merge_bytes_out += shard["merge_bytes_out"].as_u64().unwrap_or(0);
                    rows.push(json!({"worker": worker.clone(), "shard": shard}));
                }
                None => rows.push(json!({"worker": worker.clone(), "shard": Value::Null})),
            }
        }
        let load = |counter: &AtomicU64| counter.load(Ordering::Relaxed);
        json!({
            "coordinator": json!({
                "fan_outs": load(&self.stats.fan_outs),
                "partials_merged": load(&self.stats.partials_merged),
                "retries": load(&self.stats.retries),
                "reassignments": load(&self.stats.reassignments),
                "merge_bytes_in": load(&self.stats.merge_bytes_in),
            }),
            "fleet": json!({
                "workers": self.workers.len(),
                "partials_served": partials_served,
                "merge_bytes_out": merge_bytes_out,
            }),
            "workers": rows,
        })
    }
}

/// Splits `shard_count` shards into at most `parts` contiguous,
/// balanced ranges covering `0..shard_count` in order. Zero shards
/// yield one empty range so the fan-out still produces a (typed,
/// empty) partial; fewer shards than parts yield one range per shard.
pub fn split_ranges(shard_count: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    assert!(parts > 0, "need at least one part");
    if shard_count == 0 {
        return std::iter::once(0..0).collect();
    }
    let parts = parts.min(shard_count);
    let base = shard_count / parts;
    let extra = shard_count % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, shard_count);
    ranges
}

#[cfg(test)]
mod tests {
    use super::split_ranges;

    #[test]
    fn ranges_are_contiguous_balanced_and_cover() {
        for shard_count in [0usize, 1, 2, 3, 7, 8, 100, 101] {
            for parts in [1usize, 2, 3, 4, 8] {
                let ranges = split_ranges(shard_count, parts);
                assert_eq!(ranges.first().map(|r| r.start), Some(0));
                assert_eq!(ranges.last().map(|r| r.end), Some(shard_count));
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].end, pair[1].start, "contiguous");
                }
                let lens: Vec<usize> = ranges.iter().map(ExactSizeIterator::len).collect();
                let (lo, hi) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(hi - lo <= 1, "balanced: {lens:?}");
                if shard_count > 0 {
                    assert!(ranges.len() <= parts.min(shard_count));
                    assert!(lens.iter().all(|&l| l > 0), "no empty ranges: {lens:?}");
                }
            }
        }
    }
}
