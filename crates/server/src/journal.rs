//! The write-ahead command journal.
//!
//! A session is an ordered trail of commands, and the wire JSON of
//! [`Command`] is already its serialization — so durability is "NDJSON
//! on disk": every accepted command appends one framed record to its
//! session's journal file *before* the client sees the response.
//! Replaying a journal over the same table rebuilds the session's state
//! (and warms the analysis cache) bit-identically, which recovery
//! verifies against the recorded response digests.
//!
//! ## Record framing
//!
//! One record per line, each line self-checking (the same FNV-1a word
//! fold the column snapshot format uses, via
//! [`blaeu_store::checksum64`]):
//!
//! ```text
//! J1 <len:08x> <checksum:016x> <payload JSON>\n
//! ```
//!
//! `len` is the payload byte length, `checksum` is `checksum64(payload)`.
//! A torn tail (power loss mid-append) fails the length or checksum test
//! and is cleanly truncated at recovery; everything before it replays.
//!
//! ## Record payloads
//!
//! All payloads carry the same `"v": 1` envelope as the wire protocol —
//! the on-disk and on-wire contracts are one schema:
//!
//! | kind      | fields |
//! |-----------|--------|
//! | `open`    | `session`, `table` (registered name), `seed`, `seq: 0` |
//! | `command` | `session`, `seq` (monotonic from 1), `cmd` (wire JSON), and the outcome: `digest` (hex [`Response::digest`]) or `error` (the [`blaeu_core::BlaeuError::kind`] tag) |
//! | `close`   | `session`, `seq` |

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use serde_json::{json, Value};

use blaeu_core::{Command, Response, Result, SessionId};
use blaeu_store::checksum64;

/// When journal appends reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync — the OS page cache decides (fastest; a machine crash
    /// may lose the tail, a process crash loses nothing).
    Never,
    /// fsync after every record (slowest, zero-loss on machine crash).
    Always,
    /// Group commit: once `n` records have accumulated **across all
    /// sessions** since the last sweep, one sweep `sync_data`s every
    /// dirty file. Under concurrent sessions this batches what would be
    /// one fsync per session per `n` records into one sweep per `n`
    /// records fleet-wide.
    EveryN(u64),
}

/// Wire-schema version the journal shares with the command protocol.
const RECORD_VERSION: u64 = Command::WIRE_VERSION;

/// Per-line framing prefix: tag, 8 hex digits of payload length, 16 hex
/// digits of payload checksum, each space-separated.
const FRAME_TAG: &str = "J1";
const FRAME_HEADER_LEN: usize = 2 + 1 + 8 + 1 + 16 + 1;

/// What one journal record says happened.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// Session opened over a registered table.
    Open {
        /// The session id the journal file belongs to.
        session: SessionId,
        /// Registered table name to re-open over at recovery.
        table: String,
        /// The mapper seed the session was opened with (the only config
        /// knob the wire contract exposes).
        seed: u64,
    },
    /// One executed command and its verified outcome.
    Command {
        /// Monotonic per-session sequence (1-based; `open` is 0).
        seq: u64,
        /// The command, round-tripped through its wire JSON.
        command: Command,
        /// Digest of the response (`Ok`) or the error's kind tag (`Err`)
        /// — what replay checks itself against.
        outcome: RecordedOutcome,
    },
    /// Session closed cleanly — recovery skips the whole file.
    Close {
        /// Sequence of the close record.
        seq: u64,
    },
}

/// The recorded outcome of one executed command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordedOutcome {
    /// The command succeeded; [`Response::digest`] of its response.
    Digest(u64),
    /// The command failed; [`blaeu_core::BlaeuError::kind`] of its error. Errors
    /// leave explorer state unchanged, so replaying one only needs the
    /// kind to match.
    Error(String),
}

impl RecordedOutcome {
    /// Captures the outcome of a just-executed command.
    pub fn of(result: &Result<Response>) -> RecordedOutcome {
        match result {
            Ok(response) => RecordedOutcome::Digest(response.digest()),
            Err(error) => RecordedOutcome::Error(error.kind().to_owned()),
        }
    }

    /// True when a replayed result matches this recorded outcome.
    pub fn matches(&self, result: &Result<Response>) -> bool {
        match (self, result) {
            (RecordedOutcome::Digest(digest), Ok(response)) => *digest == response.digest(),
            (RecordedOutcome::Error(kind), Err(error)) => kind == error.kind(),
            _ => false,
        }
    }
}

/// Why a journal file's tail (or head) was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalDefect {
    /// Index of the first bad record (0 = the file head is corrupt —
    /// nothing is recoverable).
    pub record: usize,
    /// What failed: framing, checksum, or payload shape.
    pub detail: String,
}

/// A journal file parsed up to its first defect.
#[derive(Debug)]
pub struct ReadJournal {
    /// Raw payload JSON of each valid record, in order — what the
    /// history endpoint streams verbatim.
    pub lines: Vec<String>,
    /// Parsed form of the same records.
    pub records: Vec<JournalRecord>,
    /// File offset one past each valid record — `record_ends[i]` is the
    /// length to truncate to in order to keep records `0..=i`.
    pub record_ends: Vec<u64>,
    /// Bytes of the valid prefix — truncate the file to this length to
    /// drop a corrupt tail.
    pub valid_bytes: u64,
    /// The first defect, if any (records past it are not represented).
    pub defect: Option<JournalDefect>,
}

/// Path of session `id`'s journal file under `dir`.
pub fn journal_path(dir: &Path, id: SessionId) -> PathBuf {
    dir.join(format!("session-{id}.jnl"))
}

/// Session id encoded in a journal file name (`session-<id>.jnl`).
pub fn journal_file_id(name: &str) -> Option<SessionId> {
    name.strip_prefix("session-")?
        .strip_suffix(".jnl")?
        .parse()
        .ok()
}

/// Frames `payload` as one journal line.
fn frame(payload: &str) -> String {
    let mut line = String::with_capacity(FRAME_HEADER_LEN + payload.len() + 1);
    use std::fmt::Write as _;
    writeln!(
        line,
        "{FRAME_TAG} {:08x} {:016x} {payload}",
        payload.len(),
        checksum64(payload.as_bytes())
    )
    .expect("string writer never fails"); // lint: allow(panic-hygiene) — write! into a String cannot fail (fmt::Write for String is infallible)
    line
}

/// Parses one framed record starting at `bytes[at..]`; returns the
/// payload slice and the offset one past the record's newline.
fn unframe(bytes: &[u8], at: usize) -> std::result::Result<(&str, usize), String> {
    let rest = &bytes[at..];
    if rest.len() < FRAME_HEADER_LEN {
        return Err(format!("{} header bytes of {FRAME_HEADER_LEN}", rest.len()));
    }
    let header = std::str::from_utf8(&rest[..FRAME_HEADER_LEN])
        .map_err(|_| "frame header is not UTF-8".to_owned())?;
    if &header[..2] != FRAME_TAG || &header[2..3] != " " || &header[11..12] != " " {
        return Err(format!(
            "bad frame tag {:?}",
            &header[..3.min(header.len())]
        ));
    }
    let len = usize::from_str_radix(&header[3..11], 16)
        .map_err(|_| format!("bad length field {:?}", &header[3..11]))?;
    let sum = u64::from_str_radix(&header[12..28], 16)
        .map_err(|_| format!("bad checksum field {:?}", &header[12..28]))?;
    let body_at = FRAME_HEADER_LEN;
    if rest.len() < body_at + len + 1 {
        return Err(format!(
            "record claims {len} payload bytes, {} remain",
            rest.len().saturating_sub(body_at)
        ));
    }
    let payload = &rest[body_at..body_at + len];
    if rest[body_at + len] != b'\n' {
        return Err("record is not newline-terminated".to_owned());
    }
    if checksum64(payload) != sum {
        return Err(format!("checksum mismatch (expected {sum:016x})"));
    }
    let payload =
        std::str::from_utf8(payload).map_err(|_| "record payload is not UTF-8".to_owned())?;
    Ok((payload, at + body_at + len + 1))
}

impl JournalRecord {
    /// Serializes to the record's payload JSON (shared wire envelope).
    pub fn to_json(&self, session: SessionId) -> Value {
        match self {
            JournalRecord::Open { table, seed, .. } => json!({
                "v": RECORD_VERSION, "kind": "open", "session": session,
                "table": table.clone(), "seed": *seed, "seq": 0u64,
            }),
            JournalRecord::Command {
                seq,
                command,
                outcome,
            } => {
                let mut value = json!({
                    "v": RECORD_VERSION, "kind": "command", "session": session,
                    "seq": *seq, "cmd": command.to_json(),
                });
                if let Value::Object(map) = &mut value {
                    match outcome {
                        RecordedOutcome::Digest(digest) => {
                            map.insert("digest".to_owned(), json!(format!("{digest:016x}")));
                        }
                        RecordedOutcome::Error(kind) => {
                            map.insert("error".to_owned(), json!(kind.clone()));
                        }
                    }
                }
                value
            }
            JournalRecord::Close { seq } => json!({
                "v": RECORD_VERSION, "kind": "close", "session": session, "seq": *seq,
            }),
        }
    }

    /// Parses a record payload, validating the envelope and shape.
    pub fn from_json(value: &Value) -> std::result::Result<JournalRecord, String> {
        if value.get("v").and_then(Value::as_u64) != Some(RECORD_VERSION) {
            return Err(format!("record is not schema v{RECORD_VERSION}"));
        }
        let session = value
            .get("session")
            .and_then(Value::as_u64)
            .ok_or("record lacks a session id")?;
        let seq = value
            .get("seq")
            .and_then(Value::as_u64)
            .ok_or("record lacks a sequence number")?;
        match value.get("kind").and_then(Value::as_str) {
            Some("open") => {
                let table = value
                    .get("table")
                    .and_then(Value::as_str)
                    .ok_or("open record lacks a table name")?;
                let seed = value
                    .get("seed")
                    .and_then(Value::as_u64)
                    .ok_or("open record lacks a seed")?;
                Ok(JournalRecord::Open {
                    session,
                    table: table.to_owned(),
                    seed,
                })
            }
            Some("command") => {
                let command = value.get("cmd").ok_or("command record lacks \"cmd\"")?;
                let command = Command::from_json(command).map_err(|e| e.to_string())?;
                let outcome = match (value.get("digest"), value.get("error")) {
                    (Some(digest), None) => {
                        let digest = digest.as_str().ok_or("digest must be a hex string")?;
                        RecordedOutcome::Digest(
                            u64::from_str_radix(digest, 16)
                                .map_err(|_| format!("bad digest {digest:?}"))?,
                        )
                    }
                    (None, Some(kind)) => RecordedOutcome::Error(
                        kind.as_str()
                            .ok_or("error must be a kind string")?
                            .to_owned(),
                    ),
                    _ => return Err("command record needs exactly one of digest/error".into()),
                };
                Ok(JournalRecord::Command {
                    seq,
                    command,
                    outcome,
                })
            }
            Some("close") => Ok(JournalRecord::Close { seq }),
            other => Err(format!("unknown record kind {other:?}")),
        }
    }
}

/// Reads and validates a journal file up to its first defect — the
/// valid prefix parses, the rest is reported, never guessed at.
///
/// # Errors
/// Only on I/O failure; corruption is data, not an error.
pub fn read_journal(path: &Path) -> std::io::Result<ReadJournal> {
    let bytes = std::fs::read(path)?;
    let mut lines = Vec::new();
    let mut records = Vec::new();
    let mut record_ends = Vec::new();
    let mut at = 0usize;
    let mut defect = None;
    while at < bytes.len() {
        match unframe(&bytes, at) {
            Ok((payload, next)) => {
                let parsed = serde_json::from_str(payload)
                    .map_err(|e| e.to_string())
                    .and_then(|value| JournalRecord::from_json(&value));
                match parsed {
                    Ok(record) => {
                        lines.push(payload.to_owned());
                        records.push(record);
                        record_ends.push(next as u64);
                        at = next;
                    }
                    Err(detail) => {
                        defect = Some(JournalDefect {
                            record: records.len(),
                            detail,
                        });
                        break;
                    }
                }
            }
            Err(detail) => {
                defect = Some(JournalDefect {
                    record: records.len(),
                    detail,
                });
                break;
            }
        }
    }
    Ok(ReadJournal {
        lines,
        records,
        record_ends,
        valid_bytes: at as u64,
        defect,
    })
}

struct JournalFile {
    file: File,
    /// Last sequence number appended (0 = only the open record).
    seq: u64,
    /// Records appended since this file was last fsynced — what a
    /// group-commit sweep looks at to skip clean files.
    unsynced: u64,
}

/// Everything behind the journal's one lock: the open files plus the
/// fleet-wide dirty-record counter that triggers group-commit sweeps.
struct JournalFiles {
    files: HashMap<SessionId, JournalFile>,
    /// Records appended across all sessions since the last sweep
    /// (meaningful under [`FsyncPolicy::EveryN`]).
    unsynced_total: u64,
}

/// Journal effectiveness/observability counters (`GET /stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalStats {
    /// Sessions with an open journal file.
    pub sessions: usize,
    /// Records appended since the journal opened (all sessions).
    pub records: u64,
    /// Bytes appended since the journal opened.
    pub bytes: u64,
    /// fsync calls issued.
    pub fsyncs: u64,
    /// Group-commit sweeps completed (`EveryN` only): each sweep syncs
    /// every dirty file once.
    pub group_commits: u64,
    /// Dirty files synced by group-commit sweeps — `fsyncs` issued
    /// *because* a sweep fired rather than per-record. When this grows
    /// slower than `records / n`, batching across sessions is saving
    /// syncs.
    pub batched_syncs: u64,
    /// Appends that failed at the filesystem (the command still
    /// answered; durability for that record is lost and this counter is
    /// the operator's signal).
    pub append_failures: u64,
}

/// The write-ahead command journal of one [`AsyncSessionServer`]
/// (see the [module docs](self)).
///
/// [`AsyncSessionServer`]: crate::AsyncSessionServer
pub struct SessionJournal {
    dir: PathBuf,
    fsync: FsyncPolicy,
    files: Mutex<JournalFiles>,
    records: AtomicU64,
    bytes: AtomicU64,
    fsyncs: AtomicU64,
    group_commits: AtomicU64,
    batched_syncs: AtomicU64,
    append_failures: AtomicU64,
}

impl std::fmt::Debug for SessionJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionJournal")
            .field("dir", &self.dir)
            .field("fsync", &self.fsync)
            .field("sessions", &self.files.lock().files.len())
            .finish()
    }
}

impl SessionJournal {
    /// Opens (creating if needed) the journal directory.
    ///
    /// # Errors
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>, fsync: FsyncPolicy) -> std::io::Result<SessionJournal> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(SessionJournal {
            dir,
            fsync,
            files: Mutex::new(JournalFiles {
                files: HashMap::new(),
                unsynced_total: 0,
            }),
            records: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            group_commits: AtomicU64::new(0),
            batched_syncs: AtomicU64::new(0),
            append_failures: AtomicU64::new(0),
        })
    }

    /// The directory journal files live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Starts session `id`'s journal: creates (truncating any stale
    /// leftover) `session-<id>.jnl` and appends the `open` record.
    ///
    /// # Errors
    /// Propagates file-creation and write failures — a session whose
    /// open record cannot be made durable must not open.
    pub fn open_session(&self, id: SessionId, table: &str, seed: u64) -> std::io::Result<()> {
        let path = journal_path(&self.dir, id);
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        let mut inner = self.files.lock();
        inner.files.insert(
            id,
            JournalFile {
                file,
                seq: 0,
                unsynced: 0,
            },
        );
        let record = JournalRecord::Open {
            session: id,
            table: table.to_owned(),
            seed,
        };
        if let Err(e) = self.write_record(&mut inner, id, &record.to_json(id)) {
            // A session whose open record is not durable must not open —
            // and must not leave a dirty entry behind.
            if let Some(entry) = inner.files.remove(&id) {
                inner.unsynced_total = inner.unsynced_total.saturating_sub(entry.unsynced);
            }
            return Err(e);
        }
        Ok(())
    }

    /// Re-attaches to a recovered session's journal file in append mode,
    /// continuing after `seq` — new commands extend the replayed trail.
    ///
    /// # Errors
    /// Propagates open failures.
    pub fn adopt_session(&self, id: SessionId, seq: u64) -> std::io::Result<()> {
        let path = journal_path(&self.dir, id);
        let file = OpenOptions::new().append(true).open(path)?;
        self.files.lock().files.insert(
            id,
            JournalFile {
                file,
                seq,
                unsynced: 0,
            },
        );
        Ok(())
    }

    /// Appends one executed command and its outcome, allocating the next
    /// sequence number. Called from the drain loop *before* the client's
    /// response slot is fulfilled, so any response a client observed is
    /// journaled. Append failures are counted (see
    /// [`JournalStats::append_failures`]), never panic, and never block
    /// the response — a torn or missing tail is exactly what recovery's
    /// checksum truncation is built to absorb.
    pub fn append_command(&self, id: SessionId, command: &Command, outcome: &RecordedOutcome) {
        let mut inner = self.files.lock();
        let Some(entry) = inner.files.get(&id) else {
            return; // session not journaled (opened before the journal)
        };
        let seq = entry.seq + 1;
        let record = JournalRecord::Command {
            seq,
            command: command.clone(),
            outcome: outcome.clone(),
        };
        match self.write_record(&mut inner, id, &record.to_json(id)) {
            Ok(()) => {
                if let Some(entry) = inner.files.get_mut(&id) {
                    entry.seq = seq;
                }
            }
            Err(_) => {
                self.append_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Appends the `close` record and deletes the session's file — a
    /// cleanly closed session has no state to recover. (If the process
    /// dies between the append and the delete, recovery sees the close
    /// record and removes the file itself.)
    pub fn close_session(&self, id: SessionId) {
        let mut inner = self.files.lock();
        let Some(entry) = inner.files.get(&id) else {
            return;
        };
        let seq = entry.seq + 1;
        let record = JournalRecord::Close { seq };
        if self
            .write_record(&mut inner, id, &record.to_json(id))
            .is_err()
        {
            self.append_failures.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(entry) = inner.files.remove(&id) {
            inner.unsynced_total = inner.unsynced_total.saturating_sub(entry.unsynced);
        }
        drop(inner);
        let _ = std::fs::remove_file(journal_path(&self.dir, id));
    }

    /// Last sequence number of session `id` (`None` when unjournaled).
    pub fn seq_of(&self, id: SessionId) -> Option<u64> {
        self.files.lock().files.get(&id).map(|entry| entry.seq)
    }

    /// Observability counters.
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            sessions: self.files.lock().files.len(),
            records: self.records.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            group_commits: self.group_commits.load(Ordering::Relaxed),
            batched_syncs: self.batched_syncs.load(Ordering::Relaxed),
            append_failures: self.append_failures.load(Ordering::Relaxed),
        }
    }

    /// Journaled session ids with files on disk (ascending) — what
    /// recovery scans. Includes sessions not yet adopted.
    ///
    /// # Errors
    /// Propagates directory-read failures.
    pub fn scan(&self) -> std::io::Result<Vec<SessionId>> {
        let mut ids = Vec::new();
        for dirent in std::fs::read_dir(&self.dir)? {
            let dirent = dirent?;
            if let Some(id) = dirent.file_name().to_str().and_then(journal_file_id) {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    fn write_record(
        &self,
        inner: &mut JournalFiles,
        id: SessionId,
        payload: &Value,
    ) -> std::io::Result<()> {
        // lint: allow(panic-hygiene) — serializing an already-built Value cannot fail (no foreign Serialize impls)
        let text = serde_json::to_string(payload).expect("serialization is infallible");
        let line = frame(&text);
        let entry = inner
            .files
            .get_mut(&id)
            .expect("write_record only runs for an open journal file"); // lint: allow(panic-hygiene) — callers insert the file entry before any write; absence is a server bug, not input
        entry.file.write_all(line.as_bytes())?;
        self.records.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(line.len() as u64, Ordering::Relaxed);
        entry.unsynced += 1;
        inner.unsynced_total += 1;
        match self.fsync {
            FsyncPolicy::Never => Ok(()),
            FsyncPolicy::Always => {
                // lint: allow(panic-hygiene) — same entry fetched successfully a few lines up under the same lock
                let entry = inner.files.get_mut(&id).expect("entry still present");
                entry.file.sync_data()?;
                entry.unsynced = 0;
                inner.unsynced_total = inner.unsynced_total.saturating_sub(1);
                self.fsyncs.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            FsyncPolicy::EveryN(n) => {
                if inner.unsynced_total >= n.max(1) {
                    self.group_commit(inner)
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Group commit: one sweep over every dirty file. `n` records
    /// accumulated *fleet-wide* cost one sweep, not one fsync per
    /// session — with S busy sessions and policy `EveryN(n)`, the sweep
    /// issues at most S syncs per `n` records total, where per-session
    /// counting would issue S syncs per `n` records *each*. A file
    /// whose sync fails keeps its dirty count (the next sweep retries
    /// it) and the first error propagates to the append that triggered
    /// the sweep.
    fn group_commit(&self, inner: &mut JournalFiles) -> std::io::Result<()> {
        let mut first_error = None;
        let mut remaining = 0u64;
        let mut synced = 0u64;
        for entry in inner.files.values_mut() {
            if entry.unsynced == 0 {
                continue;
            }
            match entry.file.sync_data() {
                Ok(()) => {
                    entry.unsynced = 0;
                    synced += 1;
                }
                Err(e) => {
                    remaining += entry.unsynced;
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        inner.unsynced_total = remaining;
        self.fsyncs.fetch_add(synced, Ordering::Relaxed);
        self.batched_syncs.fetch_add(synced, Ordering::Relaxed);
        self.group_commits.fetch_add(1, Ordering::Relaxed);
        match first_error {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "blaeu-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn write_demo(journal: &SessionJournal) {
        journal.open_session(3, "oecd", 42).unwrap();
        journal.append_command(
            3,
            &Command::SelectTheme(0),
            &RecordedOutcome::Digest(0xabcd),
        );
        journal.append_command(
            3,
            &Command::Zoom(99),
            &RecordedOutcome::Error("unknown_region".into()),
        );
    }

    #[test]
    fn records_round_trip_through_framing() {
        let dir = tempdir("roundtrip");
        let journal = SessionJournal::open(&dir, FsyncPolicy::Never).unwrap();
        write_demo(&journal);
        assert_eq!(journal.seq_of(3), Some(2));
        assert_eq!(journal.scan().unwrap(), vec![3]);

        let read = read_journal(&journal_path(&dir, 3)).unwrap();
        assert!(read.defect.is_none(), "{:?}", read.defect);
        assert_eq!(read.records.len(), 3);
        assert_eq!(
            read.records[0],
            JournalRecord::Open {
                session: 3,
                table: "oecd".into(),
                seed: 42
            }
        );
        assert_eq!(
            read.records[1],
            JournalRecord::Command {
                seq: 1,
                command: Command::SelectTheme(0),
                outcome: RecordedOutcome::Digest(0xabcd)
            }
        );
        assert_eq!(
            read.records[2],
            JournalRecord::Command {
                seq: 2,
                command: Command::Zoom(99),
                outcome: RecordedOutcome::Error("unknown_region".into())
            }
        );
        // The raw lines are the wire envelope — every payload carries v1.
        for line in &read.lines {
            let value: Value = serde_json::from_str(line).unwrap();
            assert_eq!(value.get("v").and_then(Value::as_u64), Some(1));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn close_removes_the_file() {
        let dir = tempdir("close");
        let journal = SessionJournal::open(&dir, FsyncPolicy::Never).unwrap();
        write_demo(&journal);
        journal.close_session(3);
        assert!(!journal_path(&dir, 3).exists());
        assert_eq!(journal.scan().unwrap(), Vec::<SessionId>::new());
        assert_eq!(journal.seq_of(3), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_yields_valid_prefix() {
        let dir = tempdir("trunc");
        let journal = SessionJournal::open(&dir, FsyncPolicy::Never).unwrap();
        write_demo(&journal);
        let path = journal_path(&dir, 3);
        let full = std::fs::read(&path).unwrap();
        // Chop the last record mid-payload.
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();
        let read = read_journal(&path).unwrap();
        assert_eq!(read.records.len(), 2, "prefix before the torn record");
        let defect = read.defect.expect("torn tail must be reported");
        assert_eq!(defect.record, 2);
        // Truncating to valid_bytes yields a clean journal.
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(read.valid_bytes).unwrap();
        drop(file);
        let clean = read_journal(&path).unwrap();
        assert!(clean.defect.is_none());
        assert_eq!(clean.records.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_byte_fails_the_checksum() {
        let dir = tempdir("flip");
        let journal = SessionJournal::open(&dir, FsyncPolicy::Never).unwrap();
        write_demo(&journal);
        let path = journal_path(&dir, 3);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of the *second* record.
        let second = bytes.iter().position(|&b| b == b'\n').unwrap() + 1 + FRAME_HEADER_LEN + 3;
        bytes[second] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let read = read_journal(&path).unwrap();
        assert_eq!(read.records.len(), 1, "only the open record survives");
        let defect = read.defect.expect("flip must be detected");
        assert_eq!(defect.record, 1);
        assert!(defect.detail.contains("checksum"), "{}", defect.detail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_header_yields_empty_prefix() {
        let dir = tempdir("header");
        let journal = SessionJournal::open(&dir, FsyncPolicy::Never).unwrap();
        write_demo(&journal);
        let path = journal_path(&dir, 3);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        let read = read_journal(&path).unwrap();
        assert!(read.records.is_empty());
        assert_eq!(read.defect.expect("must be reported").record, 0);
        assert_eq!(read.valid_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_policy_counts() {
        let dir = tempdir("fsync");
        let journal = SessionJournal::open(&dir, FsyncPolicy::Always).unwrap();
        write_demo(&journal);
        let stats = journal.stats();
        assert_eq!(stats.records, 3);
        assert_eq!(stats.fsyncs, 3);
        assert!(stats.bytes > 0);
        assert_eq!(stats.append_failures, 0);
        assert_eq!(stats.sessions, 1);
        assert_eq!(stats.group_commits, 0, "Always never sweeps");
        assert_eq!(stats.batched_syncs, 0);
        let _ = std::fs::remove_dir_all(&dir);

        let dir = tempdir("fsync-n");
        let journal = SessionJournal::open(&dir, FsyncPolicy::EveryN(2)).unwrap();
        write_demo(&journal);
        let stats = journal.stats();
        assert_eq!(stats.fsyncs, 1, "3 records, sync every 2");
        assert_eq!(stats.group_commits, 1, "one sweep at the second record");
        assert_eq!(stats.batched_syncs, 1, "one dirty file in the sweep");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The group-commit point: `n` records *across* sessions trigger one
    /// sweep syncing every dirty file — not one fsync per session per
    /// `n` of its own records.
    #[test]
    fn group_commit_sweeps_all_dirty_sessions() {
        let dir = tempdir("group");
        let journal = SessionJournal::open(&dir, FsyncPolicy::EveryN(4)).unwrap();
        // Two sessions, interleaved appends: open(1), open(2) are
        // records 1 and 2; two commands land records 3 and 4 → the
        // fourth record fires one sweep over both dirty files.
        journal.open_session(1, "oecd", 0).unwrap();
        journal.open_session(2, "oecd", 0).unwrap();
        journal.append_command(1, &Command::Depth, &RecordedOutcome::Digest(1));
        assert_eq!(journal.stats().fsyncs, 0, "three records: below the bar");
        journal.append_command(2, &Command::Depth, &RecordedOutcome::Digest(2));
        let stats = journal.stats();
        assert_eq!(stats.group_commits, 1, "fourth record fires the sweep");
        assert_eq!(stats.batched_syncs, 2, "both dirty files synced");
        assert_eq!(stats.fsyncs, 2);
        // The sweep reset every dirty counter: the next three appends
        // stay below the bar again.
        journal.append_command(1, &Command::Depth, &RecordedOutcome::Digest(3));
        journal.append_command(1, &Command::Depth, &RecordedOutcome::Digest(4));
        journal.append_command(2, &Command::Depth, &RecordedOutcome::Digest(5));
        assert_eq!(journal.stats().group_commits, 1, "counter was reset");
        // The close record is the window's fourth append: the sweep
        // fires while both files are dirty (session 1 with two records,
        // session 2 with its last command plus the close).
        journal.close_session(2);
        let stats = journal.stats();
        assert_eq!(stats.group_commits, 2, "close record completed the window");
        assert_eq!(stats.batched_syncs, 4, "both files dirty again");
        // The departed session left nothing behind in the dirty count.
        journal.append_command(1, &Command::Depth, &RecordedOutcome::Digest(6));
        assert_eq!(journal.stats().group_commits, 2, "window restarted at zero");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
