//! # blaeu-server — the asynchronous session tier
//!
//! The paper's architecture (Figure 4) puts a session-managing server in
//! front of the cluster-analysis engine so many users can map, zoom and
//! highlight concurrently. [`AsyncSessionServer`] is that tier as a
//! library: it owns a [`SessionManager`], runs every command on a shared
//! [`JobPool`], and memoizes analyses in an [`AnalysisCache`].
//!
//! ## Execution model
//!
//! Each session is a **FIFO command pipeline**: [`AsyncSessionServer::submit`]
//! enqueues a [`Command`] and returns a [`ResponseHandle`] immediately.
//! Commands *within* a session execute strictly in submission order (the
//! session's queue is drained by at most one pool worker at a time);
//! commands *across* sessions overlap freely — a slow `Map` in one
//! session no longer blocks a fast `Highlight` in another, which is the
//! always-responsive property Hillview-style systems are built around.
//!
//! Per-session queues are **bounded**: when `queue_capacity` commands are
//! already pending, `submit` fails fast with
//! [`BlaeuError::QueueFull`] instead of buffering unboundedly — the
//! backpressure signal a real front-end needs.
//!
//! ## Determinism
//!
//! Pool workers run under the executor's nesting guard, so each command
//! computes sequentially and its result depends only on the session's
//! command history — never on worker count or scheduling. Per-session
//! response streams are therefore bit-identical across thread budgets
//! and across cache on/off (cache hits return the very `Arc` a miss
//! built). Both invariants are enforced by tests.

#![warn(missing_docs)]

pub mod cache;
pub mod dist;
pub mod journal;

pub use cache::{AnalysisCache, CacheStats};
pub use dist::{split_ranges, CoordStats, ShardCoordinator, WorkerClient};
pub use journal::{
    journal_file_id, journal_path, read_journal, FsyncPolicy, JournalDefect, JournalRecord,
    JournalStats, ReadJournal, RecordedOutcome, SessionJournal,
};

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use blaeu_core::{
    AnalysisMemo, BlaeuError, Command, ExplorerConfig, Response, Result, SessionId, SessionManager,
};
use blaeu_exec::JobPool;
use blaeu_store::Table;

/// Configuration of an [`AsyncSessionServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining session queues (`0` = the process
    /// thread budget, i.e. `BLAEU_THREADS`).
    pub threads: usize,
    /// Max pending (not yet executing) commands per session before
    /// [`AsyncSessionServer::submit`] answers
    /// [`BlaeuError::QueueFull`].
    pub queue_capacity: usize,
    /// Analysis-cache entries per result kind (`0` disables caching —
    /// every command recomputes).
    pub cache_capacity: usize,
    /// Analysis-cache byte budget per result kind: approximate bytes a
    /// shelf may pin before size-aware LRU eviction kicks in, so giant
    /// maps and tiny theme sets are weighed, not merely counted (`0` =
    /// unlimited — entry count is the only bound).
    pub cache_bytes: usize,
    /// Directory for the write-ahead command journal (`None` = no
    /// durability: sessions die with the process, exactly the pre-journal
    /// behavior). With a journal, sessions opened via
    /// [`AsyncSessionServer::open_named_session`] survive restart through
    /// [`AsyncSessionServer::recover`].
    pub journal_dir: Option<PathBuf>,
    /// When journal appends reach the disk (ignored without
    /// `journal_dir`).
    pub journal_fsync: FsyncPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 0,
            queue_capacity: 64,
            cache_capacity: 256,
            cache_bytes: cache::DEFAULT_CACHE_BYTES,
            journal_dir: None,
            journal_fsync: FsyncPolicy::Never,
        }
    }
}

/// Result slot a queued command will eventually fulfil.
struct ResponseSlot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

enum SlotState {
    Waiting,
    Ready(Result<Response>, Instant),
    Claimed,
}

impl ResponseSlot {
    fn new() -> Self {
        ResponseSlot {
            state: Mutex::new(SlotState::Waiting),
            cv: Condvar::new(),
        }
    }

    fn fulfil(&self, result: Result<Response>) {
        let mut st = self.state.lock();
        debug_assert!(
            matches!(*st, SlotState::Waiting),
            "a slot is fulfilled exactly once"
        );
        *st = SlotState::Ready(result, Instant::now());
        self.cv.notify_all();
    }
}

/// Handle to one submitted command's eventual response.
///
/// Every accepted command's handle resolves, whatever happens to the
/// session: executed commands carry their result, commands rejected by
/// a racing [`AsyncSessionServer::close`] carry
/// [`BlaeuError::UnknownSession`]. Dropping the handle abandons the
/// response but never the command.
pub struct ResponseHandle {
    slot: Arc<ResponseSlot>,
}

impl std::fmt::Debug for ResponseHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseHandle")
            .field("ready", &self.is_ready())
            .finish()
    }
}

impl ResponseHandle {
    /// True once the response is available (join won't block).
    pub fn is_ready(&self) -> bool {
        !matches!(*self.slot.state.lock(), SlotState::Waiting)
    }

    /// When the response arrived (None while pending). Lets callers
    /// compare completion order across sessions without instrumenting
    /// the server.
    pub fn finished_at(&self) -> Option<Instant> {
        match *self.slot.state.lock() {
            SlotState::Ready(_, at) => Some(at),
            _ => None,
        }
    }

    /// Blocks until the response is available without consuming the
    /// handle — pair with [`ResponseHandle::finished_at`] to read the
    /// fulfilment stamp before [`ResponseHandle::join`] takes the
    /// result.
    pub fn wait(&self) {
        let mut st = self.slot.state.lock();
        self.slot
            .cv
            .wait_while(&mut st, |s| matches!(s, SlotState::Waiting));
    }

    /// Blocks until the command has executed (or been rejected) and
    /// returns its result.
    pub fn join(self) -> Result<Response> {
        let mut st = self.slot.state.lock();
        self.slot
            .cv
            .wait_while(&mut st, |s| matches!(s, SlotState::Waiting));
        match std::mem::replace(&mut *st, SlotState::Claimed) {
            SlotState::Ready(result, _) => result,
            _ => unreachable!("wait_while guarantees a ready slot"),
        }
    }
}

/// A blocking stream of refinement responses — the channel
/// [`AsyncSessionServer::submit_progressive`] hands back alongside the
/// level-0 [`ResponseHandle`]. Each entry is one completed rung's
/// [`Response::MapDelta`] (or the rung's error); the stream terminates
/// when the final level lands, the ladder is superseded or cancelled,
/// or the session closes — consumers simply read until `None`, and the
/// server guarantees the stream always terminates.
pub struct DeltaStream {
    state: Mutex<DeltaStreamState>,
    cv: Condvar,
}

struct DeltaStreamState {
    ready: VecDeque<Result<Response>>,
    done: bool,
}

impl std::fmt::Debug for DeltaStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("DeltaStream")
            .field("ready", &st.ready.len())
            .field("done", &st.done)
            .finish()
    }
}

impl DeltaStream {
    fn new() -> Arc<Self> {
        Arc::new(DeltaStream {
            state: Mutex::new(DeltaStreamState {
                ready: VecDeque::new(),
                done: false,
            }),
            cv: Condvar::new(),
        })
    }

    fn push(&self, result: Result<Response>) {
        let mut st = self.state.lock();
        st.ready.push_back(result);
        self.cv.notify_all();
    }

    fn finish(&self) {
        let mut st = self.state.lock();
        st.done = true;
        self.cv.notify_all();
    }

    /// Blocks for the next refinement result; `None` once the stream has
    /// terminated (final level delivered, ladder cancelled, or session
    /// closed) and every queued entry has been taken.
    pub fn next(&self) -> Option<Result<Response>> {
        let mut st = self.state.lock();
        self.cv
            .wait_while(&mut st, |s| s.ready.is_empty() && !s.done);
        st.ready.pop_front()
    }

    /// True once the producer is done (queued entries may remain).
    pub fn is_finished(&self) -> bool {
        self.state.lock().done
    }
}

/// One entry of a session's pending queue: a client command, or one
/// self-requeued rung of an in-flight progressive ladder.
enum QueueItem {
    /// A submitted [`Command`]; `stream` is armed only for
    /// [`Command::MapProgressive`] — the channel its follow-up rungs
    /// report on.
    User {
        command: Command,
        slot: Arc<ResponseSlot>,
        stream: Option<Arc<DeltaStream>>,
    },
    /// One pending ladder rung, executed as `Command::MapRefine` and
    /// reported on `stream` instead of a response slot. Rungs ride the
    /// same queue and `DRAIN_BATCH` discipline as user commands, so a
    /// refining session cannot starve any other session.
    Rung {
        level: usize,
        levels: usize,
        stream: Arc<DeltaStream>,
    },
}

struct QueueState {
    pending: VecDeque<QueueItem>,
    /// True while a pool job owns this queue (drains it command by
    /// command). At most one drain job exists per session at any time —
    /// that is what serializes a session.
    active: bool,
    closed: bool,
    /// Last time a command was accepted or completed (open counts) —
    /// `GET /sessions` reports its age.
    last_activity: Instant,
}

struct SessionQueue {
    id: SessionId,
    state: Mutex<QueueState>,
}

/// Commands one drain job executes before re-enqueueing itself at the
/// back of the pool's FIFO — the fairness knob: a session with a
/// continuously-full queue releases its worker every `DRAIN_BATCH`
/// commands, so other sessions' drain jobs (which sit in the same FIFO)
/// always get scheduled. Without the cap, N always-busy sessions would
/// pin all N workers and starve every later session.
const DRAIN_BATCH: usize = 4;

/// One session's monitoring snapshot — the `GET /sessions` resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionInfo {
    /// Session id.
    pub id: SessionId,
    /// Commands queued, not yet executing.
    pub pending: usize,
    /// Last journal sequence number (`None` for unjournaled sessions).
    pub journal_seq: Option<u64>,
    /// Time since the last command was accepted or completed.
    pub idle: std::time::Duration,
}

/// Counters of the progressive execution mode, shared by every drain
/// job.
#[derive(Debug, Default)]
struct ProgressiveCounters {
    /// Completed ladder levels streamed to clients (level 0 included).
    levels_streamed: AtomicU64,
    /// Pending rungs dropped because a superseding command or a close
    /// cancelled their ladder.
    rungs_cancelled: AtomicU64,
    /// Ladder levels answered from the analysis cache instead of a
    /// fresh build — warm coarse entries a zoom issued mid-refinement
    /// (or a second session) benefits from.
    coarse_hits: AtomicU64,
}

/// Progressive-mode effectiveness counters — the `/stats` payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressiveStats {
    /// Completed ladder levels streamed (level 0 included).
    pub levels_streamed: u64,
    /// Pending rungs cancelled by supersession or close.
    pub rungs_cancelled: u64,
    /// Ladder levels served from the analysis cache.
    pub coarse_hits: u64,
}

/// Everything a drain job needs besides the queue itself — bundled so
/// the job captures one `Arc` instead of four.
struct DrainCtx {
    manager: Arc<SessionManager>,
    journal: Option<Arc<SessionJournal>>,
    cache: Option<Arc<AnalysisCache>>,
    progressive: Arc<ProgressiveCounters>,
}

/// The asynchronous session server (see the [crate docs](self)).
pub struct AsyncSessionServer {
    manager: Arc<SessionManager>,
    pool: Arc<JobPool>,
    queues: Mutex<HashMap<SessionId, Arc<SessionQueue>>>,
    cache: Option<Arc<AnalysisCache>>,
    journal: Option<Arc<SessionJournal>>,
    progressive: Arc<ProgressiveCounters>,
    queue_capacity: usize,
}

impl std::fmt::Debug for AsyncSessionServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncSessionServer")
            .field("sessions", &self.manager.len())
            .field("workers", &self.pool.workers())
            .field("cache", &self.cache)
            .finish()
    }
}

impl AsyncSessionServer {
    /// Spawns a server: a worker pool plus (unless disabled) a shared
    /// analysis cache.
    ///
    /// # Panics
    /// When `config.journal_dir` is set but the directory cannot be
    /// created — use [`AsyncSessionServer::try_new`] to handle journal
    /// setup failures without a panic.
    pub fn new(config: ServerConfig) -> Self {
        // lint: allow(panic-hygiene) — documented panicking constructor (see # Panics); try_new is the fallible path
        Self::try_new(config).expect("journal directory setup failed")
    }

    /// [`AsyncSessionServer::new`], surfacing journal-setup failures
    /// instead of panicking. Infallible when `journal_dir` is `None`.
    ///
    /// # Errors
    /// Journal-directory creation failures.
    pub fn try_new(config: ServerConfig) -> std::io::Result<Self> {
        let cache = (config.cache_capacity > 0).then(|| {
            Arc::new(AnalysisCache::with_byte_budget(
                config.cache_capacity,
                config.cache_bytes,
            ))
        });
        let journal = match &config.journal_dir {
            Some(dir) => Some(Arc::new(SessionJournal::open(dir, config.journal_fsync)?)),
            None => None,
        };
        Ok(AsyncSessionServer {
            manager: Arc::new(SessionManager::new()),
            pool: Arc::new(JobPool::new(config.threads)),
            queues: Mutex::new(HashMap::new()),
            cache,
            journal,
            progressive: Arc::new(ProgressiveCounters::default()),
            queue_capacity: config.queue_capacity.max(1),
        })
    }

    /// The drain context this server's jobs share.
    fn drain_ctx(&self) -> Arc<DrainCtx> {
        Arc::new(DrainCtx {
            manager: Arc::clone(&self.manager),
            journal: self.journal.clone(),
            cache: self.cache.clone(),
            progressive: Arc::clone(&self.progressive),
        })
    }

    /// Opens a session over a shared table (the zero-copy path: every
    /// session navigates views of one `Arc<Table>`). Theme detection
    /// runs synchronously here — through the cache, so the N-th session
    /// on a table opens instantly.
    ///
    /// # Errors
    /// Propagates explorer-open failures (e.g. too few columns).
    pub fn open_session(&self, table: Arc<Table>, config: ExplorerConfig) -> Result<SessionId> {
        let id = match &self.cache {
            Some(cache) => self.manager.create_shared_memoized(
                table,
                config,
                Arc::clone(cache) as Arc<dyn AnalysisMemo>,
            )?,
            None => self.manager.create_shared(table, config)?,
        };
        self.install_queue(id);
        Ok(id)
    }

    /// [`AsyncSessionServer::open_session`] under a registered table
    /// *name* — the durable path: with a journal configured, the session
    /// writes an `open` record (name + seed) and every executed command
    /// after it, so [`AsyncSessionServer::recover`] can rebuild it after
    /// a restart. The wire tier opens all its sessions through this.
    ///
    /// Only `config.mapper.seed` is journaled — it is the one config
    /// knob the wire contract exposes; recovery re-opens with defaults
    /// plus that seed.
    ///
    /// # Errors
    /// Explorer-open failures, plus journal I/O failures (a session
    /// whose open record cannot be written must not pretend to be
    /// durable).
    pub fn open_named_session(
        &self,
        name: &str,
        table: Arc<Table>,
        config: ExplorerConfig,
    ) -> Result<SessionId> {
        let seed = config.mapper.seed;
        let id = self.open_session(table, config)?;
        if let Some(journal) = &self.journal {
            if let Err(e) = journal.open_session(id, name, seed) {
                // Roll the half-open session back — better refused than
                // silently undurable.
                let _ = self.close(id);
                return Err(BlaeuError::from_io(e));
            }
        }
        Ok(id)
    }

    fn install_queue(&self, id: SessionId) {
        self.queues.lock().insert(
            id,
            Arc::new(SessionQueue {
                id,
                state: Mutex::new(QueueState {
                    pending: VecDeque::new(),
                    active: false,
                    closed: false,
                    last_activity: Instant::now(),
                }),
            }),
        );
    }

    /// Enqueues `command` on the session's pipeline and returns a handle
    /// to its eventual response. Commands of one session execute in
    /// submission order; commands of different sessions overlap.
    ///
    /// # Errors
    /// [`BlaeuError::UnknownSession`] for closed/bogus ids,
    /// [`BlaeuError::QueueFull`] when the session already has
    /// `queue_capacity` pending commands (backpressure — retry after
    /// some in-flight responses resolve).
    pub fn submit(&self, id: SessionId, command: Command) -> Result<ResponseHandle> {
        self.submit_with_stream(id, command, None)
    }

    /// Submits a [`Command::MapProgressive`]: the returned handle
    /// resolves with the level-0 [`Response::MapDelta`] (milliseconds),
    /// and the returned [`DeltaStream`] carries every further rung's
    /// delta until the final (exact) level — or until a superseding
    /// command on the session, or a close, cancels the remaining rungs
    /// (the stream always terminates). Rungs execute as ordinary queue
    /// items under the `DRAIN_BATCH` discipline, so a refining session
    /// never starves other sessions.
    ///
    /// # Errors
    /// As [`AsyncSessionServer::submit`].
    pub fn submit_progressive(&self, id: SessionId) -> Result<(ResponseHandle, Arc<DeltaStream>)> {
        let stream = DeltaStream::new();
        let handle =
            self.submit_with_stream(id, Command::MapProgressive, Some(Arc::clone(&stream)))?;
        Ok((handle, stream))
    }

    fn submit_with_stream(
        &self,
        id: SessionId,
        command: Command,
        stream: Option<Arc<DeltaStream>>,
    ) -> Result<ResponseHandle> {
        let queue = self
            .queues
            .lock()
            .get(&id)
            .cloned()
            .ok_or(BlaeuError::UnknownSession(id))?;
        let slot = Arc::new(ResponseSlot::new());
        let mut swept = Vec::new();
        let outcome = {
            let mut st = queue.state.lock();
            if st.closed {
                Err(BlaeuError::UnknownSession(id))
            } else {
                // A fresh client command supersedes any in-flight
                // ladder: its pending rungs are swept here (their
                // streams finish outside the lock, even when this
                // submit itself is rejected), so refinement work the
                // user no longer wants never runs.
                let mut kept = VecDeque::with_capacity(st.pending.len() + 1);
                for item in st.pending.drain(..) {
                    match item {
                        QueueItem::Rung { .. } => swept.push(item),
                        user => kept.push_back(user),
                    }
                }
                st.pending = kept;
                if st.pending.len() >= self.queue_capacity {
                    // Report the occupancy actually observed and the
                    // *clamped* capacity (the bound being enforced), so
                    // clients can back off by exactly the right amount.
                    Err(BlaeuError::QueueFull {
                        session: id,
                        pending: st.pending.len(),
                        capacity: self.queue_capacity,
                    })
                } else {
                    st.pending.push_back(QueueItem::User {
                        command,
                        slot: Arc::clone(&slot),
                        stream,
                    });
                    st.last_activity = Instant::now();
                    if st.active {
                        Ok(false)
                    } else {
                        st.active = true;
                        Ok(true)
                    }
                }
            }
        };
        for item in swept {
            if let QueueItem::Rung {
                level,
                levels,
                stream,
            } = item
            {
                self.progressive
                    .rungs_cancelled
                    .fetch_add((levels - level) as u64, Ordering::Relaxed);
                stream.finish();
            }
        }
        if outcome? {
            schedule_drain(
                self.drain_ctx(),
                Arc::downgrade(&self.pool),
                queue,
                &self.pool,
            );
        }
        Ok(ResponseHandle { slot })
    }

    /// Submits and waits — the synchronous convenience for callers that
    /// do not pipeline (REPLs, tests).
    ///
    /// # Errors
    /// As [`AsyncSessionServer::submit`], plus the command's own errors.
    pub fn request(&self, id: SessionId, command: Command) -> Result<Response> {
        self.submit(id, command)?.join()
    }

    /// Closes a session: already-queued commands are rejected with
    /// [`BlaeuError::UnknownSession`] (their handles resolve; nothing
    /// deadlocks), pending refinement rungs are cancelled (their delta
    /// streams terminate), an in-flight command finishes or rejects on
    /// its own, and the session leaves the registry.
    ///
    /// # Errors
    /// [`BlaeuError::UnknownSession`] when the id is unknown or already
    /// closed.
    pub fn close(&self, id: SessionId) -> Result<()> {
        let queue = self
            .queues
            .lock()
            .remove(&id)
            .ok_or(BlaeuError::UnknownSession(id))?;
        let rejected: Vec<QueueItem> = {
            let mut st = queue.state.lock();
            st.closed = true;
            st.pending.drain(..).collect()
        };
        for item in rejected {
            match item {
                QueueItem::User { slot, .. } => {
                    slot.fulfil(Err(BlaeuError::UnknownSession(id)));
                }
                QueueItem::Rung {
                    level,
                    levels,
                    stream,
                } => {
                    self.progressive
                        .rungs_cancelled
                        .fetch_add((levels - level) as u64, Ordering::Relaxed);
                    stream.finish();
                }
            }
        }
        if let Some(journal) = &self.journal {
            journal.close_session(id);
        }
        self.manager.close(id)
    }

    /// Progressive-mode counters: levels streamed, rungs cancelled,
    /// coarse cache hits.
    pub fn progressive_stats(&self) -> ProgressiveStats {
        ProgressiveStats {
            levels_streamed: self.progressive.levels_streamed.load(Ordering::Relaxed),
            rungs_cancelled: self.progressive.rungs_cancelled.load(Ordering::Relaxed),
            coarse_hits: self.progressive.coarse_hits.load(Ordering::Relaxed),
        }
    }

    /// Ids of all live sessions, ascending.
    pub fn ids(&self) -> Vec<SessionId> {
        self.manager.ids()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.manager.len()
    }

    /// True when no session is live.
    pub fn is_empty(&self) -> bool {
        self.manager.is_empty()
    }

    /// The per-session queue bound actually enforced (the configured
    /// value clamped to at least 1) — what a `QueueFull` error reports
    /// as `capacity`.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Pending (queued, not yet executing) commands of one session —
    /// `None` for unknown/closed sessions.
    pub fn queue_depth(&self, id: SessionId) -> Option<usize> {
        let queue = self.queues.lock().get(&id).cloned()?;
        let depth = queue.state.lock().pending.len();
        Some(depth)
    }

    /// Pending commands per live session, ascending by session id — the
    /// queue-depth snapshot a monitoring endpoint reports.
    pub fn queue_depths(&self) -> Vec<(SessionId, usize)> {
        let queues: Vec<Arc<SessionQueue>> = self.queues.lock().values().cloned().collect();
        let mut depths: Vec<(SessionId, usize)> = queues
            .iter()
            .map(|q| (q.id, q.state.lock().pending.len()))
            .collect();
        depths.sort_unstable_by_key(|&(id, _)| id);
        depths
    }

    /// The underlying session registry — for synchronous access outside
    /// the pipeline (rendering a state snapshot, tests).
    pub fn manager(&self) -> &SessionManager {
        &self.manager
    }

    /// The shared worker pool (e.g. to co-schedule auxiliary jobs).
    pub fn pool(&self) -> &JobPool {
        &self.pool
    }

    /// Cache effectiveness counters (`None` when caching is disabled).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// The shared analysis cache (`None` when disabled).
    pub fn cache(&self) -> Option<&AnalysisCache> {
        self.cache.as_deref()
    }

    /// The write-ahead command journal (`None` when not configured).
    pub fn journal(&self) -> Option<&SessionJournal> {
        self.journal.as_deref()
    }

    /// Journal depth/bytes/fsync counters (`None` when not configured).
    pub fn journal_stats(&self) -> Option<JournalStats> {
        self.journal.as_ref().map(|j| j.stats())
    }

    /// Monitoring snapshot of every live session, ascending by id — the
    /// `GET /sessions` resource.
    pub fn session_infos(&self) -> Vec<SessionInfo> {
        let queues: Vec<Arc<SessionQueue>> = self.queues.lock().values().cloned().collect();
        let now = Instant::now();
        let mut infos: Vec<SessionInfo> = queues
            .iter()
            .map(|q| {
                let st = q.state.lock();
                SessionInfo {
                    id: q.id,
                    pending: st.pending.len(),
                    journal_seq: self.journal.as_ref().and_then(|j| j.seq_of(q.id)),
                    idle: now.saturating_duration_since(st.last_activity),
                }
            })
            .collect();
        infos.sort_unstable_by_key(|info| info.id);
        infos
    }

    /// Replays every journal file in the configured directory over
    /// `tables` (registered name → table), rebuilding each journaled
    /// session under its original id and warming the analysis cache
    /// bit-identically — every replayed response is digest-checked
    /// against the recorded digest, so divergence is a typed
    /// [`RecoveryError`], never silent.
    ///
    /// Damage is contained per session: a corrupt or truncated tail is
    /// cleanly cut back to the longest valid prefix (the file is
    /// physically truncated, and the session lives on at the prefix
    /// state); a file whose head is unreadable is set aside as
    /// `*.jnl.corrupt`; a cleanly closed journal is removed. All of it
    /// is reported in the [`RecoveryReport`].
    ///
    /// # Errors
    /// [`BlaeuError::Invalid`] when no journal is configured; journal
    /// directory scan failures as [`BlaeuError::Store`]. Per-session
    /// problems are report entries, not errors.
    pub fn recover(&self, tables: &HashMap<String, Arc<Table>>) -> Result<RecoveryReport> {
        let journal = self
            .journal
            .as_ref()
            .ok_or_else(|| BlaeuError::Invalid("no journal directory configured".into()))?;
        let mut report = RecoveryReport::default();
        for id in journal.scan().map_err(BlaeuError::from_io)? {
            self.recover_session(journal, id, tables, &mut report);
        }
        Ok(report)
    }

    /// Replays one journal file; all failure modes land in `report`.
    fn recover_session(
        &self,
        journal: &Arc<SessionJournal>,
        id: SessionId,
        tables: &HashMap<String, Arc<Table>>,
        report: &mut RecoveryReport,
    ) {
        let path = journal_path(journal.dir(), id);
        let read = match read_journal(&path) {
            Ok(read) => read,
            Err(e) => {
                report.errors.push(RecoveryError::Io {
                    session: id,
                    detail: e.to_string(),
                });
                return;
            }
        };
        // A close record anywhere means the session ended cleanly (the
        // delete just never happened); drop the file.
        if read
            .records
            .iter()
            .any(|r| matches!(r, JournalRecord::Close { .. }))
        {
            let _ = std::fs::remove_file(&path);
            report.closed += 1;
            return;
        }
        let Some(JournalRecord::Open { table, seed, .. }) = read.records.first() else {
            // Head unreadable (or first record is not `open`): nothing
            // recoverable. Set the file aside so the next restart does
            // not trip over it again.
            let detail = read.defect.as_ref().map_or_else(
                || "journal does not start with an open record".to_owned(),
                |d| d.detail.clone(),
            );
            let _ = std::fs::rename(&path, path.with_extension("jnl.corrupt"));
            report.errors.push(RecoveryError::CorruptHead {
                session: id,
                detail,
            });
            return;
        };
        if let Some(defect) = &read.defect {
            // Torn/corrupt tail: physically truncate to the valid
            // prefix, report it, and replay what survived.
            if let Ok(file) = std::fs::OpenOptions::new().write(true).open(&path) {
                let _ = file.set_len(read.valid_bytes);
            }
            report.errors.push(RecoveryError::TruncatedTail {
                session: id,
                valid_records: read.records.len(),
                detail: defect.detail.clone(),
            });
        }
        let Some(table_arc) = tables.get(table) else {
            report.errors.push(RecoveryError::UnknownTable {
                session: id,
                table: table.clone(),
            });
            return;
        };
        let config = {
            let mut config = ExplorerConfig::default();
            config.mapper.seed = *seed;
            config
        };
        let memo = self
            .cache
            .as_ref()
            .map(|c| Arc::clone(c) as Arc<dyn AnalysisMemo>);
        if let Err(error) =
            self.manager
                .restore_shared_memoized(id, Arc::clone(table_arc), config, memo)
        {
            report.errors.push(RecoveryError::Replay {
                session: id,
                seq: 0,
                detail: error.to_string(),
            });
            return;
        }
        // Replay, digest-checking every step. On divergence: cut the
        // journal back to the last verified record and keep the session
        // at that state — same containment as a torn tail.
        let mut verified_bytes = 0u64;
        let mut last_seq = 0u64;
        for (index, record) in read.records.iter().enumerate() {
            let record_end = read.record_ends[index];
            let JournalRecord::Command {
                seq,
                command,
                outcome,
            } = record
            else {
                verified_bytes = record_end;
                continue;
            };
            let result = run_guarded(|| {
                self.manager
                    .with(id, |explorer| explorer.execute(command))
                    .and_then(|inner| inner)
            });
            if outcome.matches(&result) {
                verified_bytes = record_end;
                last_seq = *seq;
                report.replayed += 1;
            } else {
                report.errors.push(RecoveryError::DigestMismatch {
                    session: id,
                    seq: *seq,
                    expected: outcome.clone(),
                    detail: match &result {
                        Ok(response) => format!("replay digest {:016x}", response.digest()),
                        Err(error) => format!("replay error kind {:?}", error.kind()),
                    },
                });
                if let Ok(file) = std::fs::OpenOptions::new().write(true).open(&path) {
                    let _ = file.set_len(verified_bytes);
                }
                break;
            }
        }
        if let Err(e) = journal.adopt_session(id, last_seq) {
            report.errors.push(RecoveryError::Io {
                session: id,
                detail: e.to_string(),
            });
        }
        self.install_queue(id);
        report.sessions.push(id);
    }
}

/// One contained per-session problem [`AsyncSessionServer::recover`]
/// hit (the rest of the directory still recovers).
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryError {
    /// The journal head is unreadable — file set aside as
    /// `*.jnl.corrupt`, session not restored.
    CorruptHead {
        /// Session id from the file name.
        session: SessionId,
        /// What failed.
        detail: String,
    },
    /// A corrupt/torn tail was cut back to the valid prefix; the
    /// session recovered up to it.
    TruncatedTail {
        /// Session id.
        session: SessionId,
        /// Records that survived.
        valid_records: usize,
        /// What the checksum/framing check reported.
        detail: String,
    },
    /// A replayed command's outcome did not match the recorded one —
    /// the table or build changed under the journal. The journal was
    /// cut back to the last verified record.
    DigestMismatch {
        /// Session id.
        session: SessionId,
        /// Sequence of the diverging command.
        seq: u64,
        /// The recorded outcome.
        expected: RecordedOutcome,
        /// What replay produced instead.
        detail: String,
    },
    /// The journal names a table that is not registered.
    UnknownTable {
        /// Session id.
        session: SessionId,
        /// The missing table name.
        table: String,
    },
    /// Session restore itself failed (id collision, explorer open).
    Replay {
        /// Session id.
        session: SessionId,
        /// Sequence at failure (0 = before any command).
        seq: u64,
        /// The engine error.
        detail: String,
    },
    /// Filesystem failure reading or re-attaching the journal.
    Io {
        /// Session id.
        session: SessionId,
        /// The I/O error.
        detail: String,
    },
}

/// What [`AsyncSessionServer::recover`] rebuilt.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Sessions restored (live again under their original ids).
    pub sessions: Vec<SessionId>,
    /// Commands replayed with verified outcomes, across all sessions.
    pub replayed: u64,
    /// Journal files of cleanly closed sessions (removed, not restored).
    pub closed: usize,
    /// Contained per-session problems, in session order.
    pub errors: Vec<RecoveryError>,
}

/// Runs one command to a `Result`, converting a panic in the analysis
/// code into an error instead of unwinding. Unwinding out of `drain`
/// would strand the command's slot (its client would block forever) and
/// leave the session's `active` flag set (wedging the whole session) —
/// the drain job's own pool handle is deliberately detached, so nobody
/// would ever observe the payload.
fn run_guarded(f: impl FnOnce() -> Result<Response>) -> Result<Response> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).unwrap_or_else(|payload| {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_owned());
        Err(BlaeuError::Invalid(format!("command panicked: {message}")))
    })
}

/// Enqueues a drain job for `queue` onto the pool. Jobs hold only a
/// [`Weak`](std::sync::Weak) pool reference — a strong one stored inside
/// the pool's own queue would keep the pool alive through its own jobs
/// (a reference cycle whose last `Arc` could then drop on a worker).
/// `pool` is the strong handle of whoever is scheduling right now.
fn schedule_drain(
    ctx: Arc<DrainCtx>,
    weak_pool: std::sync::Weak<JobPool>,
    queue: Arc<SessionQueue>,
    pool: &JobPool,
) {
    // The handle is intentionally detached — every command's own
    // ResponseSlot is the join point, and drain never panics
    // (run_guarded converts command panics into errors).
    let _detached = pool.submit(move || drain(&ctx, &weak_pool, &queue));
}

/// Runs one command for `queue`'s session, journaling the acknowledgement
/// write-ahead (the record is on disk before any client can observe the
/// result) and counting a coarse cache hit when the command is a
/// progressive level answered from the analysis cache.
fn execute_one(ctx: &DrainCtx, queue: &SessionQueue, command: &Command) -> Result<Response> {
    let progressive_level = matches!(command, Command::MapProgressive | Command::MapRefine { .. });
    let hits_before = match (&ctx.cache, progressive_level) {
        (Some(cache), true) => Some(cache.hit_count()),
        _ => None,
    };
    let result = run_guarded(|| {
        ctx.manager
            .with(queue.id, |explorer| explorer.execute(command))
            .and_then(|inner| inner)
    });
    if let Some(journal) = &ctx.journal {
        journal.append_command(queue.id, command, &RecordedOutcome::of(&result));
    }
    if let (Some(before), Some(cache), Ok(_)) = (hits_before, &ctx.cache, &result) {
        // Approximate by design: concurrent sessions' hits can land in
        // the same window, so this can over-count under contention — a
        // monitoring signal, not an invariant.
        if cache.hit_count() > before {
            ctx.progressive.coarse_hits.fetch_add(1, Ordering::Relaxed);
        }
    }
    queue.state.lock().last_activity = Instant::now();
    result
}

/// Re-enqueues the next rung of an in-flight ladder — unless the session
/// closed or a client command is already pending (which supersedes the
/// ladder), in which case the stream terminates and the remaining rungs
/// count as cancelled.
fn enqueue_rung(
    ctx: &DrainCtx,
    queue: &SessionQueue,
    level: usize,
    levels: usize,
    stream: Arc<DeltaStream>,
) {
    let cancelled = {
        let mut st = queue.state.lock();
        if st.closed
            || st
                .pending
                .iter()
                .any(|item| matches!(item, QueueItem::User { .. }))
        {
            true
        } else {
            st.pending.push_back(QueueItem::Rung {
                level,
                levels,
                stream: Arc::clone(&stream),
            });
            false
        }
    };
    if cancelled {
        ctx.progressive
            .rungs_cancelled
            .fetch_add((levels - level) as u64, Ordering::Relaxed);
        stream.finish();
    }
}

/// Drains one session's queue: pops and executes commands in FIFO order,
/// fulfilling each command's slot (or pushing each rung's delta on its
/// stream). Runs on a pool worker; at most one instance exists per
/// session (the `active` flag), which is the whole serialization story.
/// After [`DRAIN_BATCH`] items the job re-enqueues itself at the back of
/// the pool FIFO so one busy session cannot pin a worker; when the pool
/// is gone or shutting down (server teardown), the re-enqueue degrades
/// to draining inline, so every slot still resolves and every stream
/// terminates.
fn drain(ctx: &Arc<DrainCtx>, weak_pool: &std::sync::Weak<JobPool>, queue: &Arc<SessionQueue>) {
    let mut executed = 0usize;
    loop {
        if executed == DRAIN_BATCH {
            if let Some(pool) = weak_pool.upgrade() {
                {
                    // Don't schedule a guaranteed no-op continuation for
                    // a batch-aligned burst: retire here if nothing is
                    // pending.
                    let mut st = queue.state.lock();
                    if st.pending.is_empty() {
                        st.active = false;
                        return;
                    }
                }
                schedule_drain(
                    Arc::clone(ctx),
                    std::sync::Weak::clone(weak_pool),
                    Arc::clone(queue),
                    &pool,
                );
                return;
            }
            // Pool gone (server tearing down): keep draining inline so
            // no accepted handle is stranded.
            executed = 0;
        }
        let next = {
            let mut st = queue.state.lock();
            match st.pending.pop_front() {
                Some(item) => item,
                None => {
                    // Retire under the lock: a submit that raced us saw
                    // `active == true` only while its command was still
                    // in `pending` — which we just proved empty.
                    st.active = false;
                    return;
                }
            }
        };
        match next {
            QueueItem::User {
                command,
                slot,
                stream,
            } => {
                let result = execute_one(ctx, queue, &command);
                // A progressive command's follow-up rungs are decided
                // *before* the handle resolves, off the delta the
                // execution produced.
                let continuation = match (&result, stream) {
                    (Ok(Response::MapDelta { delta, .. }), Some(stream)) => {
                        ctx.progressive
                            .levels_streamed
                            .fetch_add(1, Ordering::Relaxed);
                        if delta.final_level {
                            stream.finish();
                            None
                        } else {
                            Some((delta.level + 1, delta.levels, stream))
                        }
                    }
                    (_, Some(stream)) => {
                        // The progressive command itself failed (or
                        // answered a non-delta): nothing will refine.
                        stream.finish();
                        None
                    }
                    (_, None) => None,
                };
                slot.fulfil(result);
                if let Some((level, levels, stream)) = continuation {
                    enqueue_rung(ctx, queue, level, levels, stream);
                }
            }
            QueueItem::Rung {
                level,
                levels: _,
                stream,
            } => {
                let command = Command::MapRefine { level };
                let result = execute_one(ctx, queue, &command);
                let continuation = match &result {
                    Ok(Response::MapDelta { delta, .. }) => {
                        ctx.progressive
                            .levels_streamed
                            .fetch_add(1, Ordering::Relaxed);
                        (!delta.final_level).then(|| (delta.level + 1, delta.levels))
                    }
                    // A failed rung (e.g. the session closed under it)
                    // ends the ladder; the error is the stream's last
                    // entry.
                    _ => None,
                };
                let finished = continuation.is_none();
                stream.push(result);
                if finished {
                    stream.finish();
                } else if let Some((next_level, next_levels)) = continuation {
                    enqueue_rung(ctx, queue, next_level, next_levels, stream);
                }
            }
        }
        executed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaeu_store::generate::{oecd, OecdConfig};
    use std::sync::Barrier;

    fn shared_table() -> Arc<Table> {
        Arc::new(
            oecd(&OecdConfig {
                nrows: 250,
                ncols: 24,
                missing_rate: 0.0,
                ..OecdConfig::default()
            })
            .unwrap()
            .0,
        )
    }

    fn server(threads: usize, queue_capacity: usize, cache_capacity: usize) -> AsyncSessionServer {
        AsyncSessionServer::new(ServerConfig {
            threads,
            queue_capacity,
            cache_capacity,
            ..ServerConfig::default()
        })
    }

    #[test]
    fn submit_executes_and_responds() {
        let srv = server(2, 16, 16);
        let id = srv
            .open_session(shared_table(), ExplorerConfig::default())
            .unwrap();
        let themes = srv.request(id, Command::Themes).unwrap();
        let Response::Themes(themes) = themes else {
            panic!("wrong response kind");
        };
        assert!(themes.themes.len() >= 2);
        let map = srv.request(id, Command::SelectTheme(0)).unwrap();
        assert!(matches!(map, Response::Map(_)));
        let depth = srv.request(id, Command::Depth).unwrap();
        assert!(matches!(depth, Response::Depth(2)));
        srv.close(id).unwrap();
        assert!(srv.is_empty());
    }

    #[test]
    fn unknown_session_rejected_on_submit() {
        let srv = server(1, 4, 0);
        assert!(matches!(
            srv.submit(999, Command::Depth),
            Err(BlaeuError::UnknownSession(999))
        ));
    }

    #[test]
    fn command_errors_travel_through_the_pipeline() {
        let srv = server(1, 8, 0);
        let id = srv
            .open_session(shared_table(), ExplorerConfig::default())
            .unwrap();
        assert!(matches!(
            srv.request(id, Command::Zoom(0)),
            Err(BlaeuError::NoActiveMap)
        ));
        assert!(matches!(
            srv.request(id, Command::SelectTheme(999)),
            Err(BlaeuError::UnknownTheme(999))
        ));
        // The pipeline survives errors: later commands still execute.
        assert!(matches!(
            srv.request(id, Command::Depth),
            Ok(Response::Depth(1))
        ));
    }

    #[test]
    fn backpressure_when_queue_is_full() {
        let srv = server(1, 2, 0);
        let id = srv
            .open_session(shared_table(), ExplorerConfig::default())
            .unwrap();
        // Park the only worker so queued commands cannot drain.
        let gate = Arc::new(Barrier::new(2));
        let parked = {
            let gate = Arc::clone(&gate);
            srv.pool().submit(move || {
                gate.wait();
            })
        };
        let a = srv.submit(id, Command::Depth).unwrap();
        let b = srv.submit(id, Command::Depth).unwrap();
        let overflow = srv.submit(id, Command::Depth);
        assert!(
            matches!(
                overflow,
                Err(BlaeuError::QueueFull {
                    session,
                    pending: 2,
                    capacity: 2,
                }) if session == id
            ),
            "expected backpressure, got {overflow:?}"
        );
        gate.wait();
        parked.join().unwrap();
        assert!(matches!(a.join(), Ok(Response::Depth(1))));
        assert!(matches!(b.join(), Ok(Response::Depth(1))));
        // Capacity freed: submitting works again.
        assert!(matches!(
            srv.request(id, Command::Depth),
            Ok(Response::Depth(1))
        ));
    }

    #[test]
    fn zero_capacity_clamp_is_reflected_in_queue_full_reports() {
        // queue_capacity: 0 is clamped to 1 at construction; the clamped
        // value must be what QueueFull reports — a client told
        // "capacity 0" could never compute a sane backoff.
        let srv = server(1, 0, 0);
        assert_eq!(srv.queue_capacity(), 1);
        let id = srv
            .open_session(shared_table(), ExplorerConfig::default())
            .unwrap();
        let gate = Arc::new(Barrier::new(2));
        let parked = {
            let gate = Arc::clone(&gate);
            srv.pool().submit(move || {
                gate.wait();
            })
        };
        let accepted = srv.submit(id, Command::Depth).unwrap();
        let overflow = srv.submit(id, Command::Depth);
        assert!(
            matches!(
                overflow,
                Err(BlaeuError::QueueFull {
                    pending: 1,
                    capacity: 1,
                    ..
                })
            ),
            "clamped capacity not reported: {overflow:?}"
        );
        assert_eq!(srv.queue_depth(id), Some(1));
        assert_eq!(srv.queue_depths(), vec![(id, 1)]);
        assert_eq!(srv.queue_depth(999), None);
        gate.wait();
        parked.join().unwrap();
        assert!(accepted.join().is_ok());
    }

    #[test]
    fn close_rejects_queued_commands_without_deadlock() {
        let srv = server(1, 8, 0);
        let id = srv
            .open_session(shared_table(), ExplorerConfig::default())
            .unwrap();
        let gate = Arc::new(Barrier::new(2));
        let parked = {
            let gate = Arc::clone(&gate);
            srv.pool().submit(move || {
                gate.wait();
            })
        };
        // Three commands queue behind the parked worker.
        let handles: Vec<ResponseHandle> = (0..3)
            .map(|_| srv.submit(id, Command::Depth).unwrap())
            .collect();
        srv.close(id).unwrap();
        gate.wait();
        parked.join().unwrap();
        // Every handle resolves — with UnknownSession, not a hang.
        for handle in handles {
            assert!(matches!(
                handle.join(),
                Err(BlaeuError::UnknownSession(s)) if s == id
            ));
        }
        // The session is gone for future submits too.
        assert!(matches!(
            srv.submit(id, Command::Depth),
            Err(BlaeuError::UnknownSession(_))
        ));
        assert!(srv.is_empty());
    }

    #[test]
    fn close_racing_inflight_command_resolves_cleanly() {
        let srv = server(2, 8, 0);
        let id = srv
            .open_session(shared_table(), ExplorerConfig::default())
            .unwrap();
        // A slow command starts executing, then the session closes under
        // it. Whatever the interleaving, the handle must resolve: either
        // the command finished first (Ok) or lost the race
        // (UnknownSession).
        let slow = srv.submit(id, Command::SelectTheme(0)).unwrap();
        srv.close(id).unwrap();
        match slow.join() {
            Ok(Response::Map(_)) => {}
            Err(BlaeuError::UnknownSession(s)) => assert_eq!(s, id),
            other => panic!("unexpected resolution: {other:?}"),
        }
        assert!(srv.is_empty());
    }

    #[test]
    fn sessions_overlap_but_commands_within_a_session_are_fifo() {
        let srv = server(4, 32, 0);
        let table = shared_table();
        let ids: Vec<SessionId> = (0..4)
            .map(|_| {
                srv.open_session(Arc::clone(&table), ExplorerConfig::default())
                    .unwrap()
            })
            .collect();
        // Per session: a pipeline whose steps only make sense in order.
        let handles: Vec<Vec<ResponseHandle>> = ids
            .iter()
            .map(|&id| {
                vec![
                    srv.submit(id, Command::SelectTheme(0)).unwrap(),
                    srv.submit(id, Command::Zoom(0)).unwrap(),
                    srv.submit(id, Command::Rollback).unwrap(),
                    srv.submit(id, Command::Rollback).unwrap(),
                    srv.submit(id, Command::Depth).unwrap(),
                ]
            })
            .collect();
        for per_session in handles {
            let mut finished = Vec::new();
            let responses: Vec<Result<Response>> = per_session
                .into_iter()
                .map(|h| {
                    let r = h.join();
                    finished.push(Instant::now());
                    r
                })
                .collect();
            assert!(matches!(responses[0], Ok(Response::Map(_))));
            assert!(
                matches!(responses[1], Ok(Response::Map(_))),
                "zoom needs the map built by the earlier select_theme"
            );
            assert!(matches!(responses[2], Ok(Response::Depth(2))));
            assert!(matches!(responses[3], Ok(Response::Depth(1))));
            assert!(matches!(responses[4], Ok(Response::Depth(1))));
        }
        for id in ids {
            srv.close(id).unwrap();
        }
    }

    #[test]
    fn busy_sessions_cannot_starve_a_newcomer() {
        let srv = server(2, 64, 0);
        let table = shared_table();
        let hog_a = srv
            .open_session(Arc::clone(&table), ExplorerConfig::default())
            .unwrap();
        let hog_b = srv
            .open_session(Arc::clone(&table), ExplorerConfig::default())
            .unwrap();
        let newcomer = srv
            .open_session(Arc::clone(&table), ExplorerConfig::default())
            .unwrap();
        // Park both workers so the hog queues actually build depth
        // (unblocked, µs-fast commands would drain as fast as the test
        // submits them and prove nothing).
        let gate = Arc::new(Barrier::new(3));
        let blockers: Vec<_> = (0..2)
            .map(|_| {
                let gate = Arc::clone(&gate);
                srv.pool().submit(move || {
                    gate.wait();
                })
            })
            .collect();
        // Two sessions preload deep queues (> 2 × DRAIN_BATCH each), then
        // a third session submits one command. Batched draining requeues
        // the hogs' drain jobs behind the newcomer's, so the newcomer
        // must complete while the hogs still have work outstanding —
        // without the batch cap, both workers would be pinned until a
        // hog queue emptied.
        let hog_handles: Vec<ResponseHandle> = [hog_a, hog_b]
            .iter()
            .flat_map(|&id| {
                (0..12)
                    .map(|_| srv.submit(id, Command::Depth).unwrap())
                    .collect::<Vec<_>>()
            })
            .collect();
        let nc = srv.submit(newcomer, Command::Depth).unwrap();
        gate.wait();
        for blocker in blockers {
            blocker.join().unwrap();
        }
        nc.wait();
        let nc_done = nc.finished_at().expect("waited");
        assert!(matches!(nc.join(), Ok(Response::Depth(1))));
        let last_hog = hog_handles
            .into_iter()
            .map(|h| {
                h.wait();
                let at = h.finished_at().expect("waited");
                h.join().unwrap();
                at
            })
            .max()
            .unwrap();
        assert!(
            nc_done < last_hog,
            "newcomer must not wait for the busy sessions to fully drain"
        );
    }

    #[test]
    fn panicking_command_resolves_as_error_not_a_wedge() {
        // A panic anywhere under Explorer::execute must become an error
        // on the command's own handle — unwinding out of the drain job
        // would strand the slot and wedge the session forever (the
        // drain job's pool handle is detached, so its captured payload
        // is observable by no one).
        let guarded = run_guarded(|| panic!("analysis exploded"));
        match guarded {
            Err(BlaeuError::Invalid(message)) => {
                assert!(message.contains("analysis exploded"), "{message}")
            }
            other => panic!("panic not converted: {other:?}"),
        }
        let string_payload = run_guarded(|| panic!("{}", "formatted {} payload"));
        assert!(matches!(string_payload, Err(BlaeuError::Invalid(_))));
    }

    #[test]
    fn progressive_streams_deltas_until_exact() {
        let srv = server(2, 8, 64);
        let id = srv
            .open_session(shared_table(), ExplorerConfig::default())
            .unwrap();
        srv.request(id, Command::SelectTheme(0)).unwrap();
        let exact = srv.request(id, Command::Map).unwrap().digest();

        let (first, stream) = srv.submit_progressive(id).unwrap();
        let first = first.join().unwrap();
        let Response::MapDelta { delta, .. } = &first else {
            panic!("expected level-0 delta, got {first:?}");
        };
        assert_eq!(delta.level, 0);
        assert!(delta.levels >= 2, "250 rows must ladder");
        let mut last_digest = delta.map_digest;
        let mut saw_final = delta.final_level;
        while let Some(result) = stream.next() {
            let refined = result.unwrap();
            let Response::MapDelta { delta, .. } = &refined else {
                panic!("expected a delta, got {refined:?}");
            };
            last_digest = delta.map_digest;
            saw_final = delta.final_level;
        }
        assert!(saw_final, "stream must end at the exact level");
        // The final rung is byte-identical to the plain Command::Map.
        assert_eq!(last_digest, exact);
        let stats = srv.progressive_stats();
        assert!(stats.levels_streamed >= 2, "{stats:?}");
        assert_eq!(stats.rungs_cancelled, 0, "{stats:?}");
        srv.close(id).unwrap();
    }

    #[test]
    fn superseding_command_cancels_pending_rungs() {
        let srv = server(1, 8, 0);
        let id = srv
            .open_session(shared_table(), ExplorerConfig::default())
            .unwrap();
        srv.request(id, Command::SelectTheme(0)).unwrap();
        // Park the only worker, then line up [MapProgressive, Depth]:
        // whatever the drain interleaving, the Depth command supersedes
        // the ladder before any rung can run.
        let gate = Arc::new(Barrier::new(2));
        let parked = {
            let gate = Arc::clone(&gate);
            srv.pool().submit(move || {
                gate.wait();
            })
        };
        let (first, stream) = srv.submit_progressive(id).unwrap();
        let superseder = srv.submit(id, Command::Depth).unwrap();
        gate.wait();
        parked.join().unwrap();
        // Level 0 still resolves on its handle…
        assert!(matches!(first.join(), Ok(Response::MapDelta { .. })));
        assert!(superseder.join().is_ok());
        // …but the stream terminates without any refinement.
        assert!(stream.next().is_none());
        let stats = srv.progressive_stats();
        assert_eq!(stats.rungs_cancelled, 1, "{stats:?}");
        assert_eq!(stats.levels_streamed, 1, "{stats:?}");
        srv.close(id).unwrap();
    }

    #[test]
    fn close_racing_refinement_cancels_rungs_and_resolves_handles() {
        // Regression: a close racing an in-flight refinement must cancel
        // the remaining rungs (the delta stream terminates — no consumer
        // hangs) while still resolving every accepted handle. Loop a few
        // times to hit different interleavings of close vs. level 0 vs.
        // rung execution.
        for _ in 0..5 {
            let srv = server(2, 8, 16);
            let id = srv
                .open_session(shared_table(), ExplorerConfig::default())
                .unwrap();
            let select = srv.submit(id, Command::SelectTheme(0)).unwrap();
            let (first, stream) = srv.submit_progressive(id).unwrap();
            srv.close(id).unwrap();
            // Every accepted handle resolves — executed or rejected.
            match select.join() {
                Ok(Response::Map(_)) | Err(BlaeuError::UnknownSession(_)) => {}
                other => panic!("select handle resolution: {other:?}"),
            }
            match first.join() {
                Ok(Response::MapDelta { .. }) | Err(BlaeuError::UnknownSession(_)) => {}
                other => panic!("progressive handle resolution: {other:?}"),
            }
            // The stream terminates: rungs either refined before the
            // close won, failed against the closed session, or were
            // swept — in all cases `next` reaches None instead of
            // blocking forever.
            while let Some(result) = stream.next() {
                match result {
                    Ok(Response::MapDelta { .. }) | Err(BlaeuError::UnknownSession(_)) => {}
                    other => panic!("rung resolution: {other:?}"),
                }
            }
            assert!(stream.is_finished());
            assert!(srv.is_empty());
        }
    }

    #[test]
    fn cache_hits_after_identical_commands_across_sessions() {
        let srv = server(2, 8, 64);
        let table = shared_table();
        let a = srv
            .open_session(Arc::clone(&table), ExplorerConfig::default())
            .unwrap();
        let b = srv
            .open_session(Arc::clone(&table), ExplorerConfig::default())
            .unwrap();
        // Session b's theme detection already hit (same table+config).
        let after_open = srv.cache_stats().unwrap();
        assert!(after_open.hits >= 1, "{after_open:?}");
        let ra = srv.request(a, Command::SelectTheme(0)).unwrap();
        let before = srv.cache_stats().unwrap();
        let rb = srv.request(b, Command::SelectTheme(0)).unwrap();
        let after = srv.cache_stats().unwrap();
        assert_eq!(
            after.hits,
            before.hits + 1,
            "identical map request must hit"
        );
        // Bit-identical payloads (same digest — and in fact same Arc).
        assert_eq!(ra.digest(), rb.digest());
        if let (Response::Map(ma), Response::Map(mb)) = (&ra, &rb) {
            assert!(Arc::ptr_eq(ma, mb));
        } else {
            panic!("expected maps");
        }
    }
}
