//! The analysis result cache — LRU memoization of theme detection and
//! map construction, shared by every session of a server.
//!
//! A zoom on a popular region runs the same `sample → preprocess →
//! CLARA → CART` pipeline for every user who performs it; with a million
//! users the cluster engine would spend almost all its time recomputing
//! identical results. [`AnalysisCache`] implements
//! [`AnalysisMemo`](blaeu_core::AnalysisMemo) over the exact keys of
//! `blaeu_core::cache`, so sessions attached to one cache share every
//! analysis:
//!
//! * A **hit** returns the `Arc` stored by the build that populated the
//!   entry — *bit-identical* to what a miss would compute, because map
//!   construction is deterministic and keys compare exactly (no hashes
//!   standing in for content). The purity is enforced by test, not just
//!   argued.
//! * A **miss** builds outside the cache lock (a slow CLARA run never
//!   blocks other keys' hits), then publishes. Concurrent misses on the
//!   same key **coalesce**: the first claims the build, late racers park
//!   on a condvar and wake to the published result — M sessions
//!   requesting one cold key cost one build, not M. (If the build
//!   errors, the marker clears, the error propagates to the claimant,
//!   and a woken racer becomes the next builder.)
//! * **Eviction** is least-recently-used over a fixed entry capacity
//!   *and* an approximate byte budget, with dead entries (their table has
//!   been dropped everywhere) purged first — a dead key can never match
//!   again, so it only wastes space. Entries are weighed, not counted:
//!   a map over a million rows and a three-theme summary are nowhere
//!   near the same memory, so the budget charges each entry an
//!   approximate byte size (regions × features for maps, themes ×
//!   columns plus the dependency matrix for theme sets) and evicts LRU
//!   until the shelf fits.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use blaeu_core::{AnalysisMemo, DataMap, MapKey, Result, ThemeSet, ThemesKey};

/// Snapshot of a cache's effectiveness counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build.
    pub misses: u64,
    /// Live map entries.
    pub map_entries: usize,
    /// Live theme-set entries.
    pub theme_entries: usize,
    /// Approximate bytes held by map entries.
    pub map_bytes: usize,
    /// Approximate bytes held by theme-set entries.
    pub theme_bytes: usize,
}

impl CacheStats {
    /// Hit fraction (0.0 when the cache was never consulted).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry<T> {
    value: T,
    last_used: u64,
    /// Approximate bytes this entry pins (computed once at publish).
    weight: usize,
}

/// Anything the cache can ask "is your table still alive?".
trait LiveKey {
    fn live(&self) -> bool;
}

impl LiveKey for MapKey {
    fn live(&self) -> bool {
        self.view.is_live()
    }
}

impl LiveKey for ThemesKey {
    fn live(&self) -> bool {
        self.view.is_live()
    }
}

/// Approximate memory footprint of a cached payload — what size-aware
/// eviction charges against the byte budget. Deliberately cheap and
/// approximate (structure counts × per-item costs, not a deep traversal):
/// the budget needs proportionality, not accounting-grade precision.
trait Weigh {
    fn approx_bytes(&self) -> usize;
}

impl Weigh for DataMap {
    fn approx_bytes(&self) -> usize {
        // Regions dominate the structural cost (predicate + description
        // strings per region scale with the feature count); leaf row
        // memberships partition the view (one u32 per covered row);
        // medoids and sample bookkeeping are comparatively small.
        let region_cost = self.n_regions() * (self.columns.len() + 1) * 96;
        let row_cost = self.view_rows * std::mem::size_of::<u32>();
        region_cost + row_cost + self.medoid_rows.len() * 4 + 256
    }
}

impl Weigh for ThemeSet {
    fn approx_bytes(&self) -> usize {
        // Column names across themes, plus the dense pairwise dependency
        // matrix the themes were cut from (the real payload for wide
        // tables: ncols² f64 cells).
        let ncols = self.graph.len();
        let name_cost: usize = self.themes.iter().map(|t| 48 + t.columns.len() * 48).sum();
        name_cost + ncols * ncols * std::mem::size_of::<f64>() + 256
    }
}

impl<T: Weigh> Weigh for Arc<T> {
    fn approx_bytes(&self) -> usize {
        (**self).approx_bytes()
    }
}

struct Shelf<K, V> {
    entries: HashMap<K, Entry<V>>,
    /// Sum of live entry weights — recomputed after the dead-entry purge
    /// on each publish (the purge drops arbitrary entries), then kept
    /// consistent by the LRU eviction loop's decrements.
    bytes: usize,
}

impl<K: Eq + Hash + LiveKey, V: Clone + Weigh> Shelf<K, V> {
    fn new() -> Self {
        Shelf {
            entries: HashMap::new(),
            bytes: 0,
        }
    }

    fn get(&mut self, key: &K, tick: u64) -> Option<V> {
        let entry = self.entries.get_mut(key)?;
        entry.last_used = tick;
        Some(entry.value.clone())
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.bytes = 0;
    }

    /// Publishes `value` under `key` unless an incumbent exists (the
    /// incumbent wins, so every racer ends up sharing one `Arc`), then
    /// enforces the bounds: dead entries go first, then strict LRU while
    /// the shelf exceeds `capacity` entries or `byte_budget` approximate
    /// bytes. A single entry bigger than the whole budget is published
    /// (the caller's Arc is always returned) but immediately evicted —
    /// the budget is a memory bound, not a hit guarantee.
    fn publish(&mut self, key: K, value: V, tick: u64, capacity: usize, byte_budget: usize) -> V {
        let value = match self.entries.get_mut(&key) {
            Some(incumbent) => {
                incumbent.last_used = tick;
                incumbent.value.clone()
            }
            None => {
                let weight = value.approx_bytes();
                self.entries.insert(
                    key,
                    Entry {
                        value: value.clone(),
                        last_used: tick,
                        weight,
                    },
                );
                value
            }
        };
        // Dead entries (their table is gone everywhere) can never match
        // again; purge them on every publish so they don't pin their
        // Arc'd payloads until the shelf happens to overflow.
        self.entries.retain(|k, _| k.live());
        self.bytes = self.entries.values().map(|e| e.weight).sum();
        while self.entries.len() > capacity || self.bytes > byte_budget {
            let oldest = match self.entries.values().map(|e| e.last_used).min() {
                Some(oldest) => oldest,
                None => break, // empty shelf satisfies every bound
            };
            self.entries.retain(|_, e| {
                if e.last_used == oldest {
                    self.bytes -= e.weight;
                    false
                } else {
                    true
                }
            });
        }
        value
    }
}

struct CacheInner {
    maps: Shelf<MapKey, Arc<DataMap>>,
    themes: Shelf<ThemesKey, Arc<ThemeSet>>,
    /// Keys currently being built by some thread — late racers wait on
    /// `built_cv` instead of repeating the expensive build.
    building_maps: std::collections::HashSet<MapKey>,
    building_themes: std::collections::HashSet<ThemesKey>,
    tick: u64,
}

/// Shared LRU memoizer for the explorer's expensive analyses (see the
/// [module docs](self)).
pub struct AnalysisCache {
    inner: Mutex<CacheInner>,
    /// Signalled whenever an in-flight build finishes (successfully or
    /// not), waking racers parked on the same key.
    built_cv: parking_lot::Condvar,
    /// Max entries per shelf (maps and theme sets are bounded
    /// independently). `0` disables caching entirely.
    capacity: usize,
    /// Approximate-byte bound per shelf: 256 giant maps weigh far more
    /// than 256 tiny theme sets, so entry count alone cannot bound
    /// memory. See [`AnalysisCache::with_byte_budget`].
    byte_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Clears a key's in-flight marker on every exit path — success, build
/// error, or unwinding panic. A stuck marker would park all future
/// racers on that key forever.
struct MarkGuard<'a, K: std::hash::Hash + Eq> {
    cache: &'a AnalysisCache,
    select: fn(&mut CacheInner) -> &mut std::collections::HashSet<K>,
    key: K,
}

impl<K: std::hash::Hash + Eq> Drop for MarkGuard<'_, K> {
    fn drop(&mut self) {
        let mut inner = self.cache.inner.lock();
        (self.select)(&mut inner).remove(&self.key);
        drop(inner);
        self.cache.built_cv.notify_all();
    }
}

impl std::fmt::Debug for AnalysisCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("AnalysisCache")
            .field("capacity", &self.capacity)
            .field("stats", &stats)
            .finish()
    }
}

/// Default per-shelf byte budget (64 MiB) — generous for interactive
/// workloads, small enough that a shelf of million-row maps cannot eat
/// the heap before the entry cap notices.
pub const DEFAULT_CACHE_BYTES: usize = 64 << 20;

impl AnalysisCache {
    /// A cache bounded to `capacity` entries per result kind (`0` =
    /// caching disabled: every lookup builds) and the default
    /// [`DEFAULT_CACHE_BYTES`] byte budget per shelf.
    pub fn new(capacity: usize) -> Self {
        Self::with_byte_budget(capacity, DEFAULT_CACHE_BYTES)
    }

    /// A cache bounded to `capacity` entries *and* `byte_budget`
    /// approximate bytes per shelf — eviction triggers on whichever
    /// bound is exceeded first, so many small entries are bounded by
    /// count and few huge ones by weight. `byte_budget = 0` means
    /// unlimited bytes (entry count only); `capacity = 0` disables
    /// caching entirely.
    pub fn with_byte_budget(capacity: usize, byte_budget: usize) -> Self {
        AnalysisCache {
            inner: Mutex::new(CacheInner {
                maps: Shelf::new(),
                themes: Shelf::new(),
                building_maps: std::collections::HashSet::new(),
                building_themes: std::collections::HashSet::new(),
                tick: 0,
            }),
            built_cv: parking_lot::Condvar::new(),
            capacity,
            byte_budget: if byte_budget == 0 {
                usize::MAX
            } else {
                byte_budget
            },
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Current hit/miss/occupancy counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            map_entries: inner.maps.entries.len(),
            theme_entries: inner.themes.entries.len(),
            map_bytes: inner.maps.bytes,
            theme_bytes: inner.themes.bytes,
        }
    }

    /// The hit counter alone, without taking the cache lock — cheap
    /// enough to read around every command (the drain loop samples it
    /// to attribute progressive levels to warm entries).
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Drops every entry (counters survive). Used by benchmarks to
    /// measure the miss path and by operators to release memory.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.maps.clear();
        inner.themes.clear();
    }

    /// The one memoization algorithm both result kinds share, over the
    /// shelf/marker pair the `select_*` accessors pick out: hit, or
    /// claim the build; racers on an in-flight key park on the condvar
    /// instead of repeating the expensive build (the thundering-herd
    /// path: M sessions requesting one cold key must cost one build,
    /// not M). The build runs with the lock released — a slow cluster
    /// analysis must not serialize unrelated keys' hits. Errors
    /// propagate and are never cached: the guard wakes the racers, one
    /// of which becomes the next builder.
    fn memo_in<K, V>(
        &self,
        key: K,
        select_shelf: fn(&mut CacheInner) -> &mut Shelf<K, Arc<V>>,
        select_marks: fn(&mut CacheInner) -> &mut std::collections::HashSet<K>,
        build: &mut dyn FnMut() -> Result<V>,
    ) -> Result<Arc<V>>
    where
        K: std::hash::Hash + Eq + Clone + LiveKey,
        V: Weigh,
    {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return build().map(Arc::new);
        }
        {
            let mut inner = self.inner.lock();
            loop {
                inner.tick += 1;
                let tick = inner.tick;
                if let Some(hit) = select_shelf(&mut inner).get(&key, tick) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(hit);
                }
                if !select_marks(&mut inner).contains(&key) {
                    select_marks(&mut inner).insert(key.clone());
                    break;
                }
                self.built_cv.wait(&mut inner);
            }
        }
        let _unmark = MarkGuard {
            cache: self,
            select: select_marks,
            key: key.clone(),
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(build()?);
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        Ok(select_shelf(&mut inner).publish(key, built, tick, self.capacity, self.byte_budget))
    }
}

impl AnalysisMemo for AnalysisCache {
    fn memo_map(
        &self,
        key: MapKey,
        build: &mut dyn FnMut() -> Result<DataMap>,
    ) -> Result<Arc<DataMap>> {
        self.memo_in(key, |i| &mut i.maps, |i| &mut i.building_maps, build)
    }

    fn memo_themes(
        &self,
        key: ThemesKey,
        build: &mut dyn FnMut() -> Result<ThemeSet>,
    ) -> Result<Arc<ThemeSet>> {
        self.memo_in(key, |i| &mut i.themes, |i| &mut i.building_themes, build)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaeu_core::{MapperConfig, ThemeConfig};
    use blaeu_store::{Column, Table, TableBuilder, TableView};

    fn table(rows: usize) -> Arc<Table> {
        let vals: Vec<f64> = (0..rows)
            .map(|i| {
                if i < rows / 2 {
                    i as f64
                } else {
                    1000.0 + i as f64
                }
            })
            .collect();
        Arc::new(
            TableBuilder::new("t")
                .column("x", Column::dense_f64(vals))
                .unwrap()
                .build()
                .unwrap(),
        )
    }

    fn map_key(t: &Arc<Table>, cols: &[&str]) -> MapKey {
        MapKey::new(
            &TableView::new(Arc::clone(t)),
            cols,
            &MapperConfig::default(),
        )
    }

    #[test]
    fn second_lookup_hits_and_shares_the_arc() {
        let cache = AnalysisCache::new(8);
        let t = table(60);
        let view = TableView::new(Arc::clone(&t));
        let mut build = || blaeu_core::build_map(&view, &["x"], &MapperConfig::default());
        let first = cache.memo_map(map_key(&t, &["x"]), &mut build).unwrap();
        let second = cache.memo_map(map_key(&t, &["x"]), &mut build).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "hit must share the built Arc");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = AnalysisCache::new(0);
        let t = table(60);
        let view = TableView::new(Arc::clone(&t));
        let mut build = || blaeu_core::build_map(&view, &["x"], &MapperConfig::default());
        let a = cache.memo_map(map_key(&t, &["x"]), &mut build).unwrap();
        let b = cache.memo_map(map_key(&t, &["x"]), &mut build).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().map_entries, 0);
    }

    #[test]
    fn lru_evicts_oldest_within_capacity() {
        let cache = AnalysisCache::new(2);
        let t = table(60);
        let view = TableView::new(Arc::clone(&t));
        let config = MapperConfig::default();
        let mut build = || blaeu_core::build_map(&view, &["x"], &config);
        // Three distinct keys (different seeds) against capacity 2.
        let keyed = |seed: u64| {
            let mut cfg = config.clone();
            cfg.seed = seed;
            MapKey::new(&TableView::new(Arc::clone(&t)), &["x"], &cfg)
        };
        cache.memo_map(keyed(1), &mut build).unwrap(); // miss
        cache.memo_map(keyed(2), &mut build).unwrap(); // miss
        cache.memo_map(keyed(1), &mut build).unwrap(); // hit — refreshes key 1
        cache.memo_map(keyed(3), &mut build).unwrap(); // miss — evicts LRU key 2
        assert_eq!(cache.stats().map_entries, 2);
        cache.memo_map(keyed(1), &mut build).unwrap(); // hit — key 1 survived
        cache.memo_map(keyed(2), &mut build).unwrap(); // miss — key 2 was evicted
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.map_entries, 2);
    }

    #[test]
    fn byte_budget_evicts_heavy_entries_count_cannot_see() {
        let t = table(120);
        let view = TableView::new(Arc::clone(&t));
        let config = MapperConfig::default();
        let mut build = || blaeu_core::build_map(&view, &["x"], &config);
        let keyed = |seed: u64| {
            let mut cfg = config.clone();
            cfg.seed = seed;
            MapKey::new(&TableView::new(Arc::clone(&t)), &["x"], &cfg)
        };
        // Learn one map's approximate weight, then budget for about two.
        let probe = AnalysisCache::new(8);
        probe.memo_map(keyed(1), &mut build).unwrap();
        let per_map = probe.stats().map_bytes;
        assert!(per_map > 0, "maps must weigh something");

        // Entry capacity 256 would happily hold all four; the byte
        // budget must not.
        let cache = AnalysisCache::with_byte_budget(256, per_map * 2);
        for seed in 1..=4 {
            cache.memo_map(keyed(seed), &mut build).unwrap();
        }
        let stats = cache.stats();
        assert!(
            stats.map_entries <= 2,
            "byte budget ignored: {stats:?} (per map ~{per_map}B)"
        );
        assert!(stats.map_bytes <= per_map * 2, "{stats:?}");
        // LRU order within the budget: the most recent key survived.
        let hits_before = cache.stats().hits;
        cache.memo_map(keyed(4), &mut build).unwrap();
        assert_eq!(cache.stats().hits, hits_before + 1, "newest key evicted");
    }

    #[test]
    fn zero_byte_budget_means_unlimited_bytes() {
        let t = table(120);
        let view = TableView::new(Arc::clone(&t));
        let config = MapperConfig::default();
        let mut build = || blaeu_core::build_map(&view, &["x"], &config);
        let keyed = |seed: u64| {
            let mut cfg = config.clone();
            cfg.seed = seed;
            MapKey::new(&TableView::new(Arc::clone(&t)), &["x"], &cfg)
        };
        let cache = AnalysisCache::with_byte_budget(8, 0);
        for seed in 1..=4 {
            cache.memo_map(keyed(seed), &mut build).unwrap();
        }
        assert_eq!(cache.stats().map_entries, 4, "0 = uncapped bytes");
    }

    #[test]
    fn entry_heavier_than_the_whole_budget_still_returns_its_arc() {
        let t = table(120);
        let view = TableView::new(Arc::clone(&t));
        let mut build = || blaeu_core::build_map(&view, &["x"], &MapperConfig::default());
        // A 1-byte budget cannot retain anything, but the miss must
        // still hand the caller the Arc it built (hit-identity semantics
        // are about what publish returns, not what survives).
        let cache = AnalysisCache::with_byte_budget(8, 1);
        let built = cache.memo_map(map_key(&t, &["x"]), &mut build).unwrap();
        assert!(built.n_regions() >= 1);
        let stats = cache.stats();
        assert_eq!(stats.map_entries, 0, "over-budget entry evicted");
        assert_eq!(stats.map_bytes, 0);
        // Next lookup is a clean miss that rebuilds — no wedged state.
        assert!(cache.memo_map(map_key(&t, &["x"]), &mut build).is_ok());
    }

    #[test]
    fn dead_tables_are_purged_before_live_entries() {
        let cache = AnalysisCache::new(2);
        let config = MapperConfig::default();
        let dying = table(60);
        let dying_view = TableView::new(Arc::clone(&dying));
        let mut build_dying = || blaeu_core::build_map(&dying_view, &["x"], &config);
        cache
            .memo_map(map_key(&dying, &["x"]), &mut build_dying)
            .unwrap();
        drop(dying_view);
        drop(dying); // the entry's table is now dead
        let alive = table(80);
        let alive_view = TableView::new(Arc::clone(&alive));
        let mut build_alive = || blaeu_core::build_map(&alive_view, &["x"], &config);
        let keyed = |seed: u64| {
            let mut cfg = config.clone();
            cfg.seed = seed;
            MapKey::new(&TableView::new(Arc::clone(&alive)), &["x"], &cfg)
        };
        cache.memo_map(keyed(1), &mut build_alive).unwrap();
        cache.memo_map(keyed(2), &mut build_alive).unwrap(); // over capacity: purge dead first
        assert_eq!(
            cache.stats().map_entries,
            2,
            "dead entry evicted, live kept"
        );
        let before_hits = cache.stats().hits;
        cache.memo_map(keyed(1), &mut build_alive).unwrap();
        cache.memo_map(keyed(2), &mut build_alive).unwrap();
        assert_eq!(cache.stats().hits, before_hits + 2, "live entries survived");
    }

    #[test]
    fn concurrent_misses_on_one_key_coalesce_into_one_build() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Barrier;

        let cache = Arc::new(AnalysisCache::new(8));
        let t = table(60);
        let builds = AtomicUsize::new(0);
        let gate = Barrier::new(4);
        let results: Vec<Arc<DataMap>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let t = Arc::clone(&t);
                    let builds = &builds;
                    let gate = &gate;
                    scope.spawn(move || {
                        let view = TableView::new(Arc::clone(&t));
                        gate.wait(); // all four probe the cold key together
                        cache
                            .memo_map(map_key(&t, &["x"]), &mut || {
                                builds.fetch_add(1, Ordering::SeqCst);
                                // Widen the race window: racers must park,
                                // not re-build.
                                std::thread::sleep(std::time::Duration::from_millis(50));
                                blaeu_core::build_map(&view, &["x"], &MapperConfig::default())
                            })
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            builds.load(Ordering::SeqCst),
            1,
            "thundering herd must coalesce into one build"
        );
        for r in &results[1..] {
            assert!(Arc::ptr_eq(&results[0], r));
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (3, 1));
    }

    #[test]
    fn failed_build_releases_the_inflight_marker() {
        let cache = AnalysisCache::new(8);
        let t = table(60);
        let view = TableView::new(Arc::clone(&t));
        let mut failing = || Err(blaeu_core::BlaeuError::Invalid("injected".into()));
        assert!(cache.memo_map(map_key(&t, &["x"]), &mut failing).is_err());
        // The key must be buildable again — a stuck marker would park
        // this second attempt forever.
        let mut build = || blaeu_core::build_map(&view, &["x"], &MapperConfig::default());
        assert!(cache.memo_map(map_key(&t, &["x"]), &mut build).is_ok());
    }

    #[test]
    fn clear_empties_both_shelves() {
        let cache = AnalysisCache::new(8);
        let t = table(60);
        let view = TableView::new(Arc::clone(&t));
        let mut build_map_fn = || blaeu_core::build_map(&view, &["x"], &MapperConfig::default());
        cache
            .memo_map(map_key(&t, &["x"]), &mut build_map_fn)
            .unwrap();
        let themes_key = ThemesKey::new(&view, &ThemeConfig::default());
        // A one-column table cannot host theme detection; fake it with a
        // failing build to show errors pass through uncached.
        let mut failing = || blaeu_core::detect_themes(&view, &ThemeConfig::default());
        assert!(cache.memo_themes(themes_key, &mut failing).is_err());
        assert_eq!(cache.stats().map_entries, 1);
        assert_eq!(cache.stats().theme_entries, 0, "errors are never cached");
        cache.clear();
        assert_eq!(cache.stats().map_entries, 0);
    }
}
