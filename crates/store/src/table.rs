//! Tables: a schema plus equally long columns.

use crate::column::Column;
use crate::error::{Result, StoreError};
use crate::schema::{ColumnRole, Field, Schema};
use crate::value::Value;

#[cfg(test)]
use crate::value::DataType;

/// An immutable in-memory table.
///
/// All columns have exactly `nrows` rows. Tables are cheap to gather from
/// (`take`) and project (`project`); mutation happens through
/// [`TableBuilder`].
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    nrows: usize,
}

impl Table {
    /// Assembles a table from a schema and matching columns.
    ///
    /// # Errors
    /// Returns [`StoreError::LengthMismatch`] when column lengths disagree or
    /// [`StoreError::InvalidArgument`] when the column count does not match
    /// the schema.
    pub fn new(name: impl Into<String>, schema: Schema, columns: Vec<Column>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(StoreError::InvalidArgument(format!(
                "schema has {} fields but {} columns were provided",
                schema.len(),
                columns.len()
            )));
        }
        let nrows = columns.first().map_or(0, Column::len);
        for (field, col) in schema.fields().iter().zip(&columns) {
            if col.len() != nrows {
                return Err(StoreError::LengthMismatch {
                    expected: nrows,
                    found: col.len(),
                    column: field.name.clone(),
                });
            }
            if col.data_type() != field.dtype {
                return Err(StoreError::TypeMismatch {
                    column: field.name.clone(),
                    expected: field.dtype.name(),
                    found: col.data_type().name(),
                });
            }
        }
        Ok(Table {
            name: name.into(),
            schema,
            columns,
            nrows,
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.columns.len()
    }

    /// Column at position `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column named `name`.
    ///
    /// # Errors
    /// Returns [`StoreError::ColumnNotFound`] when absent.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| StoreError::ColumnNotFound(name.to_owned()))?;
        Ok(&self.columns[idx])
    }

    /// Cell at (`row`, column `name`).
    ///
    /// # Errors
    /// Returns an error for unknown columns or out-of-bounds rows.
    pub fn value(&self, row: usize, name: &str) -> Result<Value> {
        if row >= self.nrows {
            return Err(StoreError::RowOutOfBounds {
                index: row,
                nrows: self.nrows,
            });
        }
        Ok(self.column_by_name(name)?.get(row))
    }

    /// Materializes row `row` as values in schema order.
    ///
    /// # Errors
    /// Returns [`StoreError::RowOutOfBounds`] for bad indices.
    pub fn row(&self, row: usize) -> Result<Vec<Value>> {
        if row >= self.nrows {
            return Err(StoreError::RowOutOfBounds {
                index: row,
                nrows: self.nrows,
            });
        }
        Ok(self.columns.iter().map(|c| c.get(row)).collect())
    }

    /// Gathers the rows at `indices` (in the given order) into a new table.
    ///
    /// # Errors
    /// Returns [`StoreError::RowOutOfBounds`] when an index exceeds `nrows`.
    pub fn take(&self, indices: &[u32]) -> Result<Table> {
        if let Some(&bad) = indices.iter().find(|&&i| (i as usize) >= self.nrows) {
            return Err(StoreError::RowOutOfBounds {
                index: bad as usize,
                nrows: self.nrows,
            });
        }
        let columns = self.columns.iter().map(|c| c.take(indices)).collect();
        Ok(Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns,
            nrows: indices.len(),
        })
    }

    /// Keeps only the named columns, in the given order.
    ///
    /// # Errors
    /// Returns [`StoreError::ColumnNotFound`] for unknown names.
    pub fn project(&self, names: &[&str]) -> Result<Table> {
        let schema = self.schema.project(names)?;
        let mut columns = Vec::with_capacity(names.len());
        for &name in names {
            let idx = self.schema.index_of(name).expect("validated by project");
            columns.push(self.columns[idx].clone());
        }
        Ok(Table {
            name: self.name.clone(),
            schema,
            columns,
            nrows: self.nrows,
        })
    }

    /// First `n` rows (or fewer), useful for previews.
    pub fn head(&self, n: usize) -> Table {
        let m = n.min(self.nrows) as u32;
        let idx: Vec<u32> = (0..m).collect();
        self.take(&idx).expect("indices in bounds")
    }

    /// Names of columns whose role is [`ColumnRole::Attribute`].
    pub fn attribute_columns(&self) -> Vec<&str> {
        self.schema
            .fields()
            .iter()
            .filter(|f| f.role == ColumnRole::Attribute)
            .map(|f| f.name.as_str())
            .collect()
    }

    /// Names of numeric attribute columns.
    pub fn numeric_columns(&self) -> Vec<&str> {
        self.schema
            .fields()
            .iter()
            .filter(|f| f.dtype.is_numeric() && f.role == ColumnRole::Attribute)
            .map(|f| f.name.as_str())
            .collect()
    }
}

/// Incremental table construction, column by column.
#[derive(Debug, Default)]
pub struct TableBuilder {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
}

impl TableBuilder {
    /// Starts a builder for a table called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        TableBuilder {
            name: name.into(),
            schema: Schema::empty(),
            columns: Vec::new(),
        }
    }

    /// Appends a column with role [`ColumnRole::Attribute`].
    ///
    /// # Errors
    /// Propagates duplicate-name and length-mismatch errors.
    pub fn column(self, name: impl Into<String>, col: Column) -> Result<Self> {
        self.column_with_role(name, col, ColumnRole::Attribute)
    }

    /// Appends a column with an explicit role.
    ///
    /// # Errors
    /// Propagates duplicate-name and length-mismatch errors.
    pub fn column_with_role(
        mut self,
        name: impl Into<String>,
        col: Column,
        role: ColumnRole,
    ) -> Result<Self> {
        let name = name.into();
        if let Some(first) = self.columns.first() {
            if first.len() != col.len() {
                return Err(StoreError::LengthMismatch {
                    expected: first.len(),
                    found: col.len(),
                    column: name,
                });
            }
        }
        self.schema
            .push(Field::with_role(name, col.data_type(), role))?;
        self.columns.push(col);
        Ok(self)
    }

    /// Finishes construction.
    ///
    /// # Errors
    /// Propagates [`Table::new`] validation errors.
    pub fn build(self) -> Result<Table> {
        Table::new(self.name, self.schema, self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        TableBuilder::new("people")
            .unwrap_chain(|b| {
                b.column_with_role("id", Column::dense_i64(vec![1, 2, 3, 4]), ColumnRole::Key)
            })
            .unwrap_chain(|b| {
                b.column(
                    "age",
                    Column::from_f64s([Some(30.0), Some(41.0), None, Some(25.0)]),
                )
            })
            .unwrap_chain(|b| {
                b.column(
                    "city",
                    Column::from_strs([Some("ams"), Some("nyc"), Some("ams"), None]),
                )
            })
            .build()
            .unwrap()
    }

    // Small helper so the fixture above reads linearly.
    trait UnwrapChain: Sized {
        fn unwrap_chain(self, f: impl FnOnce(Self) -> Result<Self>) -> Self;
    }
    impl UnwrapChain for TableBuilder {
        fn unwrap_chain(self, f: impl FnOnce(Self) -> Result<Self>) -> Self {
            f(self).unwrap()
        }
    }

    #[test]
    fn dimensions_and_lookup() {
        let t = people();
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.ncols(), 3);
        assert_eq!(t.value(0, "age").unwrap(), Value::Float(30.0));
        assert_eq!(t.value(2, "age").unwrap(), Value::Null);
        assert!(t.value(9, "age").is_err());
        assert!(t.column_by_name("nope").is_err());
    }

    #[test]
    fn row_materialization() {
        let t = people();
        let row = t.row(1).unwrap();
        assert_eq!(
            row,
            vec![Value::Int(2), Value::Float(41.0), Value::Str("nyc".into())]
        );
        assert!(t.row(4).is_err());
    }

    #[test]
    fn take_reorders_rows() {
        let t = people();
        let sub = t.take(&[2, 0]).unwrap();
        assert_eq!(sub.nrows(), 2);
        assert_eq!(sub.value(0, "id").unwrap(), Value::Int(3));
        assert_eq!(sub.value(1, "id").unwrap(), Value::Int(1));
        assert!(t.take(&[4]).is_err());
    }

    #[test]
    fn project_selects_columns() {
        let t = people();
        let p = t.project(&["city", "id"]).unwrap();
        assert_eq!(p.ncols(), 2);
        assert_eq!(p.schema().names(), vec!["city", "id"]);
        assert_eq!(p.nrows(), 4);
        assert!(t.project(&["ghost"]).is_err());
    }

    #[test]
    fn head_truncates() {
        let t = people();
        assert_eq!(t.head(2).nrows(), 2);
        assert_eq!(t.head(100).nrows(), 4);
    }

    #[test]
    fn builder_rejects_mismatched_lengths() {
        let res = TableBuilder::new("bad")
            .column("a", Column::dense_i64(vec![1, 2]))
            .unwrap()
            .column("b", Column::dense_i64(vec![1]));
        assert!(matches!(res, Err(StoreError::LengthMismatch { .. })));
    }

    #[test]
    fn builder_rejects_duplicate_names() {
        let res = TableBuilder::new("bad")
            .column("a", Column::dense_i64(vec![1]))
            .unwrap()
            .column("a", Column::dense_i64(vec![2]));
        assert!(matches!(res, Err(StoreError::DuplicateColumn(_))));
    }

    #[test]
    fn new_validates_schema_column_agreement() {
        let schema = Schema::new(vec![Field::new("a", DataType::Float64)]).unwrap();
        let res = Table::new("t", schema, vec![Column::dense_i64(vec![1])]);
        assert!(matches!(res, Err(StoreError::TypeMismatch { .. })));
    }

    #[test]
    fn role_filters() {
        let t = people();
        assert_eq!(t.attribute_columns(), vec!["age", "city"]);
        assert_eq!(t.numeric_columns(), vec!["age"]);
    }

    #[test]
    fn empty_table() {
        let t = TableBuilder::new("empty").build().unwrap();
        assert_eq!(t.nrows(), 0);
        assert_eq!(t.ncols(), 0);
    }
}
