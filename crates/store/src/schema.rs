//! Table schemas: named, typed, role-annotated fields.

use crate::error::{Result, StoreError};
use crate::value::DataType;

/// Semantic role of a column, used by Blaeu's preprocessing.
///
/// Primary keys are excluded from clustering (they would dominate any
/// distance); labels (like a country name) are kept for *highlight* but not
/// clustered; measures and dimensions participate in maps and themes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnRole {
    /// Unique identifier; removed by preprocessing.
    Key,
    /// Human-readable identifier (e.g. country name); shown on highlight.
    Label,
    /// Analyzable attribute (default).
    Attribute,
}

/// A named, typed field with a semantic role.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name, unique within a schema.
    pub name: String,
    /// Logical type.
    pub dtype: DataType,
    /// Semantic role.
    pub role: ColumnRole,
}

impl Field {
    /// Creates an attribute field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
            role: ColumnRole::Attribute,
        }
    }

    /// Creates a field with an explicit role.
    pub fn with_role(name: impl Into<String>, dtype: DataType, role: ColumnRole) -> Self {
        Field {
            name: name.into(),
            dtype,
            role,
        }
    }
}

/// An ordered collection of uniquely named fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from fields.
    ///
    /// # Errors
    /// Returns [`StoreError::DuplicateColumn`] when two fields share a name.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        let mut seen = std::collections::HashSet::new();
        for f in &fields {
            if !seen.insert(f.name.as_str()) {
                return Err(StoreError::DuplicateColumn(f.name.clone()));
            }
        }
        Ok(Schema { fields })
    }

    /// Empty schema.
    pub fn empty() -> Self {
        Schema { fields: Vec::new() }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field at position `idx`.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Position of the field named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Field named `name`, as an error-carrying lookup.
    ///
    /// # Errors
    /// Returns [`StoreError::ColumnNotFound`] when absent.
    pub fn field_by_name(&self, name: &str) -> Result<&Field> {
        self.fields
            .iter()
            .find(|f| f.name == name)
            .ok_or_else(|| StoreError::ColumnNotFound(name.to_owned()))
    }

    /// Names of all fields in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Appends a field.
    ///
    /// # Errors
    /// Returns [`StoreError::DuplicateColumn`] when the name already exists.
    pub fn push(&mut self, field: Field) -> Result<()> {
        if self.index_of(&field.name).is_some() {
            return Err(StoreError::DuplicateColumn(field.name));
        }
        self.fields.push(field);
        Ok(())
    }

    /// Sub-schema with only the named fields, in the given order.
    ///
    /// # Errors
    /// Returns [`StoreError::ColumnNotFound`] for unknown names.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(names.len());
        for &name in names {
            fields.push(self.field_by_name(name)?.clone());
        }
        Schema::new(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::with_role("id", DataType::Int64, ColumnRole::Key),
            Field::new("salary", DataType::Float64),
            Field::with_role("country", DataType::Categorical, ColumnRole::Label),
        ])
        .unwrap()
    }

    #[test]
    fn schema_lookup() {
        let s = sample();
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("salary"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.field_by_name("country").unwrap().role, ColumnRole::Label);
        assert!(matches!(
            s.field_by_name("nope"),
            Err(StoreError::ColumnNotFound(_))
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("a", DataType::Float64),
        ]);
        assert!(matches!(err, Err(StoreError::DuplicateColumn(_))));
    }

    #[test]
    fn push_rejects_duplicates() {
        let mut s = sample();
        assert!(s.push(Field::new("salary", DataType::Int64)).is_err());
        assert!(s.push(Field::new("age", DataType::Int64)).is_ok());
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn project_selects_and_reorders() {
        let s = sample();
        let p = s.project(&["country", "salary"]).unwrap();
        assert_eq!(p.names(), vec!["country", "salary"]);
        assert!(s.project(&["missing"]).is_err());
    }

    #[test]
    fn names_in_order() {
        assert_eq!(sample().names(), vec!["id", "salary", "country"]);
    }
}
