//! # blaeu-store — columnar storage substrate
//!
//! The storage engine under the Blaeu exploration system: an in-memory
//! columnar table store in the MonetDB tradition (the paper's DBMS tier),
//! with CSV ingestion, Select-Project query execution, seeded sampling
//! (including the multi-scale sampler behind Blaeu's interactive latency)
//! and seeded synthetic generators reproducing the demo's three datasets.
//!
//! ```
//! use blaeu_store::{Column, Predicate, SelectProject, TableBuilder};
//!
//! let table = TableBuilder::new("countries")
//!     .column("income", Column::dense_f64(vec![25.0, 35.0, 18.0]))
//!     .unwrap()
//!     .column("hours", Column::dense_f64(vec![8.0, 9.0, 25.0]))
//!     .unwrap()
//!     .build()
//!     .unwrap();
//!
//! let query = SelectProject::filtered(Predicate::lt("hours", 20.0));
//! let relaxed = query.execute(&table).unwrap();
//! assert_eq!(relaxed.nrows(), 2);
//! assert_eq!(query.to_sql("countries"),
//!            "SELECT * FROM \"countries\" WHERE \"hours\" < 20;");
//! ```

#![warn(missing_docs)]

pub mod bitmap;
pub mod column;
pub mod csv;
pub mod error;
pub mod generate;
pub mod predicate;
pub mod query;
pub mod sample;
pub mod schema;
pub mod snapshot;
pub mod table;
pub mod value;
pub mod view;

pub use bitmap::Bitmap;
pub use column::{Column, ColumnRead};
pub use csv::{
    read_csv, read_csv_file, read_csv_str, write_csv, write_csv_string, write_csv_view, CsvOptions,
};
pub use error::{Result, StoreError};
pub use predicate::{Bound, Predicate};
pub use query::SelectProject;
pub use sample::{
    bernoulli_sample, prefix_sample, rng_from_seed, sample_table, uniform_sample,
    MultiScaleSampler, StoreRng,
};
pub use schema::{ColumnRole, Field, Schema};
pub use snapshot::{checksum64, read_snapshot_bytes, write_snapshot_bytes};
pub use table::{Table, TableBuilder};
pub use value::{DataType, Value};
pub use view::{ColumnView, TableView};
