//! Zero-copy table views: a shared table plus a row selection.
//!
//! Blaeu's core interaction is recursive navigation — every zoom narrows
//! the current selection and re-clusters it. Materializing a sub-table per
//! zoom (`Table::take`) copies every column payload; a [`TableView`]
//! replaces that with an `Arc<Table>` plus a row-index vector (kept in
//! caller order, duplicates allowed — like `take`), so narrowing a
//! selection is pure index arithmetic and the column payloads are shared
//! by every view, every zoom level, and every session.
//!
//! The analysis pipeline consumes views, never owned tables:
//! [`ColumnView`] provides the typed per-row accessors (`numeric_at`,
//! `code_at`, dictionary/validity views) the preprocessing, statistics and
//! CART layers read through, via the [`ColumnRead`] trait they share with
//! owned [`Column`]s. Gathering survives only at the edges of the system
//! ([`TableView::gather`] for the sampled example rows shown to a user).

use std::sync::Arc;

use crate::bitmap::Bitmap;
use crate::column::{Column, ColumnRead};
use crate::error::{Result, StoreError};
use crate::predicate::Predicate;
use crate::schema::{ColumnRole, Schema};
use crate::table::Table;
use crate::value::{DataType, Value};

/// A read-only view over a shared [`Table`]: the table plus an optional
/// row selection (`None` = all rows, in order).
///
/// Views are cheap to clone (two `Arc` bumps) and cheap to compose:
/// [`TableView::select`] re-maps indices without touching column data.
/// Row indices are view-relative everywhere; [`TableView::base_row`]
/// translates to physical rows of the underlying table.
#[derive(Debug, Clone)]
pub struct TableView {
    table: Arc<Table>,
    rows: Option<Arc<Vec<u32>>>,
}

impl TableView {
    /// Identity view over a shared table (all rows).
    pub fn new(table: Arc<Table>) -> Self {
        TableView { table, rows: None }
    }

    /// View over an explicit base-row selection.
    ///
    /// # Errors
    /// Returns [`StoreError::RowOutOfBounds`] when an index exceeds the
    /// table's row count.
    pub fn with_rows(table: Arc<Table>, rows: Vec<u32>) -> Result<Self> {
        if let Some(&bad) = rows.iter().find(|&&i| (i as usize) >= table.nrows()) {
            return Err(StoreError::RowOutOfBounds {
                index: bad as usize,
                nrows: table.nrows(),
            });
        }
        Ok(TableView {
            table,
            rows: Some(Arc::new(rows)),
        })
    }

    /// The underlying shared table.
    pub fn table(&self) -> &Arc<Table> {
        &self.table
    }

    /// Table name.
    pub fn name(&self) -> &str {
        self.table.name()
    }

    /// The schema (shared with the underlying table — views never project).
    pub fn schema(&self) -> &Schema {
        self.table.schema()
    }

    /// Number of rows in the view.
    pub fn nrows(&self) -> usize {
        match &self.rows {
            Some(rows) => rows.len(),
            None => self.table.nrows(),
        }
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.table.ncols()
    }

    /// True when the view covers every row of the table in order.
    pub fn is_identity(&self) -> bool {
        self.rows.is_none()
    }

    /// The base-row selection, when one is set (`None` = identity).
    pub fn base_rows(&self) -> Option<&[u32]> {
        self.rows.as_ref().map(|r| r.as_slice())
    }

    /// The shared base-row selection handle (`None` = identity view).
    ///
    /// Two views with `Arc::ptr_eq` selections provably cover the same
    /// rows without comparing contents — the cheap path for cache keys
    /// fingerprinting a view (see `blaeu-core`'s analysis memoization).
    pub fn rows_shared(&self) -> Option<Arc<Vec<u32>>> {
        self.rows.clone()
    }

    /// Physical row of the underlying table behind view row `row`.
    ///
    /// # Panics
    /// Panics if `row >= nrows()`.
    #[inline]
    pub fn base_row(&self, row: usize) -> u32 {
        match &self.rows {
            Some(rows) => rows[row],
            None => row as u32,
        }
    }

    /// Column view at position `idx`.
    pub fn col(&self, idx: usize) -> ColumnView<'_> {
        ColumnView {
            column: self.table.column(idx),
            rows: self.rows.as_ref().map(|r| r.as_slice()),
        }
    }

    /// Column view named `name`.
    ///
    /// # Errors
    /// Returns [`StoreError::ColumnNotFound`] when absent.
    pub fn col_by_name(&self, name: &str) -> Result<ColumnView<'_>> {
        Ok(ColumnView {
            column: self.table.column_by_name(name)?,
            rows: self.rows.as_ref().map(|r| r.as_slice()),
        })
    }

    /// Cell at (`row`, column `name`).
    ///
    /// # Errors
    /// Returns an error for unknown columns or out-of-bounds rows.
    pub fn value(&self, row: usize, name: &str) -> Result<Value> {
        if row >= self.nrows() {
            return Err(StoreError::RowOutOfBounds {
                index: row,
                nrows: self.nrows(),
            });
        }
        self.table.value(self.base_row(row) as usize, name)
    }

    /// Materializes view row `row` as values in schema order.
    ///
    /// # Errors
    /// Returns [`StoreError::RowOutOfBounds`] for bad indices.
    pub fn row(&self, row: usize) -> Result<Vec<Value>> {
        if row >= self.nrows() {
            return Err(StoreError::RowOutOfBounds {
                index: row,
                nrows: self.nrows(),
            });
        }
        self.table.row(self.base_row(row) as usize)
    }

    /// Narrows the view to the given **view-relative** rows (in the given
    /// order) without touching column data: the selection is re-mapped
    /// through the existing one.
    ///
    /// # Errors
    /// Returns [`StoreError::RowOutOfBounds`] when an index exceeds
    /// `nrows()`.
    pub fn select(&self, rows: &[u32]) -> Result<TableView> {
        let n = self.nrows();
        if let Some(&bad) = rows.iter().find(|&&i| (i as usize) >= n) {
            return Err(StoreError::RowOutOfBounds {
                index: bad as usize,
                nrows: n,
            });
        }
        let mapped: Vec<u32> = rows.iter().map(|&i| self.base_row(i as usize)).collect();
        Ok(TableView {
            table: Arc::clone(&self.table),
            rows: Some(Arc::new(mapped)),
        })
    }

    /// Narrows the view to the rows whose bit is set in `mask` (one bit
    /// per view row, ascending).
    ///
    /// # Errors
    /// Returns [`StoreError::LengthMismatch`] when the mask length differs
    /// from `nrows()`.
    pub fn retain(&self, mask: &Bitmap) -> Result<TableView> {
        if mask.len() != self.nrows() {
            return Err(StoreError::LengthMismatch {
                expected: self.nrows(),
                found: mask.len(),
                column: "<selection mask>".to_owned(),
            });
        }
        let mapped: Vec<u32> = mask.iter_ones().map(|i| self.base_row(i)).collect();
        Ok(TableView {
            table: Arc::clone(&self.table),
            rows: Some(Arc::new(mapped)),
        })
    }

    /// Narrows the view to the rows satisfying `predicate` — the
    /// view-aware predicate path: a selection is emitted and composed,
    /// no sub-table is materialized.
    ///
    /// # Errors
    /// Propagates predicate evaluation errors.
    pub fn filter(&self, predicate: &Predicate) -> Result<TableView> {
        self.retain(&predicate.eval_view(self)?)
    }

    /// Gathers the given **view-relative** rows into an owned [`Table`].
    ///
    /// This is the one deliberate materialization point left on the
    /// navigation path: the sampled example tuples shown to the user (and
    /// exports leaving the tool). Analysis code never calls it.
    ///
    /// # Errors
    /// Returns [`StoreError::RowOutOfBounds`] when an index exceeds
    /// `nrows()`.
    pub fn gather(&self, rows: &[u32]) -> Result<Table> {
        let n = self.nrows();
        if let Some(&bad) = rows.iter().find(|&&i| (i as usize) >= n) {
            return Err(StoreError::RowOutOfBounds {
                index: bad as usize,
                nrows: n,
            });
        }
        let base: Vec<u32> = rows.iter().map(|&i| self.base_row(i as usize)).collect();
        self.table.take(&base)
    }

    /// Materializes the whole view as an owned [`Table`] (export path).
    ///
    /// # Errors
    /// Propagates gather errors (none in practice: indices are in bounds).
    pub fn to_table(&self) -> Result<Table> {
        let rows: Vec<u32> = (0..self.nrows() as u32).collect();
        self.gather(&rows)
    }

    /// Names of columns whose role is [`ColumnRole::Attribute`].
    pub fn attribute_columns(&self) -> Vec<&str> {
        self.table.attribute_columns()
    }

    /// Names of numeric attribute columns.
    pub fn numeric_columns(&self) -> Vec<&str> {
        self.table.numeric_columns()
    }

    /// Names of columns whose role is [`ColumnRole::Label`].
    pub fn label_columns(&self) -> Vec<&str> {
        self.schema()
            .fields()
            .iter()
            .filter(|f| f.role == ColumnRole::Label)
            .map(|f| f.name.as_str())
            .collect()
    }
}

impl From<Table> for TableView {
    fn from(table: Table) -> Self {
        TableView::new(Arc::new(table))
    }
}

impl From<Arc<Table>> for TableView {
    fn from(table: Arc<Table>) -> Self {
        TableView::new(table)
    }
}

/// A zero-copy view of one column under a row selection.
///
/// All row indices are view-relative; accessors map through the selection
/// and read the shared column payload in place.
#[derive(Debug, Clone, Copy)]
pub struct ColumnView<'a> {
    column: &'a Column,
    rows: Option<&'a [u32]>,
}

impl<'a> ColumnView<'a> {
    /// View over every row of a column, in order.
    pub fn whole(column: &'a Column) -> Self {
        ColumnView { column, rows: None }
    }

    /// View over an explicit row selection (base-row indices).
    ///
    /// # Panics
    /// Accessors panic later if an index is out of bounds; callers are
    /// expected to pass validated selections ([`TableView`] does).
    pub fn with_rows(column: &'a Column, rows: &'a [u32]) -> Self {
        ColumnView {
            column,
            rows: Some(rows),
        }
    }

    /// The underlying column.
    pub fn column(&self) -> &'a Column {
        self.column
    }

    /// Physical row behind view row `row`.
    #[inline]
    pub fn base_row(&self, row: usize) -> usize {
        match self.rows {
            Some(rows) => rows[row] as usize,
            None => row,
        }
    }

    /// Number of rows in the view.
    pub fn len(&self) -> usize {
        match self.rows {
            Some(rows) => rows.len(),
            None => self.column.len(),
        }
    }

    /// True when the view covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical type of the column.
    pub fn data_type(&self) -> DataType {
        self.column.data_type()
    }

    /// Cell value at view row `row`.
    pub fn get(&self, row: usize) -> Value {
        self.column.get(self.base_row(row))
    }

    /// Numeric view of the cell at view row `row` (see
    /// [`Column::numeric_at`]).
    #[inline]
    pub fn numeric_at(&self, row: usize) -> Option<f64> {
        self.column.numeric_at(self.base_row(row))
    }

    /// Float payload at view row `row`, when this is a float column and
    /// the cell is non-NULL.
    #[inline]
    pub fn f64_at(&self, row: usize) -> Option<f64> {
        match self.column {
            Column::Float64 { data, validity } => {
                let i = self.base_row(row);
                validity.get(i).then(|| data[i])
            }
            _ => None,
        }
    }

    /// Integer payload at view row `row`, when this is an int column and
    /// the cell is non-NULL.
    #[inline]
    pub fn i64_at(&self, row: usize) -> Option<i64> {
        match self.column {
            Column::Int64 { data, validity } => {
                let i = self.base_row(row);
                validity.get(i).then(|| data[i])
            }
            _ => None,
        }
    }

    /// Dictionary code at view row `row` for categorical columns.
    #[inline]
    pub fn code_at(&self, row: usize) -> Option<u32> {
        self.column.code_at(self.base_row(row))
    }

    /// True when the cell at view row `row` is non-NULL.
    #[inline]
    pub fn is_valid(&self, row: usize) -> bool {
        self.column.validity().get(self.base_row(row))
    }

    /// Dictionary of a categorical column (empty for other types). The
    /// dictionary is shared by every view of the column.
    pub fn dictionary(&self) -> &'a [String] {
        self.column.dictionary()
    }

    /// The underlying validity bitmap, available only when this view
    /// covers every row in order (`None` under a selection) — whole-table
    /// consumers use it to keep word-wise bitmap operations.
    pub fn whole_validity(&self) -> Option<&'a Bitmap> {
        match self.rows {
            None => Some(self.column.validity()),
            Some(_) => None,
        }
    }

    /// The row selection this view maps through (`None` = identity).
    pub fn rows(&self) -> Option<&'a [u32]> {
        self.rows
    }

    /// Number of NULL rows inside the view.
    ///
    /// The mapped path counts set validity bits word-at-a-time through
    /// [`Bitmap::count_ones_at`] instead of probing `get` per row.
    pub fn null_count(&self) -> usize {
        match self.rows {
            None => self.column.null_count(),
            Some(rows) => rows.len() - self.column.validity().count_ones_at(rows),
        }
    }

    /// Number of distinct non-NULL values inside the view (same
    /// semantics as [`Column::distinct_count`]: floats by bit pattern,
    /// categoricals by code).
    ///
    /// The mapped path reads validity through a word-caching probe, so
    /// runs of selected rows in the same bitmap word pay one word load
    /// instead of a bounds-checked `get` each.
    pub fn distinct_count(&self) -> usize {
        match self.rows {
            None => self.column.distinct_count(),
            Some(rows) => {
                let mut valid = WordProbe::new(self.column.validity());
                match self.column {
                    Column::Float64 { data, .. } => {
                        let mut set = std::collections::HashSet::new();
                        for &i in rows {
                            let i = i as usize;
                            if valid.get(i) {
                                set.insert(data[i].to_bits());
                            }
                        }
                        set.len()
                    }
                    Column::Int64 { data, .. } => {
                        let mut set = std::collections::HashSet::new();
                        for &i in rows {
                            let i = i as usize;
                            if valid.get(i) {
                                set.insert(data[i]);
                            }
                        }
                        set.len()
                    }
                    Column::Categorical { codes, .. } => {
                        let mut set = std::collections::HashSet::new();
                        for &i in rows {
                            let i = i as usize;
                            if valid.get(i) {
                                set.insert(codes[i]);
                            }
                        }
                        set.len()
                    }
                    Column::Bool { data, .. } => {
                        let mut values = WordProbe::new(data);
                        let mut seen_true = false;
                        let mut seen_false = false;
                        for &i in rows {
                            let i = i as usize;
                            if valid.get(i) {
                                if values.get(i) {
                                    seen_true = true;
                                } else {
                                    seen_false = true;
                                }
                            }
                        }
                        usize::from(seen_true) + usize::from(seen_false)
                    }
                }
            }
        }
    }
}

/// Word-caching bitmap reader for mapped selections: consecutive probes
/// that land in the same backing word reuse the loaded word instead of
/// paying a bounds-checked [`Bitmap::get`] each time. Selection vectors
/// are usually sorted runs, so the cache hits almost always.
struct WordProbe<'a> {
    words: &'a [u64],
    len: usize,
    cached_idx: usize,
    cached_word: u64,
}

impl<'a> WordProbe<'a> {
    fn new(bitmap: &'a Bitmap) -> Self {
        WordProbe {
            words: bitmap.words(),
            len: bitmap.len(),
            cached_idx: usize::MAX,
            cached_word: 0,
        }
    }

    #[inline]
    fn get(&mut self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of bounds ({})",
            self.len
        );
        let w = index / 64;
        if w != self.cached_idx {
            self.cached_idx = w;
            self.cached_word = self.words[w];
        }
        (self.cached_word >> (index % 64)) & 1 == 1
    }
}

impl ColumnRead for ColumnView<'_> {
    fn len(&self) -> usize {
        ColumnView::len(self)
    }

    fn data_type(&self) -> DataType {
        ColumnView::data_type(self)
    }

    fn get(&self, row: usize) -> Value {
        ColumnView::get(self, row)
    }

    fn numeric_at(&self, row: usize) -> Option<f64> {
        ColumnView::numeric_at(self, row)
    }

    fn code_at(&self, row: usize) -> Option<u32> {
        ColumnView::code_at(self, row)
    }

    fn is_valid(&self, row: usize) -> bool {
        ColumnView::is_valid(self, row)
    }

    fn dictionary(&self) -> &[String] {
        ColumnView::dictionary(self)
    }

    fn null_count(&self) -> usize {
        ColumnView::null_count(self)
    }

    fn distinct_count(&self) -> usize {
        ColumnView::distinct_count(self)
    }

    fn code_parts(&self) -> Option<(&[u32], &Bitmap)> {
        match (self.rows, self.column) {
            (
                None,
                Column::Categorical {
                    codes, validity, ..
                },
            ) => Some((codes, validity)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn base() -> Arc<Table> {
        Arc::new(
            TableBuilder::new("t")
                .column(
                    "x",
                    Column::from_f64s([Some(1.0), Some(2.0), None, Some(4.0), Some(5.0)]),
                )
                .unwrap()
                .column(
                    "cat",
                    Column::from_strs([Some("a"), Some("b"), Some("a"), None, Some("c")]),
                )
                .unwrap()
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn identity_view_mirrors_table() {
        let t = base();
        let v = TableView::new(Arc::clone(&t));
        assert!(v.is_identity());
        assert_eq!(v.nrows(), 5);
        assert_eq!(v.ncols(), 2);
        assert_eq!(v.value(1, "x").unwrap(), Value::Float(2.0));
        assert_eq!(v.row(2).unwrap(), t.row(2).unwrap());
        let c = v.col_by_name("x").unwrap();
        assert_eq!(c.len(), 5);
        assert_eq!(c.numeric_at(3), Some(4.0));
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.distinct_count(), 4);
    }

    #[test]
    fn with_rows_validates_bounds() {
        let t = base();
        assert!(TableView::with_rows(Arc::clone(&t), vec![0, 9]).is_err());
        let v = TableView::with_rows(t, vec![4, 0, 2]).unwrap();
        assert_eq!(v.nrows(), 3);
        assert_eq!(v.base_row(0), 4);
        assert_eq!(v.value(0, "x").unwrap(), Value::Float(5.0));
        assert_eq!(v.value(2, "x").unwrap(), Value::Null);
    }

    #[test]
    fn select_composes_without_copying_payloads() {
        let t = base();
        let v = TableView::new(Arc::clone(&t));
        let first = v.select(&[1, 2, 4]).unwrap(); // base rows 1, 2, 4
        let second = first.select(&[2, 0]).unwrap(); // base rows 4, 1
        assert_eq!(second.nrows(), 2);
        assert_eq!(second.base_rows().unwrap(), &[4, 1]);
        assert_eq!(second.value(0, "cat").unwrap(), Value::Str("c".into()));
        assert_eq!(second.value(1, "cat").unwrap(), Value::Str("b".into()));
        // Out-of-bounds view rows error.
        assert!(second.select(&[2]).is_err());
        // The table is still the same shared allocation.
        assert!(Arc::ptr_eq(second.table(), &t));
    }

    #[test]
    fn view_matches_take_on_every_accessor() {
        let t = base();
        let rows = [3u32, 0, 2];
        let taken = t.take(&rows).unwrap();
        let view = TableView::with_rows(Arc::clone(&t), rows.to_vec()).unwrap();
        assert_eq!(view.nrows(), taken.nrows());
        for (name, _) in [("x", 0), ("cat", 1)] {
            let tc = taken.column_by_name(name).unwrap();
            let vc = view.col_by_name(name).unwrap();
            assert_eq!(vc.null_count(), tc.null_count(), "{name}");
            assert_eq!(vc.distinct_count(), tc.distinct_count(), "{name}");
            for r in 0..view.nrows() {
                assert_eq!(vc.get(r), tc.get(r), "{name}[{r}]");
                assert_eq!(vc.numeric_at(r), tc.numeric_at(r), "{name}[{r}]");
                assert_eq!(vc.code_at(r), tc.code_at(r), "{name}[{r}]");
            }
        }
    }

    #[test]
    fn retain_and_filter_emit_selections() {
        let t = base();
        let v = TableView::new(t);
        let mask = Bitmap::from_bools(&[true, false, false, true, true]);
        let kept = v.retain(&mask).unwrap();
        assert_eq!(kept.base_rows().unwrap(), &[0, 3, 4]);
        // Length mismatch is rejected.
        assert!(kept.retain(&mask).is_err());

        let filtered = v.filter(&Predicate::ge("x", 2.0)).unwrap();
        assert_eq!(filtered.base_rows().unwrap(), &[1, 3, 4]);
        // Filtering composes with an existing selection.
        let narrow = filtered.filter(&Predicate::lt("x", 5.0)).unwrap();
        assert_eq!(narrow.base_rows().unwrap(), &[1, 3]);
    }

    #[test]
    fn gather_materializes_examples_only() {
        let t = base();
        let v = TableView::with_rows(Arc::clone(&t), vec![4, 2, 0]).unwrap();
        let examples = v.gather(&[0, 2]).unwrap();
        assert_eq!(examples.nrows(), 2);
        assert_eq!(examples.value(0, "x").unwrap(), Value::Float(5.0));
        assert_eq!(examples.value(1, "x").unwrap(), Value::Float(1.0));
        assert!(v.gather(&[3]).is_err());
        let all = v.to_table().unwrap();
        assert_eq!(all, t.take(&[4, 2, 0]).unwrap());
    }

    #[test]
    fn typed_accessors() {
        let t = base();
        let v = TableView::with_rows(t, vec![1, 2]).unwrap();
        let x = v.col_by_name("x").unwrap();
        assert_eq!(x.f64_at(0), Some(2.0));
        assert_eq!(x.f64_at(1), None, "NULL cell");
        assert_eq!(x.i64_at(0), None, "not an int column");
        let cat = v.col_by_name("cat").unwrap();
        assert_eq!(cat.code_at(0), Some(1));
        assert_eq!(cat.dictionary(), &["a", "b", "c"]);
        assert!(cat.is_valid(1));
        assert!(!x.is_valid(1));
    }

    #[test]
    fn mapped_counts_match_naive_loops() {
        // Out-of-order selection with duplicates across word boundaries:
        // the word-cached count paths must agree with the per-row naive
        // loop exactly.
        let n = 150usize;
        let t = Arc::new(
            TableBuilder::new("wide")
                .column(
                    "f",
                    Column::from_f64s((0..n).map(|i| (i % 3 != 0).then_some((i % 7) as f64))),
                )
                .unwrap()
                .column(
                    "i",
                    Column::from_i64s((0..n).map(|i| (i % 4 != 1).then_some((i % 5) as i64))),
                )
                .unwrap()
                .column(
                    "c",
                    Column::from_strs(
                        (0..n)
                            .map(|i| (i % 5 != 2).then(|| format!("v{}", i % 6)))
                            .collect::<Vec<_>>()
                            .iter()
                            .map(Option::as_deref),
                    ),
                )
                .unwrap()
                .column(
                    "b",
                    Column::from_bools((0..n).map(|i| (i % 6 != 3).then_some(i % 2 == 0))),
                )
                .unwrap()
                .build()
                .unwrap(),
        );
        let rows: Vec<u32> = (0..n as u32)
            .rev()
            .chain((0..n as u32).step_by(3))
            .collect();
        let v = TableView::with_rows(Arc::clone(&t), rows.clone()).unwrap();
        for name in ["f", "i", "c", "b"] {
            let col = v.col_by_name(name).unwrap();
            let naive_nulls = (0..col.len()).filter(|&r| !col.is_valid(r)).count();
            assert_eq!(col.null_count(), naive_nulls, "{name} null_count");
            let taken = t.take(&rows).unwrap();
            let owned = taken.column_by_name(name).unwrap();
            assert_eq!(
                col.distinct_count(),
                owned.distinct_count(),
                "{name} distinct"
            );
        }
    }

    #[test]
    fn code_parts_only_on_identity_categorical_views() {
        let t = base();
        let identity = TableView::new(Arc::clone(&t));
        let cat = identity.col_by_name("cat").unwrap();
        let (codes, validity) = ColumnRead::code_parts(&cat).expect("identity categorical");
        assert_eq!(codes.len(), 5);
        assert_eq!(validity.count_zeros(), 1);
        assert!(ColumnRead::code_parts(&identity.col_by_name("x").unwrap()).is_none());
        let mapped = TableView::with_rows(t, vec![0, 1]).unwrap();
        assert!(ColumnRead::code_parts(&mapped.col_by_name("cat").unwrap()).is_none());
    }

    #[test]
    fn role_helpers_pass_through() {
        let t = base();
        let v = TableView::new(t);
        assert_eq!(v.attribute_columns(), vec!["x", "cat"]);
        assert_eq!(v.numeric_columns(), vec!["x"]);
        assert!(v.label_columns().is_empty());
        assert_eq!(v.name(), "t");
        assert_eq!(v.schema().len(), 2);
    }
}
