//! Packed validity bitmap.
//!
//! Every nullable column carries a [`Bitmap`] with one bit per row: a set bit
//! means the value is present (valid), a clear bit means NULL. The same
//! structure doubles as a cheap set-of-rows for predicate evaluation before
//! materializing a selection vector.

/// A fixed-length packed bitmap with one bit per row.
///
/// Bits beyond `len` inside the last word are kept at zero so that word-wise
/// operations (`count_ones`, `and`, `or`) need no masking on the hot path.
#[derive(Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

const WORD_BITS: usize = 64;

impl Bitmap {
    /// Creates a bitmap of `len` bits, all clear (all NULL / empty set).
    pub fn new_clear(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Creates a bitmap of `len` bits, all set (no NULLs / full set).
    pub fn new_set(len: usize) -> Self {
        let mut words = vec![u64::MAX; len.div_ceil(WORD_BITS)];
        let tail = len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
        Bitmap { words, len }
    }

    /// Builds a bitmap from a boolean slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut bm = Bitmap::new_clear(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                bm.set(i);
            }
        }
        bm
    }

    /// Number of bits (rows) covered by this bitmap.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the bit at `index`.
    ///
    /// # Panics
    /// Panics if `index >= len`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of bounds ({})",
            self.len
        );
        (self.words[index / WORD_BITS] >> (index % WORD_BITS)) & 1 == 1
    }

    /// Sets the bit at `index`.
    #[inline]
    pub fn set(&mut self, index: usize) {
        assert!(
            index < self.len,
            "bit index {index} out of bounds ({})",
            self.len
        );
        self.words[index / WORD_BITS] |= 1u64 << (index % WORD_BITS);
    }

    /// Clears the bit at `index`.
    #[inline]
    pub fn clear(&mut self, index: usize) {
        assert!(
            index < self.len,
            "bit index {index} out of bounds ({})",
            self.len
        );
        self.words[index / WORD_BITS] &= !(1u64 << (index % WORD_BITS));
    }

    /// Writes `value` to the bit at `index`.
    #[inline]
    pub fn put(&mut self, index: usize, value: bool) {
        if value {
            self.set(index);
        } else {
            self.clear(index);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of clear bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// True when every bit is set.
    pub fn all_set(&self) -> bool {
        self.count_ones() == self.len
    }

    /// True when no bit is set.
    pub fn none_set(&self) -> bool {
        self.count_ones() == 0
    }

    /// In-place intersection with another bitmap of the same length.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn and_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place union with another bitmap of the same length.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn or_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place complement (respecting the tail mask).
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            bitmap: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collects the indices of set bits into a selection vector.
    pub fn to_indices(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count_ones());
        out.extend(self.iter_ones().map(|i| i as u32));
        out
    }

    /// Builds a bitmap of length `len` with the given sorted indices set.
    pub fn from_indices(len: usize, indices: &[u32]) -> Self {
        let mut bm = Bitmap::new_clear(len);
        for &i in indices {
            bm.set(i as usize);
        }
        bm
    }

    /// The backing words, least-significant bit first within each word.
    ///
    /// Bits at positions `>= len` in the last word are guaranteed zero, so
    /// the slice can be hashed, checksummed or written out verbatim.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a bitmap of `len` bits from backing words (the inverse of
    /// [`Bitmap::words`], e.g. when decoding a snapshot blob).
    ///
    /// Returns `None` when the word count does not match `len` or when any
    /// bit beyond `len` is set — both indicate a corrupt or foreign blob,
    /// and silently masking would hide that.
    pub fn from_words(words: Vec<u64>, len: usize) -> Option<Self> {
        if words.len() != len.div_ceil(WORD_BITS) {
            return None;
        }
        let tail = len % WORD_BITS;
        if tail != 0 {
            let last = words.last().copied().unwrap_or(0);
            if last & !((1u64 << tail) - 1) != 0 {
                return None;
            }
        }
        Some(Bitmap { words, len })
    }

    /// Word-wise intersection into a new bitmap.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        Bitmap {
            words,
            len: self.len,
        }
    }

    /// Word-wise union into a new bitmap.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a | b)
            .collect();
        Bitmap {
            words,
            len: self.len,
        }
    }

    /// Number of set bits in `start..end`, counted word-at-a-time with edge
    /// masks (no per-bit probing).
    ///
    /// # Panics
    /// Panics if `start > end` or `end > len`.
    pub fn count_ones_range(&self, start: usize, end: usize) -> usize {
        assert!(start <= end, "inverted range {start}..{end}");
        assert!(
            end <= self.len,
            "range end {end} out of bounds ({})",
            self.len
        );
        if start == end {
            return 0;
        }
        let (first, last) = (start / WORD_BITS, (end - 1) / WORD_BITS);
        let head_mask = u64::MAX << (start % WORD_BITS);
        let tail_bits = end - last * WORD_BITS; // 1..=64 bits used in `last`
        let tail_mask = if tail_bits == WORD_BITS {
            u64::MAX
        } else {
            (1u64 << tail_bits) - 1
        };
        if first == last {
            return (self.words[first] & head_mask & tail_mask).count_ones() as usize;
        }
        let mut total = (self.words[first] & head_mask).count_ones() as usize;
        for w in &self.words[first + 1..last] {
            total += w.count_ones() as usize;
        }
        total + (self.words[last] & tail_mask).count_ones() as usize
    }

    /// Counts how many of the given row indices carry a set bit.
    ///
    /// The hot loop caches the current backing word, so runs of indices that
    /// fall in the same word (the common case for sorted selection vectors)
    /// cost one shift each instead of a bounds-checked [`Bitmap::get`].
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn count_ones_at(&self, rows: &[u32]) -> usize {
        let mut total = 0usize;
        let mut cached_idx = usize::MAX;
        let mut cached_word = 0u64;
        for &row in rows {
            let row = row as usize;
            assert!(
                row < self.len,
                "bit index {row} out of bounds ({})",
                self.len
            );
            let w = row / WORD_BITS;
            if w != cached_idx {
                cached_idx = w;
                cached_word = self.words[w];
            }
            total += ((cached_word >> (row % WORD_BITS)) & 1) as usize;
        }
        total
    }
}

impl std::fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bitmap({}/{} set)", self.count_ones(), self.len)
    }
}

/// Iterator over set-bit indices of a [`Bitmap`].
pub struct OnesIter<'a> {
    bitmap: &'a Bitmap,
    word_idx: usize,
    current: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.bitmap.words.len() {
                return None;
            }
            self.current = self.bitmap.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * WORD_BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_clear_has_no_bits() {
        let bm = Bitmap::new_clear(100);
        assert_eq!(bm.len(), 100);
        assert_eq!(bm.count_ones(), 0);
        assert!(bm.none_set());
        assert!(!bm.all_set());
    }

    #[test]
    fn new_set_has_all_bits() {
        for len in [0usize, 1, 63, 64, 65, 127, 128, 200] {
            let bm = Bitmap::new_set(len);
            assert_eq!(bm.count_ones(), len, "len={len}");
            assert!(bm.all_set());
        }
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut bm = Bitmap::new_clear(130);
        bm.set(0);
        bm.set(64);
        bm.set(129);
        assert!(bm.get(0) && bm.get(64) && bm.get(129));
        assert!(!bm.get(1) && !bm.get(63) && !bm.get(128));
        assert_eq!(bm.count_ones(), 3);
        bm.clear(64);
        assert!(!bm.get(64));
        assert_eq!(bm.count_ones(), 2);
    }

    #[test]
    fn put_writes_both_values() {
        let mut bm = Bitmap::new_clear(10);
        bm.put(3, true);
        assert!(bm.get(3));
        bm.put(3, false);
        assert!(!bm.get(3));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let bm = Bitmap::new_clear(10);
        bm.get(10);
    }

    #[test]
    fn and_or_not() {
        let a = Bitmap::from_bools(&[true, true, false, false, true]);
        let b = Bitmap::from_bools(&[true, false, true, false, true]);

        let mut and = a.clone();
        and.and_assign(&b);
        assert_eq!(and.to_indices(), vec![0, 4]);

        let mut or = a.clone();
        or.or_assign(&b);
        assert_eq!(or.to_indices(), vec![0, 1, 2, 4]);

        let mut not = a.clone();
        not.not_assign();
        assert_eq!(not.to_indices(), vec![2, 3]);
        // Tail bits must stay clear: complement twice returns the original.
        not.not_assign();
        assert_eq!(not, a);
    }

    #[test]
    fn iter_ones_crosses_word_boundaries() {
        let mut bm = Bitmap::new_clear(200);
        let idx = [0usize, 1, 63, 64, 65, 127, 128, 199];
        for &i in &idx {
            bm.set(i);
        }
        let collected: Vec<usize> = bm.iter_ones().collect();
        assert_eq!(collected, idx);
    }

    #[test]
    fn indices_roundtrip() {
        let indices = vec![2u32, 5, 64, 65, 99];
        let bm = Bitmap::from_indices(100, &indices);
        assert_eq!(bm.to_indices(), indices);
    }

    #[test]
    fn empty_bitmap() {
        let bm = Bitmap::new_clear(0);
        assert!(bm.is_empty());
        assert_eq!(bm.iter_ones().count(), 0);
        assert!(bm.all_set(), "vacuously true");
    }

    #[test]
    fn from_bools_matches() {
        let bools = [true, false, true];
        let bm = Bitmap::from_bools(&bools);
        for (i, &b) in bools.iter().enumerate() {
            assert_eq!(bm.get(i), b);
        }
    }

    #[test]
    fn words_roundtrip_and_tail_validation() {
        for len in [0usize, 1, 63, 64, 65, 127, 128, 200] {
            let mut bm = Bitmap::new_clear(len);
            for i in (0..len).step_by(3) {
                bm.set(i);
            }
            let back = Bitmap::from_words(bm.words().to_vec(), len).expect("valid words");
            assert_eq!(back, bm, "len={len}");
        }
        // Wrong word count is rejected.
        assert!(Bitmap::from_words(vec![0, 0], 64).is_none());
        // Stray tail bits are rejected, not masked.
        assert!(Bitmap::from_words(vec![1u64 << 63], 63).is_none());
        assert!(Bitmap::from_words(vec![1u64 << 62], 63).is_some());
    }

    #[test]
    fn binary_and_or_match_assign_forms() {
        let a = Bitmap::from_bools(&[true, true, false, false, true]);
        let b = Bitmap::from_bools(&[true, false, true, false, true]);
        let mut and_ref = a.clone();
        and_ref.and_assign(&b);
        assert_eq!(a.and(&b), and_ref);
        let mut or_ref = a.clone();
        or_ref.or_assign(&b);
        assert_eq!(a.or(&b), or_ref);
    }

    #[test]
    fn count_ones_range_matches_per_bit() {
        let mut bm = Bitmap::new_clear(200);
        for i in (0..200).step_by(7) {
            bm.set(i);
        }
        for &(s, e) in &[
            (0usize, 0usize),
            (0, 200),
            (0, 1),
            (63, 64),
            (63, 65),
            (64, 128),
            (1, 199),
            (130, 130),
        ] {
            let naive = (s..e).filter(|&i| bm.get(i)).count();
            assert_eq!(bm.count_ones_range(s, e), naive, "range {s}..{e}");
        }
    }

    #[test]
    fn count_ones_at_matches_per_bit() {
        let mut bm = Bitmap::new_clear(150);
        for i in (0..150).step_by(2) {
            bm.set(i);
        }
        let rows: Vec<u32> = vec![0, 1, 2, 64, 65, 63, 149, 10, 10];
        let naive = rows.iter().filter(|&&r| bm.get(r as usize)).count();
        assert_eq!(bm.count_ones_at(&rows), naive);
        assert_eq!(bm.count_ones_at(&[]), 0);
    }
}
