//! Row predicates for Select-Project queries.
//!
//! Blaeu's data maps quantize the query space: every region of a map is a
//! conjunction of simple single-column predicates produced by the decision
//! tree. This module is the evaluable (and SQL-renderable) form of those
//! predicates.

use std::fmt;

use crate::bitmap::Bitmap;
use crate::error::{Result, StoreError};
use crate::table::Table;
use crate::value::DataType;
use crate::view::{ColumnView, TableView};

/// Which side of a numeric threshold a range bound sits on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bound {
    /// No bound on this side.
    Unbounded,
    /// Inclusive bound (`>=` / `<=`).
    Inclusive(f64),
    /// Exclusive bound (`>` / `<`).
    Exclusive(f64),
}

impl Bound {
    fn admits_lower(self, v: f64) -> bool {
        match self {
            Bound::Unbounded => true,
            Bound::Inclusive(b) => v >= b,
            Bound::Exclusive(b) => v > b,
        }
    }

    fn admits_upper(self, v: f64) -> bool {
        match self {
            Bound::Unbounded => true,
            Bound::Inclusive(b) => v <= b,
            Bound::Exclusive(b) => v < b,
        }
    }
}

/// A predicate over one table's rows.
///
/// NULL semantics follow SQL: a NULL cell never satisfies a comparison, and
/// `Not` therefore does *not* recover NULL rows (`NOT (x < 5)` excludes
/// NULLs, like SQL's three-valued logic restricted to WHERE).
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (selects every row).
    True,
    /// Numeric interval test on a numeric or boolean column.
    NumRange {
        /// Column name.
        column: String,
        /// Lower bound.
        lo: Bound,
        /// Upper bound.
        hi: Bound,
    },
    /// Categorical membership test.
    CatIn {
        /// Column name.
        column: String,
        /// Accepted category labels.
        categories: Vec<String>,
    },
    /// True where the column is NULL.
    IsNull {
        /// Column name.
        column: String,
    },
    /// Logical negation (NULL rows remain excluded).
    Not(Box<Predicate>),
    /// Conjunction of predicates (empty = true).
    And(Vec<Predicate>),
    /// Disjunction of predicates (empty = false).
    Or(Vec<Predicate>),
}

impl Predicate {
    /// Convenience: `column >= lo AND column < hi`.
    pub fn range_co(column: impl Into<String>, lo: f64, hi: f64) -> Self {
        Predicate::NumRange {
            column: column.into(),
            lo: Bound::Inclusive(lo),
            hi: Bound::Exclusive(hi),
        }
    }

    /// Convenience: `column < threshold`.
    pub fn lt(column: impl Into<String>, threshold: f64) -> Self {
        Predicate::NumRange {
            column: column.into(),
            lo: Bound::Unbounded,
            hi: Bound::Exclusive(threshold),
        }
    }

    /// Convenience: `column >= threshold`.
    pub fn ge(column: impl Into<String>, threshold: f64) -> Self {
        Predicate::NumRange {
            column: column.into(),
            lo: Bound::Inclusive(threshold),
            hi: Bound::Unbounded,
        }
    }

    /// Convenience: `column IN (categories...)`.
    pub fn is_in<S: Into<String>>(
        column: impl Into<String>,
        categories: impl IntoIterator<Item = S>,
    ) -> Self {
        Predicate::CatIn {
            column: column.into(),
            categories: categories.into_iter().map(Into::into).collect(),
        }
    }

    /// Conjunction helper that flattens nested `And`s and drops `True`s.
    pub fn and(parts: impl IntoIterator<Item = Predicate>) -> Self {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Predicate::True => {}
                Predicate::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Predicate::True,
            1 => flat.pop().expect("len checked"),
            _ => Predicate::And(flat),
        }
    }

    /// Evaluates the predicate over a table, producing a bitmap with one bit
    /// per row (set = row selected).
    ///
    /// # Errors
    /// Returns an error for unknown columns or type-incompatible tests.
    pub fn eval(&self, table: &Table) -> Result<Bitmap> {
        self.eval_cols(table.nrows(), &|name| {
            Ok(ColumnView::whole(table.column_by_name(name)?))
        })
    }

    /// Evaluates the predicate over a view, producing a bitmap with one bit
    /// per **view row** — a selection is emitted, no sub-table is built.
    ///
    /// # Errors
    /// Returns an error for unknown columns or type-incompatible tests.
    pub fn eval_view(&self, view: &TableView) -> Result<Bitmap> {
        self.eval_cols(view.nrows(), &|name| view.col_by_name(name))
    }

    /// The shared evaluation core: rows are addressed through
    /// [`ColumnView`] accessors, so the same code serves whole tables and
    /// zero-copy views.
    fn eval_cols<'a, F>(&self, n: usize, lookup: &F) -> Result<Bitmap>
    where
        F: Fn(&str) -> Result<ColumnView<'a>>,
    {
        match self {
            Predicate::True => Ok(Bitmap::new_set(n)),
            Predicate::NumRange { column, lo, hi } => {
                let col = lookup(column)?;
                if !col.data_type().is_numeric() && col.data_type() != DataType::Bool {
                    return Err(StoreError::TypeMismatch {
                        column: column.clone(),
                        expected: "numeric",
                        found: col.data_type().name(),
                    });
                }
                let mut out = Bitmap::new_clear(n);
                // Identity views expose the column's borrowed payload, so the
                // scan walks set validity bits word-wise over a dense slice
                // instead of calling `numeric_at` per row.
                if col.rows().is_none() {
                    if let Some((data, validity)) = col.column().f64_slice() {
                        for row in validity.iter_ones() {
                            let v = data[row];
                            if lo.admits_lower(v) && hi.admits_upper(v) {
                                out.set(row);
                            }
                        }
                        return Ok(out);
                    }
                    if let Some((data, validity)) = col.column().i64_slice() {
                        for row in validity.iter_ones() {
                            let v = data[row] as f64;
                            if lo.admits_lower(v) && hi.admits_upper(v) {
                                out.set(row);
                            }
                        }
                        return Ok(out);
                    }
                }
                for row in 0..n {
                    if let Some(v) = col.numeric_at(row) {
                        if lo.admits_lower(v) && hi.admits_upper(v) {
                            out.set(row);
                        }
                    }
                }
                Ok(out)
            }
            Predicate::CatIn { column, categories } => {
                let col = lookup(column)?;
                if col.data_type() != DataType::Categorical {
                    return Err(StoreError::TypeMismatch {
                        column: column.clone(),
                        expected: "categorical",
                        found: col.data_type().name(),
                    });
                }
                // Translate accepted labels to a code mask once, then scan codes.
                let dict = col.dictionary();
                let mut accepted = vec![false; dict.len()];
                for cat in categories {
                    if let Some(pos) = dict.iter().position(|d| d == cat) {
                        accepted[pos] = true;
                    }
                }
                let mut out = Bitmap::new_clear(n);
                // Identity views compare dictionary codes straight off the
                // borrowed slice, walking only set validity bits.
                if col.rows().is_none() {
                    if let Some((codes, _, validity)) = col.column().categorical_parts() {
                        for row in validity.iter_ones() {
                            if accepted[codes[row] as usize] {
                                out.set(row);
                            }
                        }
                        return Ok(out);
                    }
                }
                for row in 0..n {
                    if let Some(code) = col.code_at(row) {
                        if accepted[code as usize] {
                            out.set(row);
                        }
                    }
                }
                Ok(out)
            }
            Predicate::IsNull { column } => {
                let col = lookup(column)?;
                // Identity views keep the word-wise path of the old
                // Table-only implementation.
                if let Some(validity) = col.whole_validity() {
                    let mut out = validity.clone();
                    out.not_assign();
                    return Ok(out);
                }
                let mut out = Bitmap::new_clear(n);
                for row in 0..n {
                    if !col.is_valid(row) {
                        out.set(row);
                    }
                }
                Ok(out)
            }
            Predicate::Not(inner) => {
                let mut out = inner.eval_cols(n, lookup)?;
                out.not_assign();
                // SQL semantics: NULL rows stay excluded under negation of a
                // comparison. Null-ness is per-column, so intersect with the
                // validity of every column the inner predicate touches.
                for column in inner.columns() {
                    if !matches!(**inner, Predicate::IsNull { .. }) {
                        let col = lookup(&column)?;
                        if let Some(validity) = col.whole_validity() {
                            out.and_assign(validity);
                            continue;
                        }
                        for row in 0..n {
                            if !col.is_valid(row) {
                                out.clear(row);
                            }
                        }
                    }
                }
                Ok(out)
            }
            Predicate::And(parts) => {
                let mut out = Bitmap::new_set(n);
                for p in parts {
                    out.and_assign(&p.eval_cols(n, lookup)?);
                }
                Ok(out)
            }
            Predicate::Or(parts) => {
                let mut out = Bitmap::new_clear(n);
                for p in parts {
                    out.or_assign(&p.eval_cols(n, lookup)?);
                }
                Ok(out)
            }
        }
    }

    /// Evaluates and materializes the selected row indices in ascending order.
    ///
    /// # Errors
    /// Propagates [`Predicate::eval`] errors.
    pub fn select(&self, table: &Table) -> Result<Vec<u32>> {
        Ok(self.eval(table)?.to_indices())
    }

    /// Evaluates over a view and materializes the selected **view-relative**
    /// row indices in ascending order.
    ///
    /// # Errors
    /// Propagates [`Predicate::eval_view`] errors.
    pub fn select_view(&self, view: &TableView) -> Result<Vec<u32>> {
        Ok(self.eval_view(view)?.to_indices())
    }

    /// All column names referenced by this predicate (with duplicates).
    pub fn columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Predicate::True => {}
            Predicate::NumRange { column, .. }
            | Predicate::CatIn { column, .. }
            | Predicate::IsNull { column } => out.push(column.clone()),
            Predicate::Not(inner) => inner.collect_columns(out),
            Predicate::And(parts) | Predicate::Or(parts) => {
                for p in parts {
                    p.collect_columns(out);
                }
            }
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => f.write_str("TRUE"),
            Predicate::NumRange { column, lo, hi } => match (lo, hi) {
                (Bound::Unbounded, Bound::Unbounded) => {
                    write!(f, "\"{column}\" IS NOT NULL")
                }
                (Bound::Unbounded, _) => {
                    let (op, v) = upper_op(hi);
                    write!(f, "\"{column}\" {op} {v}")
                }
                (_, Bound::Unbounded) => {
                    let (op, v) = lower_op(lo);
                    write!(f, "\"{column}\" {op} {v}")
                }
                (_, _) => {
                    let (lop, lv) = lower_op(lo);
                    let (uop, uv) = upper_op(hi);
                    write!(f, "\"{column}\" {lop} {lv} AND \"{column}\" {uop} {uv}")
                }
            },
            Predicate::CatIn { column, categories } => {
                let list: Vec<String> = categories
                    .iter()
                    .map(|c| format!("'{}'", c.replace('\'', "''")))
                    .collect();
                write!(f, "\"{column}\" IN ({})", list.join(", "))
            }
            Predicate::IsNull { column } => write!(f, "\"{column}\" IS NULL"),
            Predicate::Not(inner) => write!(f, "NOT ({inner})"),
            Predicate::And(parts) => {
                if parts.is_empty() {
                    return f.write_str("TRUE");
                }
                let rendered: Vec<String> = parts.iter().map(|p| format!("({p})")).collect();
                f.write_str(&rendered.join(" AND "))
            }
            Predicate::Or(parts) => {
                if parts.is_empty() {
                    return f.write_str("FALSE");
                }
                let rendered: Vec<String> = parts.iter().map(|p| format!("({p})")).collect();
                f.write_str(&rendered.join(" OR "))
            }
        }
    }
}

fn lower_op(b: &Bound) -> (&'static str, f64) {
    match b {
        Bound::Inclusive(v) => (">=", *v),
        Bound::Exclusive(v) => (">", *v),
        Bound::Unbounded => unreachable!("caller checks unbounded"),
    }
}

fn upper_op(b: &Bound) -> (&'static str, f64) {
    match b {
        Bound::Inclusive(v) => ("<=", *v),
        Bound::Exclusive(v) => ("<", *v),
        Bound::Unbounded => unreachable!("caller checks unbounded"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::table::TableBuilder;

    fn table() -> Table {
        TableBuilder::new("t")
            .column(
                "x",
                Column::from_f64s([Some(1.0), Some(2.0), Some(3.0), None, Some(5.0)]),
            )
            .unwrap()
            .column(
                "cat",
                Column::from_strs([Some("a"), Some("b"), Some("a"), Some("c"), None]),
            )
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn true_selects_all() {
        let t = table();
        assert_eq!(Predicate::True.select(&t).unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn numeric_range_excludes_nulls() {
        let t = table();
        let p = Predicate::ge("x", 2.0);
        assert_eq!(p.select(&t).unwrap(), vec![1, 2, 4]);
        let p = Predicate::lt("x", 3.0);
        assert_eq!(p.select(&t).unwrap(), vec![0, 1]);
        let p = Predicate::range_co("x", 2.0, 5.0);
        assert_eq!(p.select(&t).unwrap(), vec![1, 2]);
    }

    #[test]
    fn bound_inclusivity() {
        let t = table();
        let inclusive = Predicate::NumRange {
            column: "x".into(),
            lo: Bound::Inclusive(2.0),
            hi: Bound::Inclusive(3.0),
        };
        assert_eq!(inclusive.select(&t).unwrap(), vec![1, 2]);
        let exclusive = Predicate::NumRange {
            column: "x".into(),
            lo: Bound::Exclusive(2.0),
            hi: Bound::Exclusive(3.0),
        };
        assert_eq!(exclusive.select(&t).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn categorical_membership() {
        let t = table();
        let p = Predicate::is_in("cat", ["a", "c"]);
        assert_eq!(p.select(&t).unwrap(), vec![0, 2, 3]);
        // Unknown categories are simply never matched.
        let p = Predicate::is_in("cat", ["zz"]);
        assert_eq!(p.select(&t).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn is_null() {
        let t = table();
        let p = Predicate::IsNull { column: "x".into() };
        assert_eq!(p.select(&t).unwrap(), vec![3]);
    }

    #[test]
    fn not_keeps_nulls_excluded() {
        let t = table();
        // NOT(x >= 2) should select x < 2 but NOT the NULL row (SQL semantics).
        let p = Predicate::Not(Box::new(Predicate::ge("x", 2.0)));
        assert_eq!(p.select(&t).unwrap(), vec![0]);
        // Double negation over IsNull is fine.
        let p = Predicate::Not(Box::new(Predicate::IsNull { column: "x".into() }));
        assert_eq!(p.select(&t).unwrap(), vec![0, 1, 2, 4]);
    }

    #[test]
    fn and_or_compose() {
        let t = table();
        let p = Predicate::And(vec![
            Predicate::ge("x", 2.0),
            Predicate::is_in("cat", ["a"]),
        ]);
        assert_eq!(p.select(&t).unwrap(), vec![2]);
        let p = Predicate::Or(vec![
            Predicate::lt("x", 2.0),
            Predicate::is_in("cat", ["c"]),
        ]);
        assert_eq!(p.select(&t).unwrap(), vec![0, 3]);
    }

    #[test]
    fn and_builder_flattens() {
        let p = Predicate::and([
            Predicate::True,
            Predicate::and([Predicate::lt("x", 1.0), Predicate::ge("x", 0.0)]),
        ]);
        match &p {
            Predicate::And(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected flattened And, got {other:?}"),
        }
        assert_eq!(Predicate::and([]), Predicate::True);
        assert_eq!(
            Predicate::and([Predicate::lt("x", 1.0)]),
            Predicate::lt("x", 1.0)
        );
    }

    #[test]
    fn type_errors_reported() {
        let t = table();
        assert!(matches!(
            Predicate::ge("cat", 1.0).eval(&t),
            Err(StoreError::TypeMismatch { .. })
        ));
        assert!(matches!(
            Predicate::is_in("x", ["a"]).eval(&t),
            Err(StoreError::TypeMismatch { .. })
        ));
        assert!(matches!(
            Predicate::ge("ghost", 1.0).eval(&t),
            Err(StoreError::ColumnNotFound(_))
        ));
    }

    #[test]
    fn display_renders_sql() {
        assert_eq!(Predicate::ge("x", 2.0).to_string(), "\"x\" >= 2");
        assert_eq!(Predicate::lt("x", 2.5).to_string(), "\"x\" < 2.5");
        assert_eq!(
            Predicate::is_in("cat", ["a", "b'c"]).to_string(),
            "\"cat\" IN ('a', 'b''c')"
        );
        let p = Predicate::And(vec![Predicate::ge("x", 2.0), Predicate::lt("x", 3.0)]);
        assert_eq!(p.to_string(), "(\"x\" >= 2) AND (\"x\" < 3)");
    }

    #[test]
    fn view_eval_matches_table_eval_on_taken_rows() {
        let t = table();
        let rows = [4u32, 3, 1, 0];
        let taken = t.take(&rows).unwrap();
        let view = TableView::with_rows(std::sync::Arc::new(t), rows.to_vec()).unwrap();
        let preds = [
            Predicate::ge("x", 2.0),
            Predicate::is_in("cat", ["a", "c"]),
            Predicate::IsNull { column: "x".into() },
            Predicate::Not(Box::new(Predicate::ge("x", 2.0))),
            Predicate::And(vec![
                Predicate::ge("x", 1.0),
                Predicate::Or(vec![
                    Predicate::is_in("cat", ["b"]),
                    Predicate::lt("x", 2.0),
                ]),
            ]),
        ];
        for p in preds {
            assert_eq!(
                p.select_view(&view).unwrap(),
                p.select(&taken).unwrap(),
                "predicate {p}"
            );
        }
        // Type errors surface on the view path too.
        assert!(Predicate::ge("cat", 1.0).eval_view(&view).is_err());
        assert!(Predicate::is_in("x", ["a"]).eval_view(&view).is_err());
    }

    #[test]
    fn columns_collected() {
        let p = Predicate::And(vec![
            Predicate::ge("x", 2.0),
            Predicate::Not(Box::new(Predicate::is_in("cat", ["a"]))),
        ]);
        assert_eq!(p.columns(), vec!["x".to_string(), "cat".to_string()]);
    }
}
