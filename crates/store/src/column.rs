//! Columnar storage: typed columns with validity bitmaps.
//!
//! The engine is column-at-a-time in the MonetDB tradition: each column is a
//! dense typed vector plus a validity [`Bitmap`] marking non-NULL rows.
//! Strings are dictionary-encoded (`codes` into a shared `dict`), which makes
//! categorical operations (grouping, dummy coding, contingency tables) work
//! on small integers instead of strings.

use std::collections::HashMap;
use std::sync::Arc;

use crate::bitmap::Bitmap;
use crate::value::{DataType, Value};

/// Borrowed pieces of a categorical column: codes, dictionary, validity.
pub type CategoricalParts<'a> = (&'a [u32], &'a Arc<Vec<String>>, &'a Bitmap);

/// Read-only row access shared by owned [`Column`]s and zero-copy
/// [`crate::view::ColumnView`]s.
///
/// The statistics and tree layers are generic over this trait, so the same
/// code path serves a whole column and a view-selected subset of it —
/// iteration order is the row order of the implementor, which keeps
/// results bit-identical between the two.
pub trait ColumnRead {
    /// Number of rows.
    fn len(&self) -> usize;

    /// Logical type of the column.
    fn data_type(&self) -> DataType;

    /// Cell value at `row`.
    fn get(&self, row: usize) -> Value;

    /// Numeric view of the cell at `row`: floats as-is, ints widened,
    /// bools as 0/1; NULL and categorical yield `None`.
    fn numeric_at(&self, row: usize) -> Option<f64>;

    /// Dictionary code at `row` for categorical columns (`None` when NULL
    /// or not categorical).
    fn code_at(&self, row: usize) -> Option<u32>;

    /// True when the cell at `row` is non-NULL.
    fn is_valid(&self, row: usize) -> bool;

    /// Dictionary of a categorical column (empty for other types).
    fn dictionary(&self) -> &[String];

    /// True when the column has zero rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of NULL rows.
    fn null_count(&self) -> usize {
        (0..self.len()).filter(|&i| !self.is_valid(i)).count()
    }

    /// Number of distinct non-NULL values (floats by bit pattern, ints by
    /// value, categoricals by code, bools by truth value).
    ///
    /// The default is driven off the typed per-row accessors — it never
    /// materializes the column (`to_f64_vec`); implementors with payload
    /// access override it with slice/bitmap fast paths.
    fn distinct_count(&self) -> usize {
        match self.data_type() {
            DataType::Float64 => {
                let set: std::collections::HashSet<u64> = (0..self.len())
                    .filter_map(|i| self.numeric_at(i).map(f64::to_bits))
                    .collect();
                set.len()
            }
            DataType::Int64 => {
                let set: std::collections::HashSet<i64> = (0..self.len())
                    .filter_map(|i| match self.get(i) {
                        Value::Int(v) => Some(v),
                        _ => None,
                    })
                    .collect();
                set.len()
            }
            DataType::Categorical => {
                let set: std::collections::HashSet<u32> =
                    (0..self.len()).filter_map(|i| self.code_at(i)).collect();
                set.len()
            }
            DataType::Bool => {
                let mut seen = [false, false];
                for i in 0..self.len() {
                    if let Some(v) = self.numeric_at(i) {
                        seen[(v != 0.0) as usize] = true;
                    }
                }
                usize::from(seen[0]) + usize::from(seen[1])
            }
        }
    }

    /// Dense dictionary codes plus validity bitmap, available zero-copy
    /// when the implementor is a categorical column covering every row in
    /// order (`None` otherwise). Statistics kernels use this to build
    /// count tables straight from code slices instead of probing
    /// `code_at` row by row.
    fn code_parts(&self) -> Option<(&[u32], &Bitmap)> {
        None
    }

    /// Materializes all rows as numeric values (see
    /// [`ColumnRead::numeric_at`]).
    fn to_f64_vec(&self) -> Vec<Option<f64>> {
        (0..self.len()).map(|i| self.numeric_at(i)).collect()
    }
}

impl ColumnRead for Column {
    fn len(&self) -> usize {
        Column::len(self)
    }

    fn data_type(&self) -> DataType {
        Column::data_type(self)
    }

    fn get(&self, row: usize) -> Value {
        Column::get(self, row)
    }

    fn numeric_at(&self, row: usize) -> Option<f64> {
        Column::numeric_at(self, row)
    }

    fn code_at(&self, row: usize) -> Option<u32> {
        Column::code_at(self, row)
    }

    fn is_valid(&self, row: usize) -> bool {
        self.validity().get(row)
    }

    fn dictionary(&self) -> &[String] {
        Column::dictionary(self)
    }

    fn null_count(&self) -> usize {
        Column::null_count(self)
    }

    fn distinct_count(&self) -> usize {
        Column::distinct_count(self)
    }

    fn code_parts(&self) -> Option<(&[u32], &Bitmap)> {
        match self {
            Column::Categorical {
                codes, validity, ..
            } => Some((codes, validity)),
            _ => None,
        }
    }
}

/// A typed column of values with a validity bitmap.
#[derive(Debug, Clone)]
pub enum Column {
    /// Continuous values.
    Float64 {
        /// Cell payloads; rows with a clear validity bit hold an arbitrary value.
        data: Vec<f64>,
        /// Set bit = value present, clear bit = NULL.
        validity: Bitmap,
    },
    /// Integer values.
    Int64 {
        /// Cell payloads.
        data: Vec<i64>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// Dictionary-encoded categorical values.
    Categorical {
        /// Per-row dictionary codes; meaningful only where validity is set.
        codes: Vec<u32>,
        /// Distinct category labels; shared on gather so zooming is cheap.
        dict: Arc<Vec<String>>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// Boolean values.
    Bool {
        /// Cell payloads as a bitmap (bit per row).
        data: Bitmap,
        /// Validity bitmap.
        validity: Bitmap,
    },
}

impl Column {
    /// Builds a float column from optional values (`None` becomes NULL).
    pub fn from_f64s<I: IntoIterator<Item = Option<f64>>>(values: I) -> Self {
        let mut data = Vec::new();
        let mut valid = Vec::new();
        for v in values {
            match v {
                Some(x) => {
                    data.push(x);
                    valid.push(true);
                }
                None => {
                    data.push(f64::NAN);
                    valid.push(false);
                }
            }
        }
        Column::Float64 {
            data,
            validity: Bitmap::from_bools(&valid),
        }
    }

    /// Builds a dense float column with no NULLs.
    pub fn dense_f64(values: Vec<f64>) -> Self {
        let n = values.len();
        Column::Float64 {
            data: values,
            validity: Bitmap::new_set(n),
        }
    }

    /// Builds an integer column from optional values.
    pub fn from_i64s<I: IntoIterator<Item = Option<i64>>>(values: I) -> Self {
        let mut data = Vec::new();
        let mut valid = Vec::new();
        for v in values {
            match v {
                Some(x) => {
                    data.push(x);
                    valid.push(true);
                }
                None => {
                    data.push(0);
                    valid.push(false);
                }
            }
        }
        Column::Int64 {
            data,
            validity: Bitmap::from_bools(&valid),
        }
    }

    /// Builds a dense integer column with no NULLs.
    pub fn dense_i64(values: Vec<i64>) -> Self {
        let n = values.len();
        Column::Int64 {
            data: values,
            validity: Bitmap::new_set(n),
        }
    }

    /// Builds a categorical column, interning labels into a dictionary in
    /// first-appearance order.
    pub fn from_strs<'a, I: IntoIterator<Item = Option<&'a str>>>(values: I) -> Self {
        let mut codes = Vec::new();
        let mut valid = Vec::new();
        let mut dict: Vec<String> = Vec::new();
        let mut intern: HashMap<String, u32> = HashMap::new();
        for v in values {
            match v {
                Some(s) => {
                    let code = *intern.entry(s.to_owned()).or_insert_with(|| {
                        dict.push(s.to_owned());
                        (dict.len() - 1) as u32
                    });
                    codes.push(code);
                    valid.push(true);
                }
                None => {
                    codes.push(0);
                    valid.push(false);
                }
            }
        }
        Column::Categorical {
            codes,
            dict: Arc::new(dict),
            validity: Bitmap::from_bools(&valid),
        }
    }

    /// Builds a categorical column directly from codes and a dictionary.
    ///
    /// # Panics
    /// Panics if any valid code is out of dictionary bounds.
    pub fn from_codes(codes: Vec<u32>, dict: Arc<Vec<String>>, validity: Bitmap) -> Self {
        assert_eq!(
            codes.len(),
            validity.len(),
            "codes/validity length mismatch"
        );
        for (i, &c) in codes.iter().enumerate() {
            if validity.get(i) {
                assert!(
                    (c as usize) < dict.len(),
                    "code {c} out of bounds for dict of {} entries",
                    dict.len()
                );
            }
        }
        Column::Categorical {
            codes,
            dict,
            validity,
        }
    }

    /// Builds a boolean column from optional values.
    pub fn from_bools<I: IntoIterator<Item = Option<bool>>>(values: I) -> Self {
        let collected: Vec<Option<bool>> = values.into_iter().collect();
        let n = collected.len();
        let mut data = Bitmap::new_clear(n);
        let mut validity = Bitmap::new_clear(n);
        for (i, v) in collected.into_iter().enumerate() {
            if let Some(b) = v {
                validity.set(i);
                if b {
                    data.set(i);
                }
            }
        }
        Column::Bool { data, validity }
    }

    /// Builds a column of the given type from row [`Value`]s.
    ///
    /// NULLs are accepted anywhere; non-NULL values must be convertible to
    /// `dtype` (integers widen to float, anything renders to a categorical
    /// label via `Display`).
    pub fn from_values(values: &[Value], dtype: DataType) -> Self {
        match dtype {
            DataType::Float64 => Column::from_f64s(values.iter().map(|v| v.as_f64())),
            DataType::Int64 => Column::from_i64s(values.iter().map(|v| match v {
                Value::Int(i) => Some(*i),
                Value::Float(f) => Some(*f as i64),
                Value::Bool(b) => Some(i64::from(*b)),
                _ => None,
            })),
            DataType::Categorical => {
                let rendered: Vec<Option<String>> = values
                    .iter()
                    .map(|v| {
                        if v.is_null() {
                            None
                        } else {
                            Some(v.to_string())
                        }
                    })
                    .collect();
                Column::from_strs(rendered.iter().map(|o| o.as_deref()))
            }
            DataType::Bool => Column::from_bools(values.iter().map(|v| match v {
                Value::Bool(b) => Some(*b),
                Value::Int(i) => Some(*i != 0),
                _ => None,
            })),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Float64 { data, .. } => data.len(),
            Column::Int64 { data, .. } => data.len(),
            Column::Categorical { codes, .. } => codes.len(),
            Column::Bool { validity, .. } => validity.len(),
        }
    }

    /// True when the column has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical type of the column.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Float64 { .. } => DataType::Float64,
            Column::Int64 { .. } => DataType::Int64,
            Column::Categorical { .. } => DataType::Categorical,
            Column::Bool { .. } => DataType::Bool,
        }
    }

    /// The validity bitmap.
    pub fn validity(&self) -> &Bitmap {
        match self {
            Column::Float64 { validity, .. }
            | Column::Int64 { validity, .. }
            | Column::Categorical { validity, .. }
            | Column::Bool { validity, .. } => validity,
        }
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.validity().count_zeros()
    }

    /// Cell value at `row`.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    pub fn get(&self, row: usize) -> Value {
        match self {
            Column::Float64 { data, validity } => {
                if validity.get(row) {
                    Value::Float(data[row])
                } else {
                    Value::Null
                }
            }
            Column::Int64 { data, validity } => {
                if validity.get(row) {
                    Value::Int(data[row])
                } else {
                    Value::Null
                }
            }
            Column::Categorical {
                codes,
                dict,
                validity,
            } => {
                if validity.get(row) {
                    Value::Str(dict[codes[row] as usize].clone())
                } else {
                    Value::Null
                }
            }
            Column::Bool { data, validity } => {
                if validity.get(row) {
                    Value::Bool(data.get(row))
                } else {
                    Value::Null
                }
            }
        }
    }

    /// Numeric view of the cell at `row`: floats as-is, ints widened,
    /// bools as 0/1; NULL and categorical yield `None`.
    #[inline]
    pub fn numeric_at(&self, row: usize) -> Option<f64> {
        match self {
            Column::Float64 { data, validity } => validity.get(row).then(|| data[row]),
            Column::Int64 { data, validity } => validity.get(row).then(|| data[row] as f64),
            Column::Bool { data, validity } => {
                validity
                    .get(row)
                    .then(|| if data.get(row) { 1.0 } else { 0.0 })
            }
            Column::Categorical { .. } => None,
        }
    }

    /// Dictionary code at `row` for categorical columns (`None` when NULL or
    /// not categorical).
    #[inline]
    pub fn code_at(&self, row: usize) -> Option<u32> {
        match self {
            Column::Categorical {
                codes, validity, ..
            } => validity.get(row).then(|| codes[row]),
            _ => None,
        }
    }

    /// Borrowed float payload and validity, when this is a float column.
    pub fn f64_slice(&self) -> Option<(&[f64], &Bitmap)> {
        match self {
            Column::Float64 { data, validity } => Some((data, validity)),
            _ => None,
        }
    }

    /// Borrowed integer payload and validity, when this is an int column.
    pub fn i64_slice(&self) -> Option<(&[i64], &Bitmap)> {
        match self {
            Column::Int64 { data, validity } => Some((data, validity)),
            _ => None,
        }
    }

    /// Borrowed codes, dictionary and validity, when categorical.
    pub fn categorical_parts(&self) -> Option<CategoricalParts<'_>> {
        match self {
            Column::Categorical {
                codes,
                dict,
                validity,
            } => Some((codes, dict, validity)),
            _ => None,
        }
    }

    /// Dictionary of a categorical column (empty for other types).
    pub fn dictionary(&self) -> &[String] {
        match self {
            Column::Categorical { dict, .. } => dict,
            _ => &[],
        }
    }

    /// Materializes all rows as numeric values (see [`Column::numeric_at`]).
    pub fn to_f64_vec(&self) -> Vec<Option<f64>> {
        (0..self.len()).map(|i| self.numeric_at(i)).collect()
    }

    /// Gathers the rows at `indices` into a new column.
    ///
    /// Dictionary vectors are shared (`Arc`), so gathering a categorical
    /// column never copies label strings — this is the "low-level data
    /// sharing" that makes zooming cheap.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn take(&self, indices: &[u32]) -> Column {
        match self {
            Column::Float64 { data, validity } => {
                let mut out = Vec::with_capacity(indices.len());
                let mut val = Bitmap::new_clear(indices.len());
                for (j, &i) in indices.iter().enumerate() {
                    let i = i as usize;
                    out.push(data[i]);
                    if validity.get(i) {
                        val.set(j);
                    }
                }
                Column::Float64 {
                    data: out,
                    validity: val,
                }
            }
            Column::Int64 { data, validity } => {
                let mut out = Vec::with_capacity(indices.len());
                let mut val = Bitmap::new_clear(indices.len());
                for (j, &i) in indices.iter().enumerate() {
                    let i = i as usize;
                    out.push(data[i]);
                    if validity.get(i) {
                        val.set(j);
                    }
                }
                Column::Int64 {
                    data: out,
                    validity: val,
                }
            }
            Column::Categorical {
                codes,
                dict,
                validity,
            } => {
                let mut out = Vec::with_capacity(indices.len());
                let mut val = Bitmap::new_clear(indices.len());
                for (j, &i) in indices.iter().enumerate() {
                    let i = i as usize;
                    out.push(codes[i]);
                    if validity.get(i) {
                        val.set(j);
                    }
                }
                Column::Categorical {
                    codes: out,
                    dict: Arc::clone(dict),
                    validity: val,
                }
            }
            Column::Bool { data, validity } => {
                let mut out = Bitmap::new_clear(indices.len());
                let mut val = Bitmap::new_clear(indices.len());
                for (j, &i) in indices.iter().enumerate() {
                    let i = i as usize;
                    if data.get(i) {
                        out.set(j);
                    }
                    if validity.get(i) {
                        val.set(j);
                    }
                }
                Column::Bool {
                    data: out,
                    validity: val,
                }
            }
        }
    }

    /// Number of distinct non-NULL values.
    ///
    /// Exact; floats are compared by bit pattern so `-0.0` and `0.0` count
    /// as two values and NaNs collapse to one.
    pub fn distinct_count(&self) -> usize {
        match self {
            Column::Float64 { data, validity } => {
                let mut set = std::collections::HashSet::new();
                for (i, v) in data.iter().enumerate() {
                    if validity.get(i) {
                        set.insert(v.to_bits());
                    }
                }
                set.len()
            }
            Column::Int64 { data, validity } => {
                let mut set = std::collections::HashSet::new();
                for (i, v) in data.iter().enumerate() {
                    if validity.get(i) {
                        set.insert(*v);
                    }
                }
                set.len()
            }
            Column::Categorical {
                codes, validity, ..
            } => {
                let mut set = std::collections::HashSet::new();
                for (i, c) in codes.iter().enumerate() {
                    if validity.get(i) {
                        set.insert(*c);
                    }
                }
                set.len()
            }
            Column::Bool { data, validity } => {
                let mut seen_true = false;
                let mut seen_false = false;
                for i in 0..validity.len() {
                    if validity.get(i) {
                        if data.get(i) {
                            seen_true = true;
                        } else {
                            seen_false = true;
                        }
                    }
                }
                usize::from(seen_true) + usize::from(seen_false)
            }
        }
    }
}

/// Semantic equality: same type, same validity, equal values at valid rows.
///
/// NULL slots are ignored (their payload is arbitrary — NaN for floats), and
/// categorical columns compare by *label*, not by dictionary layout, so two
/// columns that intern the same values in different orders are equal.
impl PartialEq for Column {
    fn eq(&self, other: &Self) -> bool {
        if self.data_type() != other.data_type()
            || self.len() != other.len()
            || self.validity() != other.validity()
        {
            return false;
        }
        match (self, other) {
            (Column::Float64 { data: a, validity }, Column::Float64 { data: b, .. }) => {
                (0..a.len()).all(|i| !validity.get(i) || a[i].to_bits() == b[i].to_bits())
            }
            (Column::Int64 { data: a, validity }, Column::Int64 { data: b, .. }) => {
                (0..a.len()).all(|i| !validity.get(i) || a[i] == b[i])
            }
            (
                Column::Categorical {
                    codes: ca,
                    dict: da,
                    validity,
                },
                Column::Categorical {
                    codes: cb,
                    dict: db,
                    ..
                },
            ) => {
                (0..ca.len()).all(|i| !validity.get(i) || da[ca[i] as usize] == db[cb[i] as usize])
            }
            (Column::Bool { data: a, validity }, Column::Bool { data: b, .. }) => {
                (0..validity.len()).all(|i| !validity.get(i) || a.get(i) == b.get(i))
            }
            _ => unreachable!("data_type equality checked above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_column_roundtrip() {
        let col = Column::from_f64s([Some(1.0), None, Some(3.5)]);
        assert_eq!(col.len(), 3);
        assert_eq!(col.data_type(), DataType::Float64);
        assert_eq!(col.null_count(), 1);
        assert_eq!(col.get(0), Value::Float(1.0));
        assert_eq!(col.get(1), Value::Null);
        assert_eq!(col.get(2), Value::Float(3.5));
    }

    #[test]
    fn int_column_roundtrip() {
        let col = Column::from_i64s([Some(5), None]);
        assert_eq!(col.get(0), Value::Int(5));
        assert_eq!(col.get(1), Value::Null);
        assert_eq!(col.numeric_at(0), Some(5.0));
    }

    #[test]
    fn categorical_interns_in_first_appearance_order() {
        let col = Column::from_strs([Some("b"), Some("a"), Some("b"), None]);
        let (codes, dict, validity) = col.categorical_parts().unwrap();
        assert_eq!(dict.as_slice(), &["b".to_string(), "a".to_string()]);
        assert_eq!(codes, &[0, 1, 0, 0]);
        assert!(!validity.get(3));
        assert_eq!(col.get(0), Value::Str("b".into()));
        assert_eq!(col.get(3), Value::Null);
        assert_eq!(col.distinct_count(), 2);
    }

    #[test]
    fn bool_column() {
        let col = Column::from_bools([Some(true), Some(false), None]);
        assert_eq!(col.get(0), Value::Bool(true));
        assert_eq!(col.get(1), Value::Bool(false));
        assert_eq!(col.get(2), Value::Null);
        assert_eq!(col.numeric_at(0), Some(1.0));
        assert_eq!(col.numeric_at(1), Some(0.0));
        assert_eq!(col.distinct_count(), 2);
    }

    #[test]
    fn take_gathers_and_shares_dict() {
        let col = Column::from_strs([Some("x"), Some("y"), None, Some("x")]);
        let taken = col.take(&[3, 0, 2]);
        assert_eq!(taken.len(), 3);
        assert_eq!(taken.get(0), Value::Str("x".into()));
        assert_eq!(taken.get(1), Value::Str("x".into()));
        assert_eq!(taken.get(2), Value::Null);
        // Dictionary is shared, not copied.
        let (_, orig_dict, _) = col.categorical_parts().unwrap();
        let (_, new_dict, _) = taken.categorical_parts().unwrap();
        assert!(Arc::ptr_eq(orig_dict, new_dict));
    }

    #[test]
    fn take_floats_preserves_nulls() {
        let col = Column::from_f64s([Some(1.0), None, Some(3.0)]);
        let taken = col.take(&[1, 2]);
        assert_eq!(taken.get(0), Value::Null);
        assert_eq!(taken.get(1), Value::Float(3.0));
    }

    #[test]
    fn from_values_float() {
        let vals = [Value::Int(1), Value::Null, Value::Float(2.5)];
        let col = Column::from_values(&vals, DataType::Float64);
        assert_eq!(col.get(0), Value::Float(1.0));
        assert_eq!(col.get(1), Value::Null);
    }

    #[test]
    fn from_values_categorical_renders() {
        let vals = [Value::Int(1), Value::Str("a".into()), Value::Null];
        let col = Column::from_values(&vals, DataType::Categorical);
        assert_eq!(col.get(0), Value::Str("1".into()));
        assert_eq!(col.get(1), Value::Str("a".into()));
        assert_eq!(col.get(2), Value::Null);
    }

    #[test]
    fn distinct_count_floats() {
        let col = Column::from_f64s([Some(1.0), Some(1.0), Some(2.0), None]);
        assert_eq!(col.distinct_count(), 2);
    }

    #[test]
    fn dense_constructors() {
        let f = Column::dense_f64(vec![1.0, 2.0]);
        assert_eq!(f.null_count(), 0);
        let i = Column::dense_i64(vec![1, 2, 3]);
        assert_eq!(i.null_count(), 0);
        assert_eq!(i.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_codes_validates() {
        let dict = Arc::new(vec!["a".to_string()]);
        let validity = Bitmap::new_set(1);
        let _ = Column::from_codes(vec![5], dict, validity);
    }

    #[test]
    fn to_f64_vec_masks_categoricals() {
        let col = Column::from_strs([Some("a")]);
        assert_eq!(col.to_f64_vec(), vec![None]);
    }
}
