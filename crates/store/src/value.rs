//! Scalar values and logical data types.

use std::fmt;

/// Logical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit IEEE-754 floating point (continuous variables).
    Float64,
    /// 64-bit signed integer (counts, years, identifiers).
    Int64,
    /// Dictionary-encoded string (categorical / nominal variables).
    Categorical,
    /// Boolean.
    Bool,
}

impl DataType {
    /// Short lowercase name, used in error messages and schema rendering.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Float64 => "float64",
            DataType::Int64 => "int64",
            DataType::Categorical => "categorical",
            DataType::Bool => "bool",
        }
    }

    /// True for types ordered on the real line (`Float64`, `Int64`).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Float64 | DataType::Int64)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single scalar cell value.
///
/// `Value` is the row-oriented escape hatch of an otherwise columnar engine:
/// it appears at ingestion (CSV cells), at row inspection (the *highlight*
/// action shows example tuples) and in tests. Hot paths work on columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Missing value.
    Null,
    /// Floating point value.
    Float(f64),
    /// Integer value.
    Int(i64),
    /// String / categorical value.
    Str(String),
    /// Boolean value.
    Bool(bool),
}

impl Value {
    /// True when the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value: integers and booleans widen to `f64`,
    /// NULL and strings yield `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// String view of the value, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The [`DataType`] this value naturally belongs to, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Float(_) => Some(DataType::Float64),
            Value::Int(_) => Some(DataType::Int64),
            Value::Str(_) => Some(DataType::Categorical),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(inner) => inner.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datatype_names() {
        assert_eq!(DataType::Float64.name(), "float64");
        assert_eq!(DataType::Categorical.to_string(), "categorical");
    }

    #[test]
    fn numeric_types() {
        assert!(DataType::Float64.is_numeric());
        assert!(DataType::Int64.is_numeric());
        assert!(!DataType::Categorical.is_numeric());
        assert!(!DataType::Bool.is_numeric());
    }

    #[test]
    fn as_f64_widens() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Null.as_f64(), None);
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(1.5), Value::Float(1.5));
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(4i64)), Value::Int(4));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Float(1.25).to_string(), "1.25");
        assert_eq!(Value::Str("a b".into()).to_string(), "a b");
    }

    #[test]
    fn value_datatype() {
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int64));
        assert_eq!(
            Value::Str("x".into()).data_type(),
            Some(DataType::Categorical)
        );
    }
}
