//! Binary column snapshots.
//!
//! A snapshot is a length-prefixed little-endian dump of a [`Table`]'s
//! columns — payload vectors, dictionary blobs and validity bitmap words
//! written verbatim — so large tables reload without CSV re-parsing (and
//! without the lossy float → decimal → float round-trip). The layout:
//!
//! ```text
//! [ 0.. 8)  magic  b"BLAEUSNP"
//! [ 8..12)  format version (u32, currently 1)
//! [12..16)  reserved (u32, zero)
//! [16..24)  body length in bytes (u64)
//! [24..32)  body checksum (u64, FNV-1a folded over 8-byte words)
//! [32.. )   body:
//!           table name (u64 len + UTF-8 bytes)
//!           nrows (u64), ncols (u64)
//!           per column:
//!             name (u64 len + bytes), dtype (u8), role (u8)
//!             validity bitmap (u64 word count + words verbatim)
//!             payload:
//!               float64      u64 count + f64 bits (8 bytes each)
//!               int64        u64 count + i64 (8 bytes each)
//!               categorical  dict (u64 count + per-entry u64 len + bytes)
//!                            + codes (u64 count + u32 each)
//!               bool         value bitmap (u64 word count + words)
//! ```
//!
//! Every multi-byte integer is little-endian. Readers validate the magic,
//! version, length and checksum before touching the body, so truncated or
//! corrupt files surface as [`StoreError::Snapshot`] instead of panics or
//! garbage tables.

use std::sync::Arc;

use crate::bitmap::Bitmap;
use crate::column::Column;
use crate::error::{Result, StoreError};
use crate::schema::{ColumnRole, Field, Schema};
use crate::table::Table;
use crate::value::DataType;

const MAGIC: &[u8; 8] = b"BLAEUSNP";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 32;

/// FNV-1a folded over little-endian 8-byte words (the short tail is
/// zero-padded). Word-at-a-time keeps validation cheap enough that the
/// snapshot read path stays far under CSV parse cost.
///
/// Public because the server tier's command journal frames its records
/// with the same checksum — one integrity primitive across every durable
/// artifact this workspace writes.
pub fn checksum64(bytes: &[u8]) -> u64 {
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = BASIS ^ bytes.len() as u64;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        hash ^= word;
        hash = hash.wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        hash ^= u64::from_le_bytes(tail);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_bitmap(out: &mut Vec<u8>, bm: &Bitmap) {
    put_u64(out, bm.words().len() as u64);
    for &w in bm.words() {
        put_u64(out, w);
    }
}

fn dtype_tag(dtype: DataType) -> u8 {
    match dtype {
        DataType::Float64 => 0,
        DataType::Int64 => 1,
        DataType::Categorical => 2,
        DataType::Bool => 3,
    }
}

fn role_tag(role: ColumnRole) -> u8 {
    match role {
        ColumnRole::Key => 0,
        ColumnRole::Label => 1,
        ColumnRole::Attribute => 2,
    }
}

/// Serializes a table into an in-memory snapshot blob.
pub fn write_snapshot_bytes(table: &Table) -> Vec<u8> {
    let mut body = Vec::new();
    put_str(&mut body, table.name());
    put_u64(&mut body, table.nrows() as u64);
    put_u64(&mut body, table.ncols() as u64);
    for (field, column) in table.schema().fields().iter().zip(table.columns()) {
        put_str(&mut body, &field.name);
        body.push(dtype_tag(field.dtype));
        body.push(role_tag(field.role));
        put_bitmap(&mut body, column.validity());
        match column {
            Column::Float64 { data, .. } => {
                put_u64(&mut body, data.len() as u64);
                for &v in data {
                    body.extend_from_slice(&v.to_le_bytes());
                }
            }
            Column::Int64 { data, .. } => {
                put_u64(&mut body, data.len() as u64);
                for &v in data {
                    body.extend_from_slice(&v.to_le_bytes());
                }
            }
            Column::Categorical { codes, dict, .. } => {
                put_u64(&mut body, dict.len() as u64);
                for label in dict.iter() {
                    put_str(&mut body, label);
                }
                put_u64(&mut body, codes.len() as u64);
                for &c in codes {
                    body.extend_from_slice(&c.to_le_bytes());
                }
            }
            Column::Bool { data, .. } => put_bitmap(&mut body, data),
        }
    }

    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    put_u64(&mut out, body.len() as u64);
    put_u64(&mut out, checksum64(&body));
    out.extend_from_slice(&body);
    out
}

/// Byte-stream decoder tracking its offset for error reporting.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(StoreError::Snapshot {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.bytes.len() - self.pos < n {
            return self.err(format!(
                "truncated: need {n} bytes for {what}, {} left",
                self.bytes.len() - self.pos
            ));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a u64 length prefix and checks that `count * elem` more bytes
    /// actually exist, so a crafted prefix cannot trigger a huge allocation.
    fn len_prefix(&mut self, elem: usize, what: &str) -> Result<usize> {
        let count = self.u64(what)? as usize;
        if count
            .checked_mul(elem)
            .is_none_or(|total| self.bytes.len() - self.pos < total)
        {
            return self.err(format!(
                "length prefix for {what} ({count}) exceeds file size"
            ));
        }
        Ok(count)
    }

    fn str(&mut self, what: &str) -> Result<String> {
        let len = self.len_prefix(1, what)?;
        let bytes = self.take(len, what)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_owned()),
            Err(_) => self.err(format!("{what} is not valid UTF-8")),
        }
    }

    fn bitmap(&mut self, nbits: usize, what: &str) -> Result<Bitmap> {
        let nwords = self.len_prefix(8, what)?;
        let mut words = Vec::with_capacity(nwords);
        for chunk in self.take(nwords * 8, what)?.chunks_exact(8) {
            words.push(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        match Bitmap::from_words(words, nbits) {
            Some(bm) => Ok(bm),
            None => self.err(format!(
                "{what}: {nwords} words inconsistent with {nbits} bits (or stray tail bits)"
            )),
        }
    }
}

/// Decodes a snapshot blob back into a [`Table`].
///
/// # Errors
/// Returns [`StoreError::Snapshot`] for any malformed input: wrong magic,
/// unsupported version, truncation, checksum mismatch, or sections that do
/// not reassemble into a consistent table.
pub fn read_snapshot_bytes(bytes: &[u8]) -> Result<Table> {
    let mut cur = Cursor { bytes, pos: 0 };
    let magic = cur.take(8, "magic")?;
    if magic != MAGIC {
        return Err(StoreError::Snapshot {
            offset: 0,
            message: format!("bad magic {magic:02x?}, expected {MAGIC:02x?}"),
        });
    }
    let version = u32::from_le_bytes(cur.take(4, "version")?.try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(StoreError::Snapshot {
            offset: 8,
            message: format!("unsupported snapshot version {version} (supported: {VERSION})"),
        });
    }
    cur.take(4, "reserved")?;
    let body_len = cur.u64("body length")? as usize;
    let stored_sum = cur.u64("checksum")?;
    if bytes.len() - cur.pos != body_len {
        return Err(StoreError::Snapshot {
            offset: 16,
            message: format!(
                "body length {body_len} disagrees with file ({} bytes after header)",
                bytes.len() - cur.pos
            ),
        });
    }
    let actual_sum = checksum64(&bytes[cur.pos..]);
    if actual_sum != stored_sum {
        return Err(StoreError::Snapshot {
            offset: 24,
            message: format!(
                "checksum mismatch: stored {stored_sum:016x}, computed {actual_sum:016x}"
            ),
        });
    }

    let name = cur.str("table name")?;
    let nrows = cur.u64("row count")? as usize;
    let ncols = cur.u64("column count")? as usize;
    let mut fields = Vec::new();
    let mut columns = Vec::new();
    for c in 0..ncols {
        let col_name = cur.str("column name")?;
        let dtype = match cur.u8("dtype tag")? {
            0 => DataType::Float64,
            1 => DataType::Int64,
            2 => DataType::Categorical,
            3 => DataType::Bool,
            other => return cur.err(format!("unknown dtype tag {other} in column {c}")),
        };
        let role = match cur.u8("role tag")? {
            0 => ColumnRole::Key,
            1 => ColumnRole::Label,
            2 => ColumnRole::Attribute,
            other => return cur.err(format!("unknown role tag {other} in column {c}")),
        };
        let validity = cur.bitmap(nrows, "validity bitmap")?;
        let column = match dtype {
            DataType::Float64 => {
                let count = cur.len_prefix(8, "float payload")?;
                if count != nrows {
                    return cur.err(format!("float payload has {count} rows, table has {nrows}"));
                }
                let mut data = Vec::with_capacity(count);
                for chunk in cur.take(count * 8, "float payload")?.chunks_exact(8) {
                    data.push(f64::from_le_bytes(chunk.try_into().expect("8 bytes")));
                }
                Column::Float64 { data, validity }
            }
            DataType::Int64 => {
                let count = cur.len_prefix(8, "int payload")?;
                if count != nrows {
                    return cur.err(format!("int payload has {count} rows, table has {nrows}"));
                }
                let mut data = Vec::with_capacity(count);
                for chunk in cur.take(count * 8, "int payload")?.chunks_exact(8) {
                    data.push(i64::from_le_bytes(chunk.try_into().expect("8 bytes")));
                }
                Column::Int64 { data, validity }
            }
            DataType::Categorical => {
                let dict_len = cur.len_prefix(1, "dictionary")?;
                let mut dict = Vec::with_capacity(dict_len);
                for _ in 0..dict_len {
                    dict.push(cur.str("dictionary entry")?);
                }
                let count = cur.len_prefix(4, "code payload")?;
                if count != nrows {
                    return cur.err(format!("code payload has {count} rows, table has {nrows}"));
                }
                let mut codes = Vec::with_capacity(count);
                for chunk in cur.take(count * 4, "code payload")?.chunks_exact(4) {
                    codes.push(u32::from_le_bytes(chunk.try_into().expect("4 bytes")));
                }
                for i in validity.iter_ones() {
                    if codes[i] as usize >= dict.len() {
                        return cur.err(format!(
                            "code {} at row {i} exceeds dictionary of {} entries",
                            codes[i],
                            dict.len()
                        ));
                    }
                }
                Column::Categorical {
                    codes,
                    dict: Arc::new(dict),
                    validity,
                }
            }
            DataType::Bool => {
                let data = cur.bitmap(nrows, "bool payload")?;
                Column::Bool { data, validity }
            }
        };
        fields.push(Field::with_role(col_name, dtype, role));
        columns.push(column);
    }
    if cur.pos != bytes.len() {
        return cur.err(format!(
            "{} trailing bytes after last column",
            bytes.len() - cur.pos
        ));
    }

    let schema = Schema::new(fields)?;
    let table = Table::new(name, schema, columns)?;
    if table.ncols() > 0 && table.nrows() != nrows {
        return Err(StoreError::Snapshot {
            offset: 0,
            message: format!(
                "header row count {nrows} disagrees with columns ({})",
                table.nrows()
            ),
        });
    }
    Ok(table)
}

/// Read-only memory mapping of a snapshot file — the zero-copy read
/// path on 64-bit Unix. `mmap` returns page-aligned addresses, so the
/// 8-byte-word checksum and payload decoding run over a word-aligned
/// base for free; `MAP_PRIVATE` isolates the parse from concurrent
/// writers. Any failure (open, stat, zero length, the syscall itself)
/// degrades to `None` and the caller falls back to reading the file
/// into memory, so mapping is strictly an optimization.
///
/// The `extern "C"` declarations bind the two libc symbols directly —
/// this crate deliberately carries no FFI dependency.
#[cfg(all(unix, target_pointer_width = "64"))]
mod mmap_file {
    use std::ffi::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// An owned `PROT_READ`/`MAP_PRIVATE` mapping of one whole file,
    /// unmapped on drop. Derefs to the mapped bytes.
    pub struct Mapping {
        ptr: *mut c_void,
        len: usize,
    }

    impl Mapping {
        /// Maps `path` read-only; `None` on any failure (the caller
        /// falls back to a buffered read). Zero-length files are never
        /// mapped — POSIX rejects empty mappings.
        pub fn open(path: &std::path::Path) -> Option<Mapping> {
            let file = std::fs::File::open(path).ok()?;
            let len = usize::try_from(file.metadata().ok()?.len()).ok()?;
            if len == 0 {
                return None;
            }
            // SAFETY: a fresh anonymous placement (`addr` null), a
            // length measured from the open descriptor, and flags that
            // request a read-only private view. The fd may close right
            // after — POSIX keeps the mapping alive independently.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            // MAP_FAILED is (void*)-1.
            if ptr as usize == usize::MAX {
                return None;
            }
            Some(Mapping { ptr, len })
        }
    }

    impl std::ops::Deref for Mapping {
        type Target = [u8];
        fn deref(&self) -> &[u8] {
            // SAFETY: `ptr..ptr + len` is exactly the live mapping this
            // value owns; it stays valid until Drop unmaps it, and
            // PROT_READ guarantees reads cannot fault on permissions.
            unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: unmapping exactly the region mmap returned.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

impl Table {
    /// Writes this table as a binary snapshot file (see the module docs for
    /// the layout).
    ///
    /// # Errors
    /// Propagates I/O errors as [`StoreError::Io`].
    pub fn write_snapshot(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        std::fs::write(path, write_snapshot_bytes(self))?;
        Ok(())
    }

    /// Loads a table from a binary snapshot file. On 64-bit Unix the
    /// file is memory-mapped (word-aligned, read-only, private) and
    /// decoded straight out of the page cache — no intermediate copy of
    /// the payload bytes; everywhere else, or when mapping fails, the
    /// file is read into memory first. Both paths decode identically.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] for filesystem problems and
    /// [`StoreError::Snapshot`] for malformed content.
    pub fn read_snapshot(path: impl AsRef<std::path::Path>) -> Result<Table> {
        #[cfg(all(unix, target_pointer_width = "64"))]
        if let Some(mapping) = mmap_file::Mapping::open(path.as_ref()) {
            return read_snapshot_bytes(&mapping);
        }
        let bytes = std::fs::read(path)?;
        read_snapshot_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn mixed_table() -> Table {
        TableBuilder::new("mixed")
            .column(
                "x",
                Column::from_f64s(vec![Some(1.5), None, Some(-0.0), Some(f64::MAX)]),
            )
            .unwrap()
            .column(
                "n",
                Column::from_i64s(vec![Some(-7), Some(0), None, Some(i64::MAX)]),
            )
            .unwrap()
            .column(
                "cat",
                Column::from_strs(vec![Some("a"), Some("b"), Some("a"), None]),
            )
            .unwrap()
            .column(
                "flag",
                Column::from_bools(vec![Some(true), None, Some(false), Some(true)]),
            )
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn roundtrip_preserves_table() {
        let t = mixed_table();
        let blob = write_snapshot_bytes(&t);
        let back = read_snapshot_bytes(&blob).expect("valid snapshot");
        assert_eq!(back, t);
        assert_eq!(back.name(), t.name());
        assert_eq!(back.schema(), t.schema());
    }

    #[test]
    fn roundtrip_preserves_roles() {
        let t = Table::new(
            "roles",
            Schema::new(vec![
                Field::with_role("id", DataType::Int64, ColumnRole::Key),
                Field::with_role("label", DataType::Categorical, ColumnRole::Label),
            ])
            .unwrap(),
            vec![
                Column::from_i64s(vec![Some(1), Some(2)]),
                Column::from_strs(vec![Some("x"), Some("y")]),
            ],
        )
        .unwrap();
        let back = read_snapshot_bytes(&write_snapshot_bytes(&t)).expect("valid");
        assert_eq!(back.schema(), t.schema());
    }

    #[test]
    fn roundtrip_empty_and_zero_row_tables() {
        let empty = TableBuilder::new("empty").build().unwrap();
        assert_eq!(
            read_snapshot_bytes(&write_snapshot_bytes(&empty)).unwrap(),
            empty
        );

        let zero_rows = TableBuilder::new("zr")
            .column("x", Column::from_f64s(Vec::<Option<f64>>::new()))
            .unwrap()
            .build()
            .unwrap();
        let back = read_snapshot_bytes(&write_snapshot_bytes(&zero_rows)).unwrap();
        assert_eq!(back, zero_rows);
    }

    #[test]
    fn file_roundtrip() {
        let t = mixed_table();
        let path = std::env::temp_dir().join("blaeu_snapshot_test.snap");
        t.write_snapshot(&path).expect("writable");
        let back = Table::read_snapshot(&path).expect("readable");
        assert_eq!(back, t);
        let _ = std::fs::remove_file(&path);
    }

    /// The mapped read path and the buffered fallback must decode the
    /// same file to the same table — mapping is an optimization, never
    /// a behavior change.
    #[cfg(all(unix, target_pointer_width = "64"))]
    #[test]
    fn mmap_and_buffered_reads_agree() {
        let t = mixed_table();
        let path = std::env::temp_dir().join("blaeu_snapshot_mmap_test.snap");
        t.write_snapshot(&path).expect("writable");

        let mapping = super::mmap_file::Mapping::open(&path).expect("mappable");
        let via_map = read_snapshot_bytes(&mapping).expect("map decodes");
        let buffered =
            read_snapshot_bytes(&std::fs::read(&path).expect("readable")).expect("buffer decodes");
        assert_eq!(via_map, buffered);
        assert_eq!(via_map, t);

        // Empty and missing files fall back instead of mapping.
        let empty = std::env::temp_dir().join("blaeu_snapshot_empty_test.snap");
        std::fs::write(&empty, []).expect("writable");
        assert!(super::mmap_file::Mapping::open(&empty).is_none());
        assert!(
            super::mmap_file::Mapping::open(std::path::Path::new("/nonexistent/blaeu.snap"))
                .is_none()
        );

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&empty);
    }

    #[test]
    fn corrupt_inputs_are_typed_errors() {
        let t = mixed_table();
        let blob = write_snapshot_bytes(&t);

        // Bad magic.
        let mut bad = blob.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_snapshot_bytes(&bad),
            Err(StoreError::Snapshot { .. })
        ));

        // Unsupported version.
        let mut bad = blob.clone();
        bad[8] = 99;
        assert!(matches!(
            read_snapshot_bytes(&bad),
            Err(StoreError::Snapshot { .. })
        ));

        // Truncation at every prefix length must error, never panic.
        for cut in [0, 7, 12, HEADER_LEN - 1, HEADER_LEN, blob.len() - 1] {
            assert!(
                matches!(
                    read_snapshot_bytes(&blob[..cut]),
                    Err(StoreError::Snapshot { .. })
                ),
                "cut={cut}"
            );
        }

        // A flipped body byte fails the checksum.
        let mut bad = blob.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        let err = read_snapshot_bytes(&bad).unwrap_err();
        assert!(err.to_string().contains("checksum"), "got: {err}");
    }

    #[test]
    fn checksum_is_position_sensitive() {
        assert_ne!(checksum64(b"ab"), checksum64(b"ba"));
        assert_ne!(checksum64(&[0u8; 8]), checksum64(&[0u8; 16]));
    }
}
