//! Row sampling, including the multi-scale sampler behind Blaeu's latency.
//!
//! All of Blaeu's pipeline stages are time consuming, so the system "relies
//! heavily on sampling": after each zoom it takes a few thousand rows from
//! the database and computes the map on those. Three samplers are provided:
//!
//! * [`uniform_sample`] — classic uniform sampling without replacement.
//! * [`bernoulli_sample`] — per-row coin flip (streaming friendly).
//! * [`MultiScaleSampler`] — the paper's *multi-scale* scheme: one seeded
//!   shuffle whose prefixes are valid uniform samples at every size, so
//!   samples are **nested** (`sample(m) ⊆ sample(n)` for `m ≤ n`) and
//!   stable across interactions. Nesting is what keeps successive zooms
//!   visually consistent: growing the sample refines the map instead of
//!   redrawing an unrelated one.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::error::{Result, StoreError};
use crate::table::Table;

/// Deterministic RNG used across the engine (seeded, portable).
pub type StoreRng = ChaCha8Rng;

/// Creates the engine's RNG from a seed.
pub fn rng_from_seed(seed: u64) -> StoreRng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Draws `k` distinct row indices uniformly from `0..n`, in ascending order.
///
/// When `k >= n`, all rows are returned.
pub fn uniform_sample(n: usize, k: usize, seed: u64) -> Vec<u32> {
    if k >= n {
        return (0..n as u32).collect();
    }
    let mut rng = rng_from_seed(seed);
    // Floyd's algorithm: O(k) expected, no O(n) allocation.
    let mut chosen = std::collections::HashSet::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        if !chosen.insert(t as u32) {
            chosen.insert(j as u32);
        }
    }
    // lint: allow(digest-determinism) — hash order cannot leak: the indices are sorted on the next line before return
    let mut out: Vec<u32> = chosen.into_iter().collect();
    out.sort_unstable();
    out
}

/// Keeps each of the `n` rows independently with probability `p`.
///
/// # Errors
/// Returns [`StoreError::InvalidArgument`] when `p` is outside `[0, 1]`.
pub fn bernoulli_sample(n: usize, p: f64, seed: u64) -> Result<Vec<u32>> {
    if !(0.0..=1.0).contains(&p) {
        return Err(StoreError::InvalidArgument(format!(
            "Bernoulli probability must be in [0,1], got {p}"
        )));
    }
    let mut rng = rng_from_seed(seed);
    let mut out = Vec::with_capacity((n as f64 * p) as usize + 16);
    for i in 0..n {
        if rng.gen::<f64>() < p {
            out.push(i as u32);
        }
    }
    Ok(out)
}

/// Multi-scale sampler: one shuffled permutation whose prefixes are uniform
/// samples of every size.
///
/// The permutation is drawn once per (population, seed); `sample(k)` is the
/// sorted first-`k` prefix. Prefixes of a uniform random permutation are
/// uniform samples without replacement, and they are nested by construction.
#[derive(Debug, Clone)]
pub struct MultiScaleSampler {
    permutation: Vec<u32>,
}

impl MultiScaleSampler {
    /// Builds a sampler over the population `0..n`.
    pub fn new(n: usize, seed: u64) -> Self {
        let mut permutation: Vec<u32> = (0..n as u32).collect();
        let mut rng = rng_from_seed(seed);
        permutation.shuffle(&mut rng);
        MultiScaleSampler { permutation }
    }

    /// Builds a sampler over an explicit population of row ids (e.g. the
    /// rows of a zoomed region).
    pub fn over_rows(rows: &[u32], seed: u64) -> Self {
        let mut permutation = rows.to_vec();
        let mut rng = rng_from_seed(seed);
        permutation.shuffle(&mut rng);
        MultiScaleSampler { permutation }
    }

    /// Population size.
    pub fn population(&self) -> usize {
        self.permutation.len()
    }

    /// Uniform sample of `k` rows (all rows when `k` exceeds the
    /// population), sorted ascending.
    pub fn sample(&self, k: usize) -> Vec<u32> {
        let k = k.min(self.permutation.len());
        let mut out = self.permutation[..k].to_vec();
        out.sort_unstable();
        out
    }

    /// `count` disjoint sub-samples of `k` rows each, used by the
    /// Monte-Carlo silhouette. Later sub-samples wrap around when the
    /// population is exhausted (they stay uniform but lose disjointness).
    pub fn subsamples(&self, count: usize, k: usize) -> Vec<Vec<u32>> {
        let n = self.permutation.len();
        if n == 0 || k == 0 {
            return vec![Vec::new(); count];
        }
        let k = k.min(n);
        let mut out = Vec::with_capacity(count);
        for c in 0..count {
            let start = (c * k) % n;
            let mut sub = Vec::with_capacity(k);
            for j in 0..k {
                sub.push(self.permutation[(start + j) % n]);
            }
            sub.sort_unstable();
            sub.dedup();
            out.push(sub);
        }
        out
    }
}

/// O(k) multi-scale sample: the first `k` entries of a streaming
/// Fisher-Yates shuffle of `0..n`, sorted ascending.
///
/// Equivalent in distribution to [`MultiScaleSampler::new`] followed by
/// [`MultiScaleSampler::sample`], but without materializing (or even
/// visiting) the full permutation: iteration `i` draws the swap target
/// `j ∈ i..n` and a hash map records the handful of displaced values, so
/// cost is O(k) regardless of the population size. Samples are nested —
/// for a fixed `(n, seed)`, `prefix_sample(n, m, seed)` is a subset of
/// `prefix_sample(n, k, seed)` whenever `m ≤ k` — because the first `m`
/// draws of the stream are shared. This is what lets the progressive
/// ladder take its level-0 sample from a 50k-row view in microseconds
/// instead of paying a full O(n) shuffle per rung.
pub fn prefix_sample(n: usize, k: usize, seed: u64) -> Vec<u32> {
    let k = k.min(n);
    let mut rng = rng_from_seed(seed);
    // Sparse view of the array being shuffled: position -> current value,
    // defaulting to the identity for positions never swapped.
    let mut displaced: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    let value_at = |map: &std::collections::HashMap<u32, u32>, idx: u32| -> u32 {
        map.get(&idx).copied().unwrap_or(idx)
    };
    let mut out = Vec::with_capacity(k);
    for i in 0..k {
        let j = rng.gen_range(i..n) as u32;
        let vi = value_at(&displaced, i as u32);
        let vj = value_at(&displaced, j);
        out.push(vj);
        // The value formerly at i moves to j (position i is never read
        // again, so it needs no entry).
        displaced.insert(j, vi);
    }
    out.sort_unstable();
    out
}

/// Gathers a uniform sample of `k` rows from a table (multi-scale seeded).
///
/// # Errors
/// Propagates gather errors (never expected: indices are in bounds).
pub fn sample_table(table: &Table, k: usize, seed: u64) -> Result<Table> {
    let sampler = MultiScaleSampler::new(table.nrows(), seed);
    table.take(&sampler.sample(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_sample_basic_properties() {
        let s = uniform_sample(100, 10, 42);
        assert_eq!(s.len(), 10);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn uniform_sample_k_ge_n_returns_all() {
        assert_eq!(uniform_sample(5, 5, 1), vec![0, 1, 2, 3, 4]);
        assert_eq!(uniform_sample(5, 99, 1), vec![0, 1, 2, 3, 4]);
        assert_eq!(uniform_sample(0, 3, 1), Vec::<u32>::new());
    }

    #[test]
    fn uniform_sample_deterministic_per_seed() {
        assert_eq!(uniform_sample(1000, 50, 7), uniform_sample(1000, 50, 7));
        assert_ne!(uniform_sample(1000, 50, 7), uniform_sample(1000, 50, 8));
    }

    #[test]
    fn uniform_sample_is_roughly_uniform() {
        // Each row should appear in ~k/n of many repeated samples.
        let n = 50;
        let k = 10;
        let reps = 2000;
        let mut counts = vec![0usize; n];
        for seed in 0..reps {
            for &i in &uniform_sample(n, k, seed as u64) {
                counts[i as usize] += 1;
            }
        }
        let expected = reps * k / n; // 400
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected as f64).abs() < expected as f64 * 0.25,
                "row {i} appeared {c} times, expected ~{expected}"
            );
        }
    }

    #[test]
    fn bernoulli_expected_size() {
        let s = bernoulli_sample(10_000, 0.1, 3).unwrap();
        assert!(
            (s.len() as f64 - 1000.0).abs() < 150.0,
            "got {} rows",
            s.len()
        );
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn bernoulli_rejects_bad_p() {
        assert!(bernoulli_sample(10, -0.1, 0).is_err());
        assert!(bernoulli_sample(10, 1.5, 0).is_err());
        assert_eq!(bernoulli_sample(10, 0.0, 0).unwrap().len(), 0);
        assert_eq!(bernoulli_sample(10, 1.0, 0).unwrap().len(), 10);
    }

    #[test]
    fn multiscale_samples_are_nested() {
        let ms = MultiScaleSampler::new(500, 11);
        let small: std::collections::HashSet<u32> = ms.sample(50).into_iter().collect();
        let big: std::collections::HashSet<u32> = ms.sample(200).into_iter().collect();
        assert!(small.is_subset(&big), "multi-scale samples must be nested");
        assert_eq!(small.len(), 50);
        assert_eq!(big.len(), 200);
    }

    #[test]
    fn multiscale_clamps_to_population() {
        let ms = MultiScaleSampler::new(10, 0);
        assert_eq!(ms.sample(100).len(), 10);
        assert_eq!(ms.population(), 10);
    }

    #[test]
    fn multiscale_over_rows_restricts_population() {
        let rows = vec![3u32, 7, 9, 20];
        let ms = MultiScaleSampler::over_rows(&rows, 5);
        let s = ms.sample(3);
        assert_eq!(s.len(), 3);
        assert!(s.iter().all(|i| rows.contains(i)));
    }

    #[test]
    fn subsamples_disjoint_until_wraparound() {
        let ms = MultiScaleSampler::new(100, 2);
        let subs = ms.subsamples(4, 20);
        assert_eq!(subs.len(), 4);
        let mut all: Vec<u32> = subs.iter().flatten().copied().collect();
        let total = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total, "4×20 from 100 rows must be disjoint");
    }

    #[test]
    fn subsamples_wrap_gracefully() {
        let ms = MultiScaleSampler::new(10, 2);
        let subs = ms.subsamples(3, 8);
        for sub in &subs {
            assert!(!sub.is_empty());
            assert!(sub.len() <= 8);
        }
    }

    #[test]
    fn subsamples_empty_population() {
        let ms = MultiScaleSampler::new(0, 0);
        let subs = ms.subsamples(2, 5);
        assert_eq!(subs, vec![Vec::<u32>::new(), Vec::new()]);
    }

    #[test]
    fn prefix_sample_basic_properties() {
        let s = prefix_sample(10_000, 50, 9);
        assert_eq!(s.len(), 50);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        assert!(s.iter().all(|&i| i < 10_000));
        assert_eq!(s, prefix_sample(10_000, 50, 9), "deterministic");
        assert_ne!(s, prefix_sample(10_000, 50, 10));
    }

    #[test]
    fn prefix_sample_is_nested() {
        for k in [1usize, 7, 32, 100] {
            let small: std::collections::HashSet<u32> =
                prefix_sample(5000, k, 3).into_iter().collect();
            let big: std::collections::HashSet<u32> =
                prefix_sample(5000, 400, 3).into_iter().collect();
            assert_eq!(small.len(), k);
            assert!(small.is_subset(&big), "prefix samples must be nested");
        }
    }

    #[test]
    fn prefix_sample_clamps_and_handles_empty() {
        let all = prefix_sample(8, 100, 1);
        assert_eq!(all.len(), 8);
        assert_eq!(all, (0..8).collect::<Vec<u32>>());
        assert_eq!(prefix_sample(0, 5, 1), Vec::<u32>::new());
        assert_eq!(prefix_sample(5, 0, 1), Vec::<u32>::new());
    }

    #[test]
    fn prefix_sample_is_roughly_uniform() {
        let n = 50;
        let k = 10;
        let reps = 2000;
        let mut counts = vec![0usize; n];
        for seed in 0..reps {
            for &i in &prefix_sample(n, k, seed as u64) {
                counts[i as usize] += 1;
            }
        }
        let expected = reps * k / n; // 400
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected as f64).abs() < expected as f64 * 0.25,
                "row {i} appeared {c} times, expected ~{expected}"
            );
        }
    }

    #[test]
    fn sample_table_gathers() {
        use crate::column::Column;
        use crate::table::TableBuilder;
        let t = TableBuilder::new("t")
            .column("x", Column::dense_i64((0..100).collect()))
            .unwrap()
            .build()
            .unwrap();
        let s = sample_table(&t, 10, 4).unwrap();
        assert_eq!(s.nrows(), 10);
    }
}
