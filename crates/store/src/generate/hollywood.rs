//! The Hollywood dataset: ~900 movies × 12 columns (demo scenario 1).
//!
//! Planted structure: three market segments —
//! `0` blockbusters (high budget, high gross), `1` indie darlings (low
//! budget, strong reviews, high profitability), `2` flops (mid budget, weak
//! gross and reviews). Two column themes: *commercial* (budget, gross,
//! opening weekend, theaters, profitability) and *reception* (critic and
//! audience scores), with release metadata independent of both.

use rand::Rng;

use crate::column::Column;
use crate::error::Result;
use crate::sample::rng_from_seed;
use crate::schema::ColumnRole;
use crate::table::{Table, TableBuilder};

use super::{gauss, weighted_index, PlantedTruth};

/// Configuration for [`hollywood`].
#[derive(Debug, Clone)]
pub struct HollywoodConfig {
    /// Number of movies (the paper's dataset has 900).
    pub nrows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HollywoodConfig {
    fn default() -> Self {
        HollywoodConfig {
            nrows: 900,
            seed: 2007,
        }
    }
}

const STUDIOS: &[&str] = &[
    "Universal",
    "Warner",
    "Paramount",
    "Sony",
    "Disney",
    "Fox",
    "Lionsgate",
    "A24",
];

const GENRES: &[&str] = &[
    "Action",
    "Comedy",
    "Drama",
    "Animation",
    "Horror",
    "Romance",
    "Thriller",
];

const RATINGS: &[&str] = &["G", "PG", "PG-13", "R"];

/// Generates the Hollywood table and its planted segment labels.
///
/// # Errors
/// Propagates table-construction errors (not expected for valid configs).
pub fn hollywood(config: &HollywoodConfig) -> Result<(Table, PlantedTruth)> {
    let mut rng = rng_from_seed(config.seed);
    let n = config.nrows;
    // Segment mix: a few blockbusters, many mid-tier flops, a solid indie slate.
    let weights = [0.25, 0.35, 0.40];
    let labels: Vec<usize> = (0..n).map(|_| weighted_index(&mut rng, &weights)).collect();

    let mut film = Vec::with_capacity(n);
    let mut studio = Vec::with_capacity(n);
    let mut genre = Vec::with_capacity(n);
    let mut rating = Vec::with_capacity(n);
    let mut year = Vec::with_capacity(n);
    let mut budget = Vec::with_capacity(n);
    let mut gross = Vec::with_capacity(n);
    let mut opening = Vec::with_capacity(n);
    let mut theaters = Vec::with_capacity(n);
    let mut profitability = Vec::with_capacity(n);
    let mut critics = Vec::with_capacity(n);
    let mut audience = Vec::with_capacity(n);

    for (i, &seg) in labels.iter().enumerate() {
        film.push(format!("Film #{i:04}"));
        studio.push(STUDIOS[rng.gen_range(0..STUDIOS.len())].to_owned());
        genre.push(GENRES[rng.gen_range(0..GENRES.len())].to_owned());
        rating.push(RATINGS[rng.gen_range(0..RATINGS.len())].to_owned());
        year.push(2007 + rng.gen_range(0..7i64));

        // Commercial theme driven by a shared latent per film.
        let commercial = gauss(&mut rng);
        // Reception theme latent (independent of commercial except through
        // the segment).
        let buzz = gauss(&mut rng);

        let (b, multiplier, score_base) = match seg {
            0 => (120.0 + 40.0 * commercial, 2.8, 58.0), // blockbusters
            1 => (8.0 + 3.0 * commercial, 5.5, 76.0),    // indies
            _ => (45.0 + 15.0 * commercial, 0.8, 40.0),  // flops
        };
        let b = b.max(0.5);
        let g = (b * multiplier * (1.0 + 0.25 * gauss(&mut rng))).max(0.1);
        budget.push(Some(b));
        gross.push(Some(g));
        opening.push(Some((g * (0.28 + 0.05 * gauss(&mut rng))).max(0.05)));
        theaters.push(Some(
            ((g * 18.0).sqrt() * 45.0 + 40.0 * gauss(&mut rng))
                .max(1.0)
                .round() as i64,
        ));
        profitability.push(Some(g / b));

        let c = (score_base + 12.0 * buzz + 4.0 * gauss(&mut rng)).clamp(0.0, 100.0);
        let a = (score_base + 4.0 + 10.0 * buzz + 5.0 * gauss(&mut rng)).clamp(0.0, 100.0);
        critics.push(Some(c));
        audience.push(Some(a));
    }

    let table = TableBuilder::new("hollywood")
        .column_with_role(
            "film",
            Column::from_strs(film.iter().map(|s| Some(s.as_str()))),
            ColumnRole::Label,
        )?
        .column(
            "studio",
            Column::from_strs(studio.iter().map(|s| Some(s.as_str()))),
        )?
        .column(
            "genre",
            Column::from_strs(genre.iter().map(|s| Some(s.as_str()))),
        )?
        .column(
            "rating",
            Column::from_strs(rating.iter().map(|s| Some(s.as_str()))),
        )?
        .column("year", Column::dense_i64(year))?
        .column("budget_musd", Column::from_f64s(budget))?
        .column("worldwide_gross_musd", Column::from_f64s(gross))?
        .column("opening_weekend_musd", Column::from_f64s(opening))?
        .column("theaters", Column::from_i64s(theaters))?
        .column("profitability", Column::from_f64s(profitability))?
        .column("critics_score", Column::from_f64s(critics))?
        .column("audience_score", Column::from_f64s(audience))?
        .build()?;

    let commercial_cols = [
        "budget_musd",
        "worldwide_gross_musd",
        "opening_weekend_musd",
        "theaters",
        "profitability",
    ];
    let reception_cols = ["critics_score", "audience_score"];
    let metadata_cols = ["studio", "genre", "rating", "year"];
    let mut theme_of_column = Vec::new();
    for c in commercial_cols {
        theme_of_column.push((c.to_owned(), 0));
    }
    for c in reception_cols {
        theme_of_column.push((c.to_owned(), 1));
    }
    for c in metadata_cols {
        theme_of_column.push((c.to_owned(), 2));
    }

    Ok((
        table,
        PlantedTruth {
            labels,
            theme_of_column,
            theme_names: vec![
                "commercial".to_owned(),
                "reception".to_owned(),
                "metadata".to_owned(),
            ],
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape() {
        let (t, truth) = hollywood(&HollywoodConfig::default()).unwrap();
        assert_eq!(t.nrows(), 900);
        assert_eq!(t.ncols(), 12, "the paper's Hollywood table has 12 columns");
        assert_eq!(truth.labels.len(), 900);
    }

    #[test]
    fn deterministic() {
        let (a, _) = hollywood(&HollywoodConfig::default()).unwrap();
        let (b, _) = hollywood(&HollywoodConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn segments_have_expected_economics() {
        let (t, truth) = hollywood(&HollywoodConfig::default()).unwrap();
        let budget = t.column_by_name("budget_musd").unwrap();
        let profit = t.column_by_name("profitability").unwrap();
        let mean_by = |col: &crate::column::Column, seg: usize| {
            let vals: Vec<f64> = truth
                .labels
                .iter()
                .enumerate()
                .filter(|&(_, &l)| l == seg)
                .filter_map(|(i, _)| col.numeric_at(i))
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        assert!(
            mean_by(budget, 0) > mean_by(budget, 1) * 5.0,
            "blockbusters cost more than indies"
        );
        assert!(
            mean_by(profit, 1) > mean_by(profit, 2) * 2.0,
            "indies out-earn flops per dollar"
        );
    }

    #[test]
    fn years_in_paper_window() {
        let (t, _) = hollywood(&HollywoodConfig::default()).unwrap();
        let (years, _) = t.column_by_name("year").unwrap().i64_slice().unwrap();
        assert!(years.iter().all(|&y| (2007..=2013).contains(&y)));
    }

    #[test]
    fn no_missing_values() {
        let (t, _) = hollywood(&HollywoodConfig::default()).unwrap();
        for col in t.columns() {
            assert_eq!(col.null_count(), 0);
        }
    }
}
