//! Seeded synthetic dataset generators.
//!
//! The Blaeu demo runs on three real datasets (Hollywood movies, OECD
//! regional indicators, the LOFAR source catalogue) that are not
//! redistributable. These generators reproduce their documented shapes and —
//! crucially — come with *planted ground truth* (row-cluster labels and
//! column-theme assignments), which turns the paper's qualitative accuracy
//! claims into measurable quantities (ARI / NMI against the truth).

mod hollywood;
mod lofar;
mod oecd;
mod planted;

pub use hollywood::{hollywood, HollywoodConfig};
pub use lofar::{lofar, LofarConfig};
pub use oecd::{oecd, LaborCluster, OecdConfig, COUNTRIES};
pub use planted::{planted, ColumnShape, PlantedConfig, PlantedTruth, ThemeSpec};

use rand::Rng;

use crate::sample::StoreRng;

/// Standard normal variate via Box–Muller (the `rand_distr` crate is not a
/// declared dependency; two lines of math beat a new dependency).
pub(crate) fn gauss(rng: &mut StoreRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples an index from unnormalized weights.
pub(crate) fn weighted_index(rng: &mut StoreRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::rng_from_seed;

    #[test]
    fn gauss_has_standard_moments() {
        let mut rng = rng_from_seed(1);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| gauss(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.06, "var {var}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = rng_from_seed(2);
        let weights = [1.0, 3.0];
        let mut counts = [0usize; 2];
        for _ in 0..8000 {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.45, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_single_weight() {
        let mut rng = rng_from_seed(3);
        assert_eq!(weighted_index(&mut rng, &[5.0]), 0);
    }
}
